//! The `Expand` decision rule (Fig. 2) and the edge-contribution analysis
//! of Lemma 6.
//!
//! `Expand(G_in, C_in, p)` samples each cluster with probability `p`; a
//! vertex `v` in cluster `C_0` adjacent to clusters `C_1, …, C_q`
//!
//! * stays (contributing 0 edges) if `C_0` is sampled,
//! * joins a sampled neighbor cluster (contributing 1 edge, line 4),
//! * otherwise contributes one edge to **each** adjacent cluster and dies
//!   (line 7).
//!
//! [`ClusterSampler`] makes the sampling decisions a pure function of
//! (seed, cluster center, call index), which is exactly the trick Theorem 2
//! uses to distribute them: *"Before the first round of communication every
//! vertex performs the sampling steps (line 1) in all calls to Expand"* —
//! every vertex that knows its cluster's center id can evaluate the same
//! function locally. The sequential and distributed implementations share
//! this sampler.
//!
//! The module also implements the X^t_p recurrence of Lemma 6 — the
//! worst-case expected number of edges a single vertex contributes over `t`
//! calls with sampling probability `p` — both exactly (numeric maximization
//! of the recurrence) and via the closed-form bound
//! `p^{-1}(ln(t+1) − ζ) + t`, `ζ = ln 2 − 1/e`. Experiment E10 compares a
//! Monte-Carlo adversary against both.

use spanner_graph::NodeId;

use crate::cluster::ClusterId;

/// Deterministic cluster sampling: a pure function of
/// (seed, cluster center, call index).
///
/// Both implementations of the skeleton algorithm draw their sampling
/// decisions from here, so a cluster's fate in call `k` is decided "up
/// front" and any vertex that knows the cluster's center can recompute it —
/// no communication needed (Theorem 2's first observation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSampler {
    seed: u64,
}

impl ClusterSampler {
    /// A sampler with the given master seed.
    pub fn new(seed: u64) -> Self {
        ClusterSampler { seed }
    }

    /// A uniform value in [0, 1) for (center, call), deterministic.
    pub fn uniform(&self, center: NodeId, call: u32) -> f64 {
        let mut s = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((center.0 as u64) << 32) | call as u64);
        let x = spanner_netsim::rng::splitmix64(&mut s);
        // 53 random bits -> [0, 1)
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the cluster centered at `center` is sampled in call `call`
    /// with probability `p`.
    pub fn sampled(&self, center: NodeId, call: u32, p: f64) -> bool {
        p > 0.0 && self.uniform(center, call) < p
    }
}

/// The fate of one supervertex in one `Expand` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The vertex's own cluster was sampled: it stays put.
    Stay,
    /// The vertex joins the sampled cluster with this id (line 4).
    Join(ClusterId),
    /// No incident cluster sampled: the vertex dies (line 7).
    Die,
}

/// The exact X^t_p of Lemma 6: the maximum over adversarial q_1, …, q_t of
/// the expected number of edges contributed by one vertex across `t` calls
/// to `Expand` with sampling probability `p`.
///
/// Computed by iterating the recurrence
/// `X^t_p = max_q [ X^{t−1}_p + (1−p) + (q − 1 − X^{t−1}_p)(1−p)^{q+1} ]`
/// over integer q (the maximizer is near `−1/ln(1−p) + 1 + X^{t−1}_p`, and
/// the scan window covers it).
///
/// # Panics
///
/// Panics if `p` is not in (0, 1].
pub fn x_t_p(p: f64, t: u32) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if p >= 1.0 {
        // Everything is always sampled: nobody ever contributes an edge?
        // Not quite: with p = 1, C_0 is always sampled, so X = 0.
        return 0.0;
    }
    let q1m = 1.0 - p;
    let mut x = 0.0f64;
    for _ in 0..t {
        // Maximize f(q) = x + (1-p) + (q - 1 - x) (1-p)^{q+1} over q >= 0.
        let q_star = -1.0 / q1m.ln() + 1.0 + x;
        let hi = q_star.ceil() as i64 + 2;
        let mut best = f64::NEG_INFINITY;
        for q in 0..=hi.max(2) {
            let qf = q as f64;
            let val = x + q1m + (qf - 1.0 - x) * q1m.powf(qf + 1.0);
            if val > best {
                best = val;
            }
        }
        x = best;
    }
    x
}

/// Euler–Mascheroni-style constant of Lemma 6: ζ = ln 2 − 1/e ≈ 0.325.
pub const ZETA: f64 = 0.325_267_739_388_502_95;

/// The closed-form upper bound of Lemma 6, Eq. (4):
/// `X^t_p ≤ p^{-1}(ln(t+1) − ζ) + t`.
pub fn x_t_p_bound(p: f64, t: u32) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    ((t as f64 + 1.0).ln() - ZETA) / p + t as f64
}

/// Monte-Carlo estimate of the adversarial edge contribution: simulates
/// `trials` independent vertices facing the adversarial q-sequence implied
/// by the exact recurrence, returning the mean number of contributed edges.
/// Used by experiment E10 to validate the analysis empirically.
pub fn x_t_p_monte_carlo(p: f64, t: u32, trials: u32, seed: u64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    // Recover the adversarial q_k sequence: q chosen at step k maximizes
    // given the remaining horizon; by the recurrence's structure the
    // maximizer at step k (with t−k steps remaining AFTER it) uses
    // X^{t-k}_p. Precompute X^j for j = 0..t.
    let q1m = 1.0 - p;
    let mut xs = vec![0.0f64; t as usize + 1];
    for j in 1..=t as usize {
        let x = xs[j - 1];
        let q_star = -1.0 / q1m.ln() + 1.0 + x;
        let hi = (q_star.ceil() as i64 + 2).max(2);
        let (mut best, mut _bestq) = (f64::NEG_INFINITY, 0i64);
        for q in 0..=hi {
            let qf = q as f64;
            let val = x + q1m + (qf - 1.0 - x) * q1m.powf(qf + 1.0);
            if val > best {
                best = val;
                _bestq = q;
            }
        }
        xs[j] = best;
    }
    // The adversary at the call with j steps remaining picks the argmax q.
    let mut qseq = Vec::with_capacity(t as usize);
    for j in (1..=t as usize).rev() {
        let x = xs[j - 1];
        let q_star = -1.0 / q1m.ln() + 1.0 + x;
        let hi = (q_star.ceil() as i64 + 2).max(2);
        let (mut best, mut bestq) = (f64::NEG_INFINITY, 0i64);
        for q in 0..=hi {
            let qf = q as f64;
            let val = x + q1m + (qf - 1.0 - x) * q1m.powf(qf + 1.0);
            if val > best {
                best = val;
                bestq = q;
            }
        }
        qseq.push(bestq as u64);
    }

    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut total_edges = 0u64;
    for _ in 0..trials {
        for &q in &qseq {
            // C_0 sampled?
            if rng.gen::<f64>() < p {
                continue; // stays, 0 edges
            }
            // Any of the q neighbors sampled?
            let mut any = false;
            for _ in 0..q {
                if rng.gen::<f64>() < p {
                    any = true;
                    break;
                }
            }
            if any {
                total_edges += 1; // joins
            } else {
                total_edges += q; // dies
                break;
            }
        }
    }
    total_edges as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_deterministic_and_uniform() {
        let s = ClusterSampler::new(7);
        assert_eq!(s.uniform(NodeId(3), 1), s.uniform(NodeId(3), 1));
        assert_ne!(s.uniform(NodeId(3), 1), s.uniform(NodeId(3), 2));
        assert_ne!(s.uniform(NodeId(3), 1), s.uniform(NodeId(4), 1));
        // Empirical mean of uniforms is ~0.5.
        let mean: f64 = (0..10_000).map(|i| s.uniform(NodeId(i), 0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sampler_probability_matches() {
        let s = ClusterSampler::new(12);
        let p = 0.25;
        let hits = (0..20_000u32)
            .filter(|&i| s.sampled(NodeId(i), 5, p))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - p).abs() < 0.02, "rate {rate}");
        // p = 0 never samples.
        assert!(!s.sampled(NodeId(0), 0, 0.0));
    }

    #[test]
    fn x_recurrence_base_case() {
        // X^1_p < (1 − 2/e) + 1/(e p)  (Eq. 3).
        for &p in &[0.5, 0.25, 0.1, 0.01] {
            let x1 = x_t_p(p, 1);
            let bound = 1.0 - 2.0 / std::f64::consts::E + 1.0 / (std::f64::consts::E * p);
            assert!(x1 <= bound + 1e-9, "p={p}: {x1} vs {bound}");
            assert!(x1 > 0.0);
        }
    }

    #[test]
    fn x_recurrence_below_closed_form() {
        // Eq. (4): X^t_p ≤ p^{-1}(ln(t+1) − ζ) + t for all t ≥ 1.
        for &p in &[0.5, 0.25, 0.1] {
            for t in 1..=30 {
                let exact = x_t_p(p, t);
                let bound = x_t_p_bound(p, t);
                assert!(
                    exact <= bound + 1e-9,
                    "p={p} t={t}: exact {exact} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn x_monotone_in_t() {
        let mut last = 0.0;
        for t in 1..=10 {
            let x = x_t_p(0.2, t);
            assert!(x >= last);
            last = x;
        }
    }

    #[test]
    fn x_p_one_is_zero() {
        assert_eq!(x_t_p(1.0, 10), 0.0);
    }

    #[test]
    fn monte_carlo_close_to_recurrence() {
        let p = 0.25;
        let t = 6;
        let exact = x_t_p(p, t);
        let mc = x_t_p_monte_carlo(p, t, 60_000, 11);
        assert!(
            (mc - exact).abs() < 0.08 * exact.max(1.0),
            "MC {mc} vs exact {exact}"
        );
    }

    #[test]
    fn zeta_value() {
        assert!((ZETA - (2f64.ln() - 1.0 / std::f64::consts::E)).abs() < 1e-12);
    }
}
