//! Fibonacci spanners (Sect. 4).
//!
//! A Fibonacci spanner is built from a hierarchy of sampled vertex sets
//! `V = V_0 ⊇ V_1 ⊇ … ⊇ V_o ⊇ V_{o+1} = ∅` and connects
//!
//! * every `v` to its nearest level-i vertex `p_i(v)` when
//!   `δ(v, p_i(v)) ≤ ℓ^{i-1}` (the parent forests), and
//! * every `v ∈ V_{i-1}` by shortest paths to every `u ∈ B_{i+1,ℓ}(v)` —
//!   the level-i vertices within distance `min(ℓ^i, δ(v, V_{i+1}) − 1)`.
//!
//! The sampling probabilities solve Fibonacci-like recurrences (Lemma 8),
//! balancing all levels at size ≈ n^{1 + 1/(F_{o+3}−1)} ℓ^φ, with
//! φ = (1+√5)/2 the golden ratio. The distortion analysis (Lemmas 9–10,
//! Theorem 7) yields a per-distance envelope with four stages: O(2^o) for
//! tiny distances, O(o) at distance 2^o, tending to 3 at distance λ^o, and
//! tending to 1+ε past (3o/ε)^o.
//!
//! * [`params`] — sampling probabilities and the Sect. 4.4 message-bound
//!   rescaling,
//! * [`analysis`] — the C/I recurrences and closed forms, as an executable
//!   distortion envelope,
//! * [`sequential`] — the centralized construction,
//! * [`distributed`] — the Sect. 4.4 protocol with O(n^{1/t})-word
//!   messages, cessation, and Las Vegas repair.

pub mod analysis;
pub mod distributed;
pub mod params;
pub mod sequential;

pub use params::FibonacciParams;
pub use sequential::build_sequential;
