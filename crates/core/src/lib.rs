//! The paper's algorithms: linear-size skeletons and Fibonacci spanners.
//!
//! This crate implements the two constructions of Pettie, *Distributed
//! algorithms for ultrasparse spanners and linear size skeletons* (PODC
//! 2008):
//!
//! * [`skeleton`] — Sect. 2: an O(2^{log* n} log n)-spanner with size
//!   Dn/e + O(n log D), built by the `Expand` clustering procedure with
//!   inter-round contraction; both a centralized reference implementation
//!   and the distributed protocol of Theorem 2 (O(log^ε n)-word messages),
//! * [`fibonacci`] — Sect. 4: Fibonacci spanners, near-linear-size
//!   (α, β)-spanners whose multiplicative distortion improves with distance
//!   in four discrete stages (Theorems 7–8, Corollaries 1–2); both the
//!   centralized construction and the distributed protocol of Sect. 4.4
//!   (O(n^{1/t})-word messages),
//!
//! plus the shared infrastructure:
//!
//! * [`spanner`] — the [`Spanner`] result type and stretch verification,
//! * [`seq`] — the tower sequence (s_i) of Lemma 1 and the round/iteration
//!   schedule of Theorem 2,
//! * [`cluster`] — clusterings, contraction and radius bookkeeping
//!   (Observation 1, Lemmas 2–3),
//! * [`expand`] — the `Expand` procedure of Fig. 2 and the X^t_p edge
//!   contribution recurrence of Lemma 6.
//!
//! # Example
//!
//! ```
//! use spanner_graph::generators;
//! use ultrasparse::skeleton::{SkeletonParams, build_sequential};
//!
//! let g = generators::connected_gnm(400, 3000, 7);
//! let params = SkeletonParams::new(4.0, 0.5).unwrap();
//! let spanner = build_sequential(&g, &params, 99);
//! assert!(spanner.is_spanning(&g));
//! // Linear size: around Dn/e + O(n log D) edges.
//! assert!(spanner.edges.len() < 6 * g.node_count());
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod expand;
pub mod faults;
pub mod fibonacci;
pub mod seq;
pub mod skeleton;
pub mod spanner;

pub use faults::FaultError;
pub use spanner::{Spanner, StretchReport};
