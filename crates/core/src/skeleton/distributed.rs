//! The distributed skeleton construction (proof of Theorem 2).
//!
//! Every original vertex is a processor. The algorithm follows the
//! implementation in the paper:
//!
//! * **sampling is free**: a cluster's fate in every call is a pure
//!   function of its center's id
//!   ([`ClusterSampler`]), so any vertex
//!   that knows its cluster center's id can evaluate it locally — no
//!   coordination;
//! * each vertex `w` maintains two tree pointers: `p1(w)` toward the
//!   center of its *supervertex* (the contracted vertex of the current
//!   round) and `p2(w)` toward the center of its current *cluster*;
//! * an `Expand` call runs on a fixed, globally known **timetable** (all
//!   processors know n, D, ε, hence the schedule and the certified radius
//!   bounds of Lemma 3):
//!   1. *exchange* (1 step): every live vertex tells its neighbors its
//!      cluster center,
//!   2. *candidate convergecast* (≤ r_i + 2 steps): each vertex proposes
//!      its best edge into a sampled cluster; proposals flow up the p1
//!      tree, improvements forwarding one hop per step,
//!   3. *decision broadcast* (≤ r_i + 1 steps): the center either joins
//!      the winning cluster — the decision flows down, on-path vertices
//!      re-aim `p2` toward the winning edge (re-rooting the tree exactly
//!      as Fig. 4 describes) — or declares the supervertex dead,
//!   4. *kill phase*: members of a dead supervertex stream their
//!      (cluster, edge) candidates up the p1 tree, pipelined in batches
//!      that fit the O(log^ε n)-word budget and deduplicated per cluster
//!      en route; if anyone sees more than 4·s_i·ln n distinct clusters it
//!      floods ABORT through the tree and every member simply keeps all
//!      its incident edges (the paper's Monte-Carlo escape hatch, which
//!      inflates the expected size by o(1));
//! * at the end of a round every vertex sends one ADOPT message to its
//!   `p2` parent, which rebuilds the child lists, and `p1 := p2` — that is
//!   the contraction.
//!
//! **Deviation (documented in DESIGN.md §4):** the paper lets the kill
//! phase of a dying supervertex overlap subsequent calls (dead vertices
//! bother nobody); we instead append the kill window to every call, which
//! keeps the executor timetable trivially deterministic and inflates the
//! round count by a constant factor only — the measured rounds still scale
//! as O(ε⁻¹ 2^{log* n} log_D n) (experiment E3).

use std::collections::BTreeMap;
use std::sync::Arc;

use spanner_graph::{CsrAdjacency, EdgeSet, Graph, NodeId};
use spanner_netsim::{
    AsyncNetwork, Ctx, FaultPlan, MessageBudget, MessageSize, Network, NullSink, ParallelNetwork,
    Protocol, RunError, Synchronizer, TraceSink,
};

use crate::expand::ClusterSampler;
use crate::faults::FaultError;
use crate::seq::Schedule;
use crate::skeleton::SkeletonParams;
use crate::spanner::Spanner;

/// A candidate edge into a sampled cluster: (target cluster, my endpoint,
/// neighbor endpoint). Ordered lexicographically; the minimum wins.
type Cand = (NodeId, NodeId, NodeId);

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkelMsg {
    /// "My cluster center is … (and I am alive)."
    Exchange {
        /// The sender's current cluster center.
        cluster: NodeId,
    },
    /// Candidate edge flowing up the p1 tree.
    CandUp(Cand),
    /// Center's decision: join `cluster` via the edge (a, b).
    Join(Cand),
    /// Center's decision: the supervertex dies.
    Die,
    /// Batched (cluster, a, b) entries flowing up during the kill phase.
    KillBatch(Vec<Cand>),
    /// Too many adjacent clusters: keep all incident edges.
    Abort,
    /// "I am your child in the contracted tree."
    Adopt,
}

impl MessageSize for SkelMsg {
    fn words(&self) -> usize {
        match self {
            SkelMsg::Exchange { .. } => 1,
            SkelMsg::CandUp(_) | SkelMsg::Join(_) => 3,
            SkelMsg::Die | SkelMsg::Abort | SkelMsg::Adopt => 1,
            SkelMsg::KillBatch(v) => 1 + 3 * v.len(),
        }
    }
}

/// Per-call timetable entry (absolute simulator rounds).
#[derive(Debug, Clone, Copy)]
struct Window {
    /// Exchange broadcast round.
    exchange: u32,
    /// First candidate round (exchange + 1).
    cand_start: u32,
    /// Center decision round.
    decide: u32,
    /// Kill-entry collection round at the center (end of kill phase).
    kill_end: u32,
    /// ADOPT round (only meaningful if the call contracts).
    adopt: u32,
    /// Contraction application round / end of this call's window.
    end: u32,
    /// Sampling probability of the call.
    probability: f64,
    /// Abort threshold: max distinct adjacent clusters before giving up.
    q_cap: usize,
    /// Whether a contraction follows this call.
    contract_after: bool,
}

/// Shared, precomputed configuration.
#[derive(Debug)]
struct SkelConfig {
    windows: Vec<Window>,
    sampler: ClusterSampler,
    /// Batch capacity of a kill message, in entries.
    batch: usize,
    /// Total rounds of the timetable.
    total_rounds: u32,
}

impl SkelConfig {
    fn build(schedule: &Schedule, n: usize, seed: u64, budget_words: usize) -> Self {
        let batch = ((budget_words.saturating_sub(1)) / 3).max(1);
        let ln_n = (n.max(2) as f64).ln();
        let mut windows = Vec::with_capacity(schedule.calls.len());
        let mut t = 1u32; // round 0 is init; actions start at round 1
        let mut last_positive_p = 0.25;
        for call in &schedule.calls {
            let r = call.radius_before as u32;
            let p = call.probability;
            if p > 0.0 {
                last_positive_p = p;
            }
            let q_cap = (4.0 * (1.0 / last_positive_p) * ln_n).ceil() as usize;
            let drain = (q_cap + 1).div_ceil(batch) as u32;
            let exchange = t;
            let cand_start = t + 1;
            let decide = t + r + 2;
            let kill_end = decide + 3 * r + drain + 4;
            let adopt = kill_end;
            let end = if call.contract_after {
                kill_end + 2
            } else {
                kill_end
            };
            windows.push(Window {
                exchange,
                cand_start,
                decide,
                kill_end,
                adopt,
                end,
                probability: p,
                q_cap,
                contract_after: call.contract_after,
            });
            // The next call starts on the round AFTER this one ends, so a
            // node can apply end-of-call actions and advance its window
            // pointer without racing the next exchange.
            t = end + 1;
        }
        SkelConfig {
            windows,
            sampler: ClusterSampler::new(seed),
            batch,
            total_rounds: t + 2,
        }
    }
}

/// Per-node protocol state. After the run, [`SkelNode::selected`] holds the
/// spanner edges this processor is responsible for (centers record their
/// supervertex's selections; aborts record locally).
#[derive(Debug, Clone)]
pub struct SkelNode {
    cfg: Arc<SkelConfig>,
    /// Index of the call currently executing.
    call: usize,
    /// Participating in the clustering (false once the supervertex died).
    alive: bool,
    /// Center of my supervertex.
    sv_center: NodeId,
    /// My parent in the supervertex (p1) tree.
    p1_parent: Option<NodeId>,
    /// My children in the p1 tree.
    p1_children: Vec<NodeId>,
    /// Center of my current cluster.
    cluster_center: NodeId,
    /// My parent in the pending (p2) tree.
    p2_parent: Option<NodeId>,
    /// Live neighbors' cluster centers, snapshot at this call's exchange.
    nbr_cluster: Vec<(NodeId, NodeId)>,
    /// Best candidate seen this call and which child supplied it
    /// (`None` = myself).
    best: Option<(Cand, Option<NodeId>)>,
    /// Last candidate forwarded to the parent.
    sent: Option<Cand>,
    /// Kill state: streaming this call.
    dying: bool,
    /// Kill entries not yet sent up, keyed by cluster.
    kill_pending: BTreeMap<NodeId, (NodeId, NodeId)>,
    /// Clusters already forwarded (suppress duplicates).
    kill_done: std::collections::BTreeSet<NodeId>,
    /// Entries collected at the center during a kill.
    center_entries: BTreeMap<NodeId, (NodeId, NodeId)>,
    /// Abort flag for this kill.
    aborted: bool,
    /// ADOPT senders collected during contraction.
    adopters: Vec<NodeId>,
    /// Spanner edges recorded by this node, as (endpoint, endpoint).
    pub selected: Vec<(NodeId, NodeId)>,
    finished: bool,
}

impl SkelNode {
    fn new(cfg: Arc<SkelConfig>, me: NodeId) -> Self {
        SkelNode {
            cfg,
            call: 0,
            alive: true,
            sv_center: me,
            p1_parent: None,
            p1_children: Vec::new(),
            cluster_center: me,
            p2_parent: None,
            nbr_cluster: Vec::new(),
            best: None,
            sent: None,
            dying: false,
            kill_pending: BTreeMap::new(),
            kill_done: std::collections::BTreeSet::new(),
            center_entries: BTreeMap::new(),
            aborted: false,
            adopters: Vec::new(),
            selected: Vec::new(),
            finished: false,
        }
    }

    fn sampled(&self, cluster: NodeId) -> bool {
        let w = &self.cfg.windows[self.call];
        self.cfg
            .sampler
            .sampled(cluster, self.call as u32, w.probability)
    }

    /// Improve the running best candidate; returns true on improvement.
    fn improve(&mut self, cand: Cand, from: Option<NodeId>) -> bool {
        match &self.best {
            Some((b, _)) if *b <= cand => false,
            _ => {
                self.best = Some((cand, from));
                true
            }
        }
    }

    /// Start dying: snapshot adjacent clusters into the kill queue.
    fn begin_kill(&mut self, me: NodeId) {
        self.alive = false;
        self.dying = true;
        for &(w, cw) in &self.nbr_cluster {
            if cw != self.cluster_center {
                let entry = self.kill_pending.entry(cw).or_insert((me, w));
                if (me, w) < *entry {
                    *entry = (me, w);
                }
            }
        }
        self.check_abort();
    }

    /// Abort check: too many distinct adjacent clusters for the budgeted
    /// kill window. Returns true when this call newly triggers the abort.
    fn check_abort(&mut self) -> bool {
        let w = &self.cfg.windows[self.call];
        let seen = self.kill_pending.len() + self.kill_done.len() + self.center_entries.len();
        if seen > w.q_cap && !self.aborted {
            self.aborted = true;
            true
        } else {
            false
        }
    }

    /// Abort fallback: keep every incident cross-cluster edge.
    fn record_all_edges(&mut self, me: NodeId) {
        let pairs: Vec<(NodeId, NodeId)> = self
            .nbr_cluster
            .iter()
            .filter(|&&(_, cw)| cw != self.cluster_center)
            .map(|&(w, _)| (me, w))
            .collect();
        self.selected.extend(pairs);
    }
}

impl Protocol for SkelNode {
    type Msg = SkelMsg;

    fn init(&mut self, _ctx: &mut Ctx<'_, SkelMsg>) {}

    fn round(&mut self, ctx: &mut Ctx<'_, SkelMsg>, inbox: &[(NodeId, SkelMsg)]) {
        if self.finished {
            return;
        }
        let t = ctx.round();
        let me = ctx.me();
        let is_center = self.p1_parent.is_none();

        // ---- message processing -------------------------------------
        // Plan at most one tree-downward message (to all children) and at
        // most one upward message per round, so the one-message-per-
        // neighbor-per-round rule is respected by construction.
        // Priority: Abort subsumes Die (abort implies death + keep-all).
        let mut down: Option<SkelMsg> = None;
        let mut abort_up = false;
        for (from, msg) in inbox {
            match msg {
                SkelMsg::Exchange { cluster } => {
                    if self.alive {
                        self.nbr_cluster.push((*from, *cluster));
                    }
                }
                SkelMsg::CandUp(c) => {
                    if self.alive {
                        self.improve(*c, Some(*from));
                    }
                }
                SkelMsg::Join(c) => {
                    let c = *c;
                    let (cluster, a, b) = c;
                    self.cluster_center = cluster;
                    // Re-aim p2 (Fig. 4): on-path vertices point down the
                    // remembered candidate path; everyone else copies p1.
                    let on_path = matches!(&self.best, Some((bc, _)) if *bc == c);
                    if on_path {
                        if a == me {
                            self.p2_parent = Some(b);
                        } else {
                            let (_, from_child) = self.best.as_ref().expect("on-path");
                            self.p2_parent = *from_child;
                        }
                    } else {
                        self.p2_parent = self.p1_parent;
                    }
                    down = Some(SkelMsg::Join(c));
                }
                SkelMsg::Die => {
                    self.begin_kill(me);
                    down = Some(if self.aborted {
                        SkelMsg::Abort
                    } else {
                        SkelMsg::Die
                    });
                    if self.aborted {
                        self.record_all_edges(me);
                        self.kill_pending.clear();
                        abort_up = true;
                    }
                }
                SkelMsg::KillBatch(entries) => {
                    for &(cw, a, b) in entries {
                        if self.kill_done.contains(&cw) {
                            continue;
                        }
                        let sink = if is_center {
                            &mut self.center_entries
                        } else {
                            &mut self.kill_pending
                        };
                        let e = sink.entry(cw).or_insert((a, b));
                        if (a, b) < *e {
                            *e = (a, b);
                        }
                    }
                    if self.check_abort() {
                        self.record_all_edges(me);
                        self.kill_pending.clear();
                        abort_up = true;
                        down = Some(SkelMsg::Abort);
                    }
                }
                SkelMsg::Abort => {
                    if !self.aborted {
                        self.aborted = true;
                        self.alive = false;
                        self.dying = true;
                        self.record_all_edges(me);
                        self.kill_pending.clear();
                        abort_up = true;
                        down = Some(SkelMsg::Abort);
                    }
                }
                SkelMsg::Adopt => {
                    self.adopters.push(*from);
                }
            }
        }
        if let Some(msg) = down {
            for i in 0..self.p1_children.len() {
                let ch = self.p1_children[i];
                ctx.send(ch, msg.clone());
            }
        }
        if abort_up {
            if let Some(p) = self.p1_parent {
                ctx.send(p, SkelMsg::Abort);
            }
        }

        // ---- timetable-driven actions -------------------------------
        let w = self.cfg.windows[self.call];

        // Every node (alive or dead — the timetable is global knowledge)
        // declares the `Expand` call it is entering; the executor collapses
        // the n identical declarations into one phase span per call.
        if ctx.tracing() && t == w.exchange {
            ctx.enter_phase(format!("expand[{:02}]", self.call));
        }

        if t == w.exchange && self.alive {
            // Reset per-call scratch, then broadcast the cluster id.
            self.nbr_cluster.clear();
            self.best = None;
            self.sent = None;
            self.kill_pending.clear();
            self.kill_done.clear();
            self.center_entries.clear();
            self.aborted = false;
            ctx.broadcast(SkelMsg::Exchange {
                cluster: self.cluster_center,
            });
        }

        if t == w.cand_start && self.alive && !self.sampled(self.cluster_center) {
            // Local candidates: my edges into sampled foreign clusters.
            let mut local: Option<Cand> = None;
            for &(nbr, cw) in &self.nbr_cluster {
                if cw != self.cluster_center && self.sampled(cw) {
                    let c = (cw, me, nbr);
                    if local.is_none_or(|l| c < l) {
                        local = Some(c);
                    }
                }
            }
            if let Some(c) = local {
                self.improve(c, None);
            }
        }

        // Candidate forwarding (up window): forward improvements.
        if t >= w.cand_start && t < w.decide && self.alive {
            if let Some((c, _)) = &self.best {
                if self.sent != Some(*c) {
                    if let Some(p) = self.p1_parent {
                        ctx.send(p, SkelMsg::CandUp(*c));
                    }
                    self.sent = Some(*c);
                }
            }
        }

        // Center decision.
        if t == w.decide
            && self.alive
            && is_center
            && self.sv_center == me
            && !self.sampled(self.cluster_center)
        {
            match self.best {
                Some((c @ (cluster, a, b), from)) => {
                    self.selected.push((a, b));
                    self.cluster_center = cluster;
                    self.p2_parent = if a == me { Some(b) } else { from };
                    for i in 0..self.p1_children.len() {
                        let ch = self.p1_children[i];
                        ctx.send(ch, SkelMsg::Join(c));
                    }
                }
                None => {
                    self.begin_kill(me);
                    // The center's own entries go straight to the
                    // collection map (they need no transport).
                    let own = std::mem::take(&mut self.kill_pending);
                    self.center_entries.extend(own);
                    let msg = if self.aborted {
                        self.record_all_edges(me);
                        self.center_entries.clear();
                        SkelMsg::Abort
                    } else {
                        SkelMsg::Die
                    };
                    for i in 0..self.p1_children.len() {
                        let ch = self.p1_children[i];
                        ctx.send(ch, msg.clone());
                    }
                }
            }
        }

        // Kill streaming: one batch per round toward the parent.
        if self.dying && !self.aborted && t > w.decide && t < w.kill_end && !is_center {
            if let Some(p) = self.p1_parent {
                if !self.kill_pending.is_empty() {
                    let mut batch = Vec::with_capacity(self.cfg.batch);
                    let keys: Vec<NodeId> = self
                        .kill_pending
                        .keys()
                        .take(self.cfg.batch)
                        .copied()
                        .collect();
                    for k in keys {
                        let (a, b) = self.kill_pending.remove(&k).expect("key present");
                        self.kill_done.insert(k);
                        batch.push((k, a, b));
                    }
                    ctx.send(p, SkelMsg::KillBatch(batch));
                }
            }
        }

        // End of the kill window: centers record the selected edges, and
        // everyone stops streaming.
        if self.dying && t == w.kill_end {
            if is_center && self.sv_center == me && !self.aborted {
                for (&_c, &(a, b)) in &self.center_entries {
                    self.selected.push((a, b));
                }
            }
            self.center_entries.clear();
            self.dying = false;
        }

        // Contraction.
        if w.contract_after {
            if t == w.adopt && self.alive {
                self.adopters.clear();
                if let Some(p) = self.p2_parent {
                    ctx.send(p, SkelMsg::Adopt);
                }
            }
            if t == w.end && self.alive {
                self.p1_parent = self.p2_parent;
                self.p1_children = std::mem::take(&mut self.adopters);
                self.sv_center = self.cluster_center;
                self.best = None;
                self.sent = None;
            }
        }

        // Advance to the next call / finish.
        if t >= w.end {
            if self.call + 1 < self.cfg.windows.len() {
                self.call += 1;
            } else {
                self.finished = true;
                ctx.exit_phase();
            }
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

/// The message budget of Theorem 2 with the constant made explicit:
/// `3·⌈log^ε n⌉ + 8` words (three words encode one (cluster, edge) entry).
pub fn theorem2_budget(n: usize, eps: f64) -> MessageBudget {
    let w = (n.max(2) as f64).log2().powf(eps).ceil() as usize;
    MessageBudget::Words(3 * w.max(1) + 8)
}

/// Runs the distributed skeleton protocol of Theorem 2 on the simulator.
///
/// Returns the spanner (collected from per-node selections) with the run's
/// communication metrics attached.
///
/// # Errors
///
/// Propagates simulator failures — a round-limit or budget violation would
/// indicate a bug in the timetable, and is asserted against in tests.
pub fn build_distributed(
    g: &Graph,
    params: &SkeletonParams,
    seed: u64,
) -> Result<Spanner, RunError> {
    build_distributed_traced(g, params, seed, &mut NullSink)
}

/// Like [`build_distributed`], streaming round-level
/// [`TraceEvent`](spanner_netsim::TraceEvent)s into `sink`; each `Expand`
/// call appears as an `expand[..]` phase span.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_traced(
    g: &Graph,
    params: &SkeletonParams,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let schedule = params.schedule(n);
    let budget = theorem2_budget(n, params.eps);
    let words = budget.limit().expect("theorem2 budget is bounded");
    let cfg = Arc::new(SkelConfig::build(&schedule, n, seed, words));
    let mut net = Network::new(g, budget, seed);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run_traced(|v, _| SkelNode::new(Arc::clone(&cfg), v), max_rounds, sink)?;
    Ok(collect_spanner(g, &states, net.metrics()))
}

/// Like [`build_distributed`], running straight off a shared CSR adjacency
/// with no [`Graph`] ever materialized — the construction path the
/// million-node experiment tiers use. For the same topology and seed the
/// result (spanner edge set, metrics) is byte-identical to
/// [`build_distributed`]'s: edge identifiers are recovered through
/// [`CsrAdjacency::edge_index`], which reproduces
/// [`Graph::from_edges`]' lexicographic edge-id order.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_csr(
    csr: &Arc<CsrAdjacency>,
    params: &SkeletonParams,
    seed: u64,
) -> Result<Spanner, RunError> {
    build_distributed_csr_traced(csr, params, seed, &mut NullSink)
}

/// Like [`build_distributed_csr`], streaming trace events into `sink`.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_csr_traced(
    csr: &Arc<CsrAdjacency>,
    params: &SkeletonParams,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let n = csr.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let schedule = params.schedule(n);
    let budget = theorem2_budget(n, params.eps);
    let words = budget.limit().expect("theorem2 budget is bounded");
    let cfg = Arc::new(SkelConfig::build(&schedule, n, seed, words));
    let mut net = Network::from_csr(Arc::clone(csr), budget, seed);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run_traced(|v, _| SkelNode::new(Arc::clone(&cfg), v), max_rounds, sink)?;
    Ok(collect_spanner_csr(csr, &states, net.metrics()))
}

/// Like [`build_distributed_parallel`], running straight off a shared CSR
/// adjacency. Byte-identical output to [`build_distributed_csr`] at any
/// thread count.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_csr_parallel(
    csr: &Arc<CsrAdjacency>,
    params: &SkeletonParams,
    seed: u64,
    threads: usize,
) -> Result<Spanner, RunError> {
    let n = csr.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let schedule = params.schedule(n);
    let budget = theorem2_budget(n, params.eps);
    let words = budget.limit().expect("theorem2 budget is bounded");
    let cfg = Arc::new(SkelConfig::build(&schedule, n, seed, words));
    let mut net = ParallelNetwork::from_csr(Arc::clone(csr), budget, seed, threads);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run(|v, _| SkelNode::new(Arc::clone(&cfg), v), max_rounds)?;
    Ok(collect_spanner_csr(csr, &states, net.metrics()))
}

/// Like [`build_distributed`], executed on the event-driven asynchronous
/// simulator: per-link latencies come from `delays` (see
/// [`spanner_netsim::FaultPlan::link_latency`]; only the plan's delay
/// clause is consulted), and `synchronizer` recovers round semantics.
///
/// Because the synchronizer is exact, the built spanner and protocol-level
/// metrics equal [`build_distributed`]'s for every delay plan (asserted in
/// `tests/synchronizer_conformance.rs`); the run additionally reports
/// events, synchronizer traffic, and the simulated-time horizon. Passing a
/// previously built spanner as [`Synchronizer::Skeleton`] edges reproduces
/// the Bitton et al. message-reduction transformation.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_async(
    g: &Graph,
    params: &SkeletonParams,
    seed: u64,
    delays: &FaultPlan,
    synchronizer: Synchronizer,
) -> Result<Spanner, RunError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let schedule = params.schedule(n);
    let budget = theorem2_budget(n, params.eps);
    let words = budget.limit().expect("theorem2 budget is bounded");
    let cfg = Arc::new(SkelConfig::build(&schedule, n, seed, words));
    let mut net = AsyncNetwork::new(g, budget, seed)
        .with_delays(delays.clone())
        .with_synchronizer(synchronizer);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run(|v, _| SkelNode::new(Arc::clone(&cfg), v), max_rounds)?;
    Ok(collect_spanner(g, &states, net.metrics()))
}

/// Like [`build_distributed`], executed on `threads` worker threads.
///
/// Deterministic in `seed` and independent of `threads`: produces exactly
/// the spanner and metrics of [`build_distributed`] (asserted in tests),
/// just faster on large inputs.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_parallel(
    g: &Graph,
    params: &SkeletonParams,
    seed: u64,
    threads: usize,
) -> Result<Spanner, RunError> {
    build_distributed_parallel_traced(g, params, seed, threads, &mut NullSink)
}

/// Like [`build_distributed_parallel`], streaming trace events into `sink`.
///
/// The event stream is byte-identical to the one
/// [`build_distributed_traced`] produces for the same graph and seed,
/// whatever `threads` is (asserted in tests).
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_parallel_traced(
    g: &Graph,
    params: &SkeletonParams,
    seed: u64,
    threads: usize,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let schedule = params.schedule(n);
    let budget = theorem2_budget(n, params.eps);
    let words = budget.limit().expect("theorem2 budget is bounded");
    let cfg = Arc::new(SkelConfig::build(&schedule, n, seed, words));
    let mut net = ParallelNetwork::new(g, budget, seed, threads);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run_traced(|v, _| SkelNode::new(Arc::clone(&cfg), v), max_rounds, sink)?;
    Ok(collect_spanner(g, &states, net.metrics()))
}

/// Runs the distributed skeleton protocol under a fault schedule.
///
/// Unlike [`build_distributed`], this never panics and never returns an
/// unchecked spanner: the output is re-certified against the fault-free
/// host graph (spanning + the schedule's certified distortion bound via
/// [`verify_stretch_exact`](spanner_graph::verify_stretch_exact)), and any
/// failure — simulator error, hostile-schedule panic, or certification
/// miss — comes back as a typed [`FaultError`] retaining the partial
/// [`RunMetrics`](spanner_netsim::RunMetrics) with fault counters.
///
/// # Errors
///
/// [`FaultError::Run`] when the simulated
/// run fails, [`FaultError::Uncertified`]
/// when the surviving output is not a certified skeleton.
#[allow(clippy::result_large_err)] // error carries full RunMetrics by design
pub fn build_distributed_faulted(
    g: &Graph,
    params: &SkeletonParams,
    seed: u64,
    plan: &FaultPlan,
) -> Result<Spanner, FaultError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let schedule = params.schedule(n);
    let budget = theorem2_budget(n, params.eps);
    let words = budget.limit().expect("theorem2 budget is bounded");
    let cfg = Arc::new(SkelConfig::build(&schedule, n, seed, words));
    let max_rounds = cfg.total_rounds + 8;
    // RefCell: the build closure and the metrics-recovery closure both
    // need the network; the latter only runs after the former finished
    // (or unwound, which releases the borrow).
    let net = std::cell::RefCell::new(Network::new(g, budget, seed).with_faults(plan.clone()));
    let bound = schedule.distortion_bound as f64;
    crate::faults::build_certified(
        g,
        || {
            let mut net = net.borrow_mut();
            let states = net.run(|v, _| SkelNode::new(Arc::clone(&cfg), v), max_rounds)?;
            let metrics = net.metrics();
            Ok(collect_spanner(g, &states, metrics))
        },
        || net.borrow().metrics(),
        |s| {
            spanner_graph::verify_stretch_exact(
                g,
                &s.edges,
                spanner_graph::StretchBound::multiplicative(bound),
            )
            .map_err(|v| v.to_string())
        },
    )
}

/// Gathers per-node edge selections into a [`Spanner`] with metrics.
fn collect_spanner(g: &Graph, states: &[SkelNode], metrics: spanner_netsim::RunMetrics) -> Spanner {
    let mut edges = EdgeSet::new(g);
    for st in states {
        for &(a, b) in &st.selected {
            let e = g.find_edge(a, b).expect("selected edges are graph edges");
            edges.insert(e);
        }
    }
    Spanner {
        edges,
        metrics: Some(metrics),
    }
}

/// [`collect_spanner`] for the zero-`Graph` path: edge ids come from the
/// CSR edge index, which reproduces the lexicographic id order of
/// [`Graph::from_edges`] exactly.
fn collect_spanner_csr(
    csr: &CsrAdjacency,
    states: &[SkelNode],
    metrics: spanner_netsim::RunMetrics,
) -> Spanner {
    let index = csr.edge_index();
    let mut edges = EdgeSet::with_universe(index.edge_count());
    for st in states {
        for &(a, b) in &st.selected {
            let e = index
                .edge_id(csr, a, b)
                .expect("selected edges are graph edges");
            edges.insert(e);
        }
    }
    Spanner {
        edges,
        metrics: Some(metrics),
    }
}

/// Number of simulator rounds the timetable occupies for an n-node input —
/// the deterministic round bound the protocol runs to (used by E3).
pub fn timetable_rounds(n: usize, params: &SkeletonParams) -> u32 {
    let schedule = params.schedule(n.max(2));
    let budget = theorem2_budget(n.max(2), params.eps);
    SkelConfig::build(&schedule, n.max(2), 0, budget.limit().expect("bounded")).total_rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn distributed_is_spanning() {
        let params = SkeletonParams::default();
        for seed in 0..3 {
            let g = generators::connected_gnm(300, 1_800, seed);
            let s = build_distributed(&g, &params, seed + 50).expect("run succeeds");
            assert!(s.is_spanning(&g), "seed {seed}");
        }
    }

    #[test]
    fn distributed_linear_size() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(2_000, 20_000, 7);
        let s = build_distributed(&g, &params, 3).unwrap();
        assert!(s.is_spanning(&g));
        let per_node = s.edges_per_node(&g);
        assert!(
            per_node < 7.0,
            "distributed skeleton size {per_node:.2}/node"
        );
    }

    #[test]
    fn distributed_stretch_within_bound() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(400, 2_400, 11);
        let s = build_distributed(&g, &params, 5).unwrap();
        let bound = params.schedule(g.node_count()).distortion_bound as f64;
        let r = s.stretch_exact(&g);
        assert_eq!(r.disconnected, 0);
        assert!(
            r.max_multiplicative <= bound,
            "stretch {} > certified {bound}",
            r.max_multiplicative
        );
    }

    #[test]
    fn rounds_match_timetable_and_budget_respected() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(500, 3_000, 13);
        let s = build_distributed(&g, &params, 9).unwrap();
        let m = s.metrics.expect("distributed metrics");
        let planned = timetable_rounds(500, &params);
        assert!(m.rounds <= planned + 8, "{} vs {planned}", m.rounds);
        let cap = theorem2_budget(500, params.eps).limit().unwrap();
        assert!(m.max_message_words <= cap);
    }

    #[test]
    fn size_comparable_to_sequential() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(1_000, 8_000, 21);
        let seq = crate::skeleton::build_sequential(&g, &params, 4);
        let dist = build_distributed(&g, &params, 4).unwrap();
        // Different tie-breaking, same algorithm: sizes in the same range.
        let (a, b) = (seq.len() as f64, dist.len() as f64);
        assert!(
            (a - b).abs() < 0.5 * a.max(b),
            "seq {a} vs dist {b} diverge"
        );
    }

    #[test]
    fn works_on_structured_graphs() {
        let params = SkeletonParams::default();
        for g in [
            generators::grid(15, 15),
            generators::cycle(150),
            generators::caveman(10, 12, 6, 3),
        ] {
            let s = build_distributed(&g, &params, 2).unwrap();
            assert!(s.is_spanning(&g));
        }
    }

    #[test]
    fn empty_and_single() {
        let params = SkeletonParams::default();
        let s = build_distributed(&spanner_graph::Graph::empty(0), &params, 1).unwrap();
        assert!(s.is_empty());
        let g1 = spanner_graph::Graph::empty(1);
        let s1 = build_distributed(&g1, &params, 1).unwrap();
        assert!(s1.is_spanning(&g1));
    }

    #[test]
    fn deterministic() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(200, 1_000, 17);
        let a = build_distributed(&g, &params, 5).unwrap();
        let b = build_distributed(&g, &params, 5).unwrap();
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn parallel_driver_matches_sequential() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(300, 1_500, 23);
        let seq = build_distributed(&g, &params, 6).unwrap();
        for threads in [1, 2, 4] {
            let par = build_distributed_parallel(&g, &params, 6, threads).unwrap();
            assert_eq!(seq.edges, par.edges, "{threads} threads");
            assert_eq!(seq.metrics, par.metrics, "{threads} threads");
        }
    }

    /// The zero-`Graph` CSR driver must reproduce the `Graph` driver
    /// byte-for-byte: same edge set (via the CSR edge index), same metrics,
    /// sequential and parallel.
    #[test]
    fn csr_driver_matches_graph_driver() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(300, 1_500, 31);
        let from_graph = build_distributed(&g, &params, 6).unwrap();
        let csr = Arc::new(CsrAdjacency::from_graph(&g));
        let from_csr = build_distributed_csr(&csr, &params, 6).unwrap();
        assert_eq!(from_graph.edges, from_csr.edges);
        assert_eq!(from_graph.metrics, from_csr.metrics);
        for threads in [1, 4] {
            let par = build_distributed_csr_parallel(&csr, &params, 6, threads).unwrap();
            assert_eq!(from_graph.edges, par.edges, "{threads} threads");
            assert_eq!(from_graph.metrics, par.metrics, "{threads} threads");
        }
    }

    #[test]
    fn timetable_rounds_grow_slowly() {
        let params = SkeletonParams::default();
        let r1 = timetable_rounds(1_000, &params);
        let r2 = timetable_rounds(100_000, &params);
        // O(eps^-1 2^{log*} log n) with our constant-factor inflation: the
        // growth from 1k to 100k nodes is modest.
        assert!(r2 < 8 * r1, "rounds {r1} -> {r2}");
    }

    /// Acceptance check for the tracing subsystem: on an Erdős–Rényi input
    /// the per-phase round totals of the trace sum exactly to the run's
    /// `RunMetrics::rounds`, every `Expand` call appears as its own span,
    /// and the traced spanner is the untraced one.
    #[test]
    fn traced_run_accounts_every_round() {
        let params = SkeletonParams::default();
        let g = generators::erdos_renyi_gnm(10_000, 30_000, 3);
        let mut summary = spanner_netsim::TraceSummary::new();
        let s = build_distributed_traced(&g, &params, 7, &mut summary).unwrap();
        let m = s.metrics.expect("distributed metrics");
        assert!(m.agrees_with(&summary), "{m} vs trace totals");
        let phase_rounds: u32 = summary.phases().iter().map(|p| p.rounds).sum::<u32>()
            + summary.untracked().map_or(0, |p| p.rounds);
        assert_eq!(phase_rounds, m.rounds);
        let expands = summary
            .phases()
            .iter()
            .filter(|p| p.name.starts_with("expand["))
            .count();
        assert_eq!(expands, params.schedule(g.node_count()).calls.len());
        assert!(summary.is_complete());
        // Tracing must not perturb the run itself.
        let untraced = build_distributed(&g, &params, 7).unwrap();
        assert_eq!(s.edges, untraced.edges);
        assert_eq!(s.metrics, untraced.metrics);
    }

    /// The serialized trace stream is byte-identical between the sequential
    /// and parallel drivers at every thread count.
    #[test]
    fn traced_parallel_stream_matches_sequential() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(600, 3_600, 29);
        let mut seq_sink = spanner_netsim::JsonLinesSink::new(Vec::<u8>::new());
        let seq = build_distributed_traced(&g, &params, 6, &mut seq_sink).unwrap();
        let seq_bytes = seq_sink.finish().unwrap();
        assert!(!seq_bytes.is_empty());
        for threads in [1, 2, 4, 8] {
            let mut par_sink = spanner_netsim::JsonLinesSink::new(Vec::<u8>::new());
            let par =
                build_distributed_parallel_traced(&g, &params, 6, threads, &mut par_sink).unwrap();
            assert_eq!(seq.edges, par.edges, "{threads} threads");
            assert_eq!(seq_bytes, par_sink.finish().unwrap(), "{threads} threads");
        }
    }
}
