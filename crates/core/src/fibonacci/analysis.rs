//! The distortion analysis of Fibonacci spanners as executable functions.
//!
//! Lemma 9 defines *valid* pairs of sequences {C^i_λ}, {I^i_λ}: for any
//! i-segment of length λ^i, either the spanner contains a path of length at
//! most C^i_λ between its endpoints (*complete*), or the segment's start is
//! within I^i_λ (minus progress) of a level-(i+1) hilltop (*incomplete*).
//! Lemma 10 gives closed-form bounds. Theorem 7 converts C^o_λ into the
//! per-distance distortion envelope, since every o-segment must be complete
//! (V_{o+1} = ∅).
//!
//! The experiments use [`distortion_envelope`] to check measured spanner
//! distances against the guarantee, and the tests check Lemma 10's closed
//! forms against Lemma 9's recurrences numerically.

/// The recurrences of Lemma 9, iterated exactly (in f64):
/// returns (C^i_λ, I^i_λ) for the requested `i` and `lambda ≥ 1`.
///
/// ```text
/// I^0 = 1, I^1 = λ+1, C^0 = 1, C^1 = λ+2
/// I^i = I^{i−1} + 2 I^{i−2} + λ^i + (λ−1) λ^{i−2}
/// C^i = max(λ C^{i−1}, (λ−1) C^{i−1} + 2(I^{i−1} + I^{i−2}) + λ^{i−1})
/// ```
pub fn recurrence(lambda: u64, i: u32) -> (f64, f64) {
    assert!(lambda >= 1, "lambda must be >= 1");
    let l = lambda as f64;
    let (mut c_prev, mut i_prev) = (1.0f64, 1.0f64); // i = 0
    if i == 0 {
        return (c_prev, i_prev);
    }
    let (mut c_cur, mut i_cur) = (l + 2.0, l + 1.0); // i = 1
    for k in 2..=i {
        let lk = l.powi(k as i32);
        let lk2 = l.powi(k as i32 - 2);
        let i_next = i_cur + 2.0 * i_prev + lk + (l - 1.0) * lk2;
        let c_next =
            (l * c_cur).max((l - 1.0) * c_cur + 2.0 * (i_cur + i_prev) + l.powi(k as i32 - 1));
        i_prev = i_cur;
        i_cur = i_next;
        c_prev = c_cur;
        c_cur = c_next;
    }
    let _ = c_prev;
    (c_cur, i_cur)
}

/// The closed-form bound on C^i_λ from Lemma 10.
pub fn c_closed_form(lambda: u64, i: u32) -> f64 {
    match lambda {
        0 => 0.0,
        1 => 2f64.powi(i as i32 + 1),
        2 => 3.0 * (i as f64 + 1.0) * 2f64.powi(i as i32),
        _ => {
            let l = lambda as f64;
            let c_prime = 1.0 + (2.0 * l + 1.0) / ((l + 1.0) * (l - 2.0));
            let c = 3.0 + (6.0 * l - 2.0) / (l * (l - 2.0));
            let li = l.powi(i as i32);
            (c * li).min(li + 2.0 * c_prime * i as f64 * li / l)
        }
    }
}

/// The closed-form bound on I^i_λ from Lemma 10.
pub fn i_closed_form(lambda: u64, i: u32) -> f64 {
    match lambda {
        0 => 0.0,
        1 => (2f64.powi(i as i32 + 2)) / 3.0,
        2 => (i as f64 + 2.0 / 3.0) * 2f64.powi(i as i32) + 1.0 / 3.0,
        _ => {
            let l = lambda as f64;
            let c_prime = 1.0 + (2.0 * l + 1.0) / ((l + 1.0) * (l - 2.0));
            c_prime * l.powi(i as i32)
        }
    }
}

/// The guaranteed spanner distance for host distance `d` under order `o`
/// and radius base `ell` (Theorem 7 plus Corollary 1's rounding/chopping):
///
/// * round `d` up to λ^o with λ = ⌈d^{1/o}⌉ and use C^o_λ when λ ≤ ℓ−2,
/// * chop longer distances into pieces of length (ℓ−2)^o and bound each
///   piece by C^o_{ℓ−2}.
///
/// The result is an absolute bound on δ_S(u, v), deterministically valid
/// for the construction of [`sequential`](crate::fibonacci::sequential).
pub fn distortion_envelope(o: u32, ell: u64, d: u64) -> f64 {
    assert!(o >= 1, "order must be >= 1");
    assert!(ell >= 5, "ell must be >= 5 so lambda = 3 is usable");
    if d == 0 {
        return 0.0;
    }
    let lam_max = ell - 2;
    let lambda = (d as f64).powf(1.0 / o as f64).ceil() as u64;
    if lambda <= lam_max {
        c_closed_form(lambda, o)
    } else {
        let piece = (lam_max as f64).powi(o as i32);
        let pieces = (d as f64 / piece).ceil();
        pieces * c_closed_form(lam_max, o)
    }
}

/// The four-stage multiplicative distortion of Theorem 7, as a function of
/// distance `d = λ^o`: returns the guaranteed multiplicative stretch (the
/// envelope divided by d).
pub fn multiplicative_stretch(o: u32, ell: u64, d: u64) -> f64 {
    if d == 0 {
        return 1.0;
    }
    distortion_envelope(o, ell, d) / d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lemma 10's closed forms dominate Lemma 9's recurrences.
    #[test]
    fn closed_forms_dominate_recurrence() {
        for lambda in 1..=30u64 {
            for i in 0..=12u32 {
                let (c, ival) = recurrence(lambda, i);
                let cb = c_closed_form(lambda, i);
                let ib = i_closed_form(lambda, i);
                assert!(
                    c <= cb * (1.0 + 1e-9),
                    "C: lambda={lambda} i={i}: {c} > {cb}"
                );
                assert!(
                    ival <= ib * (1.0 + 1e-9),
                    "I: lambda={lambda} i={i}: {ival} > {ib}"
                );
            }
        }
    }

    /// Exact small values of the recurrences.
    #[test]
    fn recurrence_base_cases() {
        assert_eq!(recurrence(5, 0), (1.0, 1.0));
        assert_eq!(recurrence(5, 1), (7.0, 6.0));
        // I^2_λ = I^1 + 2 I^0 + λ² + (λ−1) = (λ+1) + 2 + λ² + λ − 1
        let (c2, i2) = recurrence(5, 2);
        assert_eq!(i2, 6.0 + 2.0 + 25.0 + 4.0);
        // C^2 = max(5·7, 4·7 + 2(6+1) + 5) = max(35, 47) = 47
        assert_eq!(c2, 47.0);
    }

    /// λ = 1 closed forms: C^i ≤ 2^{i+1}, I^i ≤ 2^{i+2}/3 (Lemma 10).
    #[test]
    fn lambda_one_exact() {
        // Exact: C^i_1 = 2^{i+1} − 1, alternating I.
        for i in 0..10u32 {
            let (c, _) = recurrence(1, i);
            assert_eq!(c, 2f64.powi(i as i32 + 1) - 1.0, "i={i}");
        }
    }

    /// Theorem 7's headline values: multiplicative stretch tends to 3 for
    /// large λ and is ≈ λ+2 at i = 1.
    #[test]
    fn stretch_stages() {
        let o = 3;
        let ell = 40; // large enough to allow λ up to 38
                      // Stage "tending to 3": at λ = 30, stretch ≤ 3 + (6λ−2)/(λ(λ−2))
        let d = 30u64.pow(o);
        let s = multiplicative_stretch(o, ell, d);
        let c30 = 3.0 + (6.0 * 30.0 - 2.0) / (30.0 * 28.0);
        assert!(s <= c30 + 1e-9, "stretch {s}");
        assert!(s > 1.0);
        // Fourth stage: at λ = 3o/ε' the second closed form gives 1 + ε'
        // (Theorem 7's last line): stretch ≤ 1 + 2c'_λ o / λ ≤ 1 + ε'.
        let eps_p = 0.5f64;
        let lam = (3.0 * o as f64 / eps_p).ceil() as u64; // 18 ≤ ℓ − 2
        let s4 = multiplicative_stretch(o, ell, lam.pow(o));
        assert!(s4 <= 1.0 + eps_p + 1e-9, "fourth stage stretch {s4}");
        // Tiny distances: envelope ≈ 2^{o+1} · d at d = 1.
        let s1 = multiplicative_stretch(o, ell, 1);
        assert!(s1 <= 2f64.powi(o as i32 + 1));
        // λ = 2 stage: 3(o+1)2^o / 2^o = 3(o+1).
        let s2 = multiplicative_stretch(o, ell, 2u64.pow(o));
        assert!((s2 - 3.0 * (o as f64 + 1.0)).abs() < 1e-9);
    }

    /// Envelope is monotone non-decreasing in d (absolute distances).
    #[test]
    fn envelope_monotone() {
        let (o, ell) = (2, 14);
        let mut last = 0.0;
        for d in 0..2_000u64 {
            let e = distortion_envelope(o, ell, d);
            assert!(e + 1e-9 >= last, "envelope dropped at d={d}: {e} < {last}");
            assert!(e + 1e-9 >= d as f64, "envelope below identity at {d}");
            last = e;
        }
    }

    /// Chopping: far beyond (ℓ−2)^o the stretch approaches C^o_{ℓ−2}/(ℓ−2)^o.
    #[test]
    fn chopping_asymptote() {
        let (o, ell) = (2u32, 14u64);
        let lam = ell - 2;
        let asym = c_closed_form(lam, o) / (lam as f64).powi(o as i32);
        let s = multiplicative_stretch(o, ell, 1_000_000);
        assert!(s <= asym * 1.01, "{s} vs {asym}");
        assert!(s >= 1.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be >= 1")]
    fn recurrence_rejects_zero() {
        recurrence(0, 3);
    }
}
