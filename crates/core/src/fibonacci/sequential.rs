//! Centralized Fibonacci spanner construction (Sect. 4.1).
//!
//! 1. Sample the level hierarchy `V_0 ⊇ V_1 ⊇ … ⊇ V_o` with the Lemma 8
//!    probabilities,
//! 2. connect every vertex to its nearest level-i vertex `p_i(v)` (minimum
//!    id among nearest, as in the paper) whenever
//!    `δ(v, p_i(v)) ≤ ℓ^{i-1}` — the parent forests,
//! 3. for each level i, connect every `v ∈ V_{i-1}` by a shortest path to
//!    every `u ∈ B_{i+1,ℓ}(v)` — the level-i vertices within distance
//!    `min(ℓ^i, δ(v, V_{i+1}) − 1)` of `v`.
//!
//! The spanner is the union of all those shortest paths; the construction
//! is deterministic given the seed.

use std::collections::VecDeque;

use rand::Rng;

use spanner_graph::traversal::multi_source_bfs;
use spanner_graph::{EdgeSet, Graph, NodeId};
use spanner_netsim::rng::node_rng;

use crate::fibonacci::params::FibonacciParams;
use crate::spanner::Spanner;

/// Samples the level hierarchy: `level[v]` is the largest `i` with
/// `v ∈ V_i`. Deterministic in `seed`; each vertex flips its own coins
/// (matching the distributed construction, where sampling is local).
pub fn sample_levels(g: &Graph, params: &FibonacciParams, seed: u64) -> Vec<u32> {
    sample_levels_n(g.node_count(), params, seed)
}

/// [`sample_levels`] from a bare node count: the sampling is purely local
/// (each vertex flips its own coins keyed by id), so it needs no topology.
/// Lets CSR-native drivers sample without materializing a [`Graph`].
pub fn sample_levels_n(n: usize, params: &FibonacciParams, seed: u64) -> Vec<u32> {
    (0..n)
        .map(|v| {
            let mut rng = node_rng(seed, v as u32, 1);
            let mut level = 0u32;
            for i in 1..=params.order {
                let keep = params.level_probability(i) / params.level_probability(i - 1);
                if rng.gen::<f64>() < keep {
                    level = i;
                } else {
                    break;
                }
            }
            level
        })
        .collect()
}

/// Builds the Fibonacci spanner centrally. Deterministic in `seed`.
pub fn build_sequential(g: &Graph, params: &FibonacciParams, seed: u64) -> Spanner {
    let levels = sample_levels(g, params, seed);
    build_with_levels(g, params, &levels)
}

/// Builds the spanner for a **given** level assignment (exposed so tests
/// and the distributed implementation can share exact level hierarchies).
pub fn build_with_levels(g: &Graph, params: &FibonacciParams, levels: &[u32]) -> Spanner {
    assert_eq!(levels.len(), g.node_count(), "level vector length mismatch");
    let n = g.node_count();
    let mut edges = EdgeSet::new(g);
    if n == 0 {
        return Spanner::from_edges(edges);
    }

    let members =
        |i: u32| -> Vec<NodeId> { g.nodes().filter(|v| levels[v.index()] >= i).collect() };

    // Nearest-level-(i) data for i = 1..=order (+ the empty level o+1).
    // nearest[i][v] = (distance, attributed min-id source), if any.
    let mut level_bfs = Vec::with_capacity(params.order as usize + 2);
    level_bfs.push(None); // index 0 unused (V_0 = V)
    for i in 1..=params.order {
        let srcs = members(i);
        level_bfs.push(Some(multi_source_bfs(g, &srcs)));
    }
    level_bfs.push(None); // V_{order+1} = ∅

    // 2. Parent forests: P(v, p_i(v)) for δ(v, V_i) ≤ ℓ^{i-1}.
    for i in 1..=params.order {
        let bfs = level_bfs[i as usize].as_ref().expect("computed above");
        let radius = params.ball_radius(i - 1);
        for v in g.nodes() {
            let Some(d) = bfs.dist[v.index()] else {
                continue;
            };
            if d == 0 || d as u64 > radius {
                continue;
            }
            let src = bfs.source[v.index()].expect("attributed");
            // Parent: min-id neighbor one step closer with the same
            // attributed source (always exists; see traversal docs).
            let parent = g
                .neighbor_ids(v)
                .filter(|w| {
                    bfs.dist[w.index()] == Some(d - 1) && bfs.source[w.index()] == Some(src)
                })
                .min()
                .expect("shortest-path parent with same attribution exists");
            let e = g.find_edge(v, parent).expect("neighbor edge");
            edges.insert(e);
        }
    }

    // 3. Ball paths per level.
    //
    // Level 0 (the S_0 term): v includes all incident edges iff
    // δ(v, V_1) ≥ 2 (every neighbor is then in B_{1,ℓ}(v)).
    {
        let d1 = level_bfs
            .get(1)
            .and_then(|o| o.as_ref())
            .map(|b| b.dist.clone());
        for v in g.nodes() {
            let dv1 = match (&d1, params.order) {
                (Some(d), _) => d[v.index()],
                (None, _) => None,
            };
            let truncation_allows = match dv1 {
                Some(d) => d >= 2,
                None => true, // no level-1 vertex at all
            };
            if truncation_allows {
                for &(_, e) in g.neighbors(v) {
                    edges.insert(e);
                }
            }
        }
    }

    // Levels 1..=order: BFS out of each u ∈ V_i bounded by ℓ^i; include
    // the shortest path to every qualifying v ∈ V_{i-1}.
    let mut dist = vec![u32::MAX; n];
    let mut parent: Vec<NodeId> = vec![NodeId(0); n];
    let mut touched: Vec<usize> = Vec::new();
    for i in 1..=params.order {
        let radius = params.ball_radius(i);
        let trunc = level_bfs
            .get(i as usize + 1)
            .and_then(|o| o.as_ref())
            .map(|b| &b.dist);
        for &u in &members(i) {
            // Bounded BFS from u with min-id parents.
            debug_assert!(touched.is_empty());
            dist[u.index()] = 0;
            touched.push(u.index());
            let mut queue = VecDeque::from([u]);
            while let Some(x) = queue.pop_front() {
                let dx = dist[x.index()];
                if dx as u64 == radius {
                    continue;
                }
                for &(y, _) in g.neighbors(x) {
                    if dist[y.index()] == u32::MAX {
                        dist[y.index()] = dx + 1;
                        parent[y.index()] = x;
                        touched.push(y.index());
                        queue.push_back(y);
                    } else if dist[y.index()] == dx + 1 && x < parent[y.index()] {
                        parent[y.index()] = x;
                    }
                }
            }
            // Path inclusion for qualifying targets v ∈ V_{i-1}.
            for &vi in &touched {
                let v = NodeId(vi as u32);
                let d = dist[vi];
                if d == 0 || levels[vi] < i - 1 {
                    continue;
                }
                if let Some(td) = trunc {
                    if let Some(t) = td[vi] {
                        if d >= t {
                            continue; // not closer than V_{i+1}
                        }
                    }
                }
                // Walk the shortest path v → u, adding its edges.
                let mut cur = v;
                while cur != u {
                    let p = parent[cur.index()];
                    let e = g.find_edge(cur, p).expect("BFS tree edge");
                    if !edges.insert(e) {
                        // Path suffix already present *for this source*?
                        // Not necessarily — different sources share edges —
                        // so keep walking regardless.
                    }
                    cur = p;
                }
            }
            // Reset scratch.
            for &t in &touched {
                dist[t] = u32::MAX;
            }
            touched.clear();
        }
    }

    Spanner::from_edges(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fibonacci::analysis::distortion_envelope;
    use spanner_graph::generators;

    fn params(n: usize, o: u32) -> FibonacciParams {
        FibonacciParams::new(n, o, 0.5, 0).unwrap()
    }

    #[test]
    fn levels_are_monotone_sets() {
        let g = generators::erdos_renyi_gnm(2_000, 6_000, 3);
        let p = params(2_000, 3);
        let levels = sample_levels(&g, &p, 7);
        // |V_i| roughly q_i * n.
        for i in 1..=p.order {
            let size = levels.iter().filter(|&&l| l >= i).count() as f64;
            let expect = p.level_probability(i) * 2_000.0;
            assert!(
                size < 3.0 * expect + 30.0,
                "level {i}: {size} vs expected {expect}"
            );
        }
        // Deterministic.
        assert_eq!(levels, sample_levels(&g, &p, 7));
        assert_ne!(levels, sample_levels(&g, &p, 8));
    }

    #[test]
    fn spanning_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::connected_gnm(600, 2_400, seed);
            let p = params(600, 2);
            let s = build_sequential(&g, &p, seed + 10);
            assert!(s.is_spanning(&g), "seed {seed}");
        }
    }

    #[test]
    fn spanning_on_structured_graphs() {
        let p = params(400, 2);
        for g in [
            generators::grid(20, 20),
            generators::cycle(400),
            generators::caveman(20, 20, 10, 5),
        ] {
            let s = build_sequential(&g, &p, 3);
            assert!(s.is_spanning(&g));
        }
    }

    /// The distortion envelope of Theorem 7 / Corollary 1 holds exactly on
    /// every pair — the analysis is deterministic, so any violation is an
    /// implementation bug.
    #[test]
    fn envelope_holds_exactly_small() {
        for (gi, g) in [
            generators::connected_gnm(300, 700, 5),
            generators::grid(15, 20),
            generators::cycle(250),
        ]
        .iter()
        .enumerate()
        {
            let p = params(g.node_count(), 2);
            let s = build_sequential(g, &p, 11);
            let viol = s.check_envelope_exact(g, |d| distortion_envelope(p.order, p.ell, d as u64));
            assert!(viol.is_none(), "graph {gi}: {viol:?}");
        }
    }

    #[test]
    fn envelope_holds_order3_sampled() {
        let g = generators::connected_gnm(3_000, 9_000, 9);
        let p = params(3_000, 3);
        let s = build_sequential(&g, &p, 4);
        assert!(s.is_spanning(&g));
        let viol = s.check_envelope_sampled(&g, 2_000, 5, |d| {
            distortion_envelope(p.order, p.ell, d as u64)
        });
        assert!(viol.is_none(), "{viol:?}");
    }

    /// Higher order gives a sparser spanner on dense graphs.
    #[test]
    fn order_controls_size() {
        let g = generators::connected_gnm(4_000, 60_000, 2);
        let s1 = build_sequential(&g, &params(4_000, 1), 3);
        let s2 = build_sequential(&g, &params(4_000, 2), 3);
        assert!(s1.is_spanning(&g));
        assert!(s2.is_spanning(&g));
        assert!(
            s2.len() < s1.len(),
            "order 2 ({}) should be sparser than order 1 ({})",
            s2.len(),
            s1.len()
        );
    }

    /// Size stays within the Lemma 8 prediction (with slack for the
    /// union-of-paths overcounting being an upper bound).
    #[test]
    fn size_within_prediction() {
        let g = generators::connected_gnm(5_000, 50_000, 8);
        let p = params(5_000, 2);
        let s = build_sequential(&g, &p, 13);
        assert!(
            (s.len() as f64) < 2.0 * p.expected_size() + 5_000.0,
            "size {} vs prediction {}",
            s.len(),
            p.expected_size()
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = spanner_graph::Graph::empty(0);
        let p = FibonacciParams::new(4, 1, 0.5, 0).unwrap();
        let s = build_with_levels(&g, &p, &[]);
        assert_eq!(s.len(), 0);

        let g1 = spanner_graph::Graph::from_edges(4, [(0u32, 1), (1, 2), (2, 3)]);
        let s1 = build_sequential(&g1, &p, 1);
        assert!(s1.is_spanning(&g1));
    }

    /// With every vertex at level 0 (forced), the spanner keeps all edges
    /// (no level-1 vertices to truncate the S_0 balls).
    #[test]
    fn all_level_zero_keeps_everything() {
        let g = generators::erdos_renyi_gnm(100, 300, 4);
        let p = params(100, 2);
        let s = build_with_levels(&g, &p, &vec![0; 100]);
        assert_eq!(s.len(), g.edge_count());
    }

    /// Deterministic in seed.
    #[test]
    fn deterministic() {
        let g = generators::connected_gnm(500, 2_000, 6);
        let p = params(500, 2);
        let a = build_sequential(&g, &p, 42);
        let b = build_sequential(&g, &p, 42);
        assert_eq!(a.edges, b.edges);
    }
}
