//! Distributed Fibonacci spanner construction (Sect. 4.4).
//!
//! The spanner "is composed of a collection of shortest paths that is
//! determined solely by the initial random sampling", so the protocol is a
//! sequence of bounded floods per level i = 1…o, on a globally known
//! timetable:
//!
//! 1. **Parent stage** (radius ℓ^{i−1}): the level-i vertices flood
//!    (distance, min-id) waves; each vertex then knows `p_i(v)` and its
//!    min-id shortest-path parent, and records the parent edge when
//!    `δ(v, V_i) ≤ ℓ^{i−1}` — with unit-size (2-word) messages, exactly
//!    the paper's first stage.
//! 2. **Truncation stage**: the same flood for V_{i+1} at radius ℓ^i + 1
//!    gives each vertex `δ(v, V_{i+1})` where it matters.
//! 3. **Ball stage** (radius ℓ^i): every `y ∈ V_i` broadcasts its
//!    identity; each vertex forwards the *newly learned* ids each round.
//!    If the forward list exceeds the O(n^{1/t})-word budget the vertex
//!    **ceases** participation, recording the step k at which it stopped.
//! 4. **Las Vegas repair**: ceased vertices flood the value k; a min-plus
//!    flood gives every `x ∈ V_{i−1}` the value `min_z(δ(x,z) + k_z)`; if
//!    it undercuts `δ(x, V_{i+1})` the protocol may have missed a ball
//!    member, and x floods a *failure* wave of radius ℓ^i commanding all
//!    recipients to keep every incident edge (the paper's error-detection
//!    mechanism, increasing the expected size by O(1/n)).
//! 5. **Path stage**: every `x ∈ V_{i−1}` computes
//!    `B_{i+1,ℓ}(x)` locally from the ball stage and sends one *token* per
//!    ball member back along the first-heard-from pointers; tokens
//!    deduplicate per target and batch per edge under the same word
//!    budget, and every forwarded token marks the traversed edge as a
//!    spanner edge. The union of token trails is exactly
//!    `∪ P(x, y)` for the required pairs.
//!
//! With an unbounded budget (t = 0) no vertex ever ceases and the
//! construction provably selects the *same edge set* as the sequential
//! implementation (both resolve ties by minimum id); the tests check that
//! equality, which is the strongest cross-validation we have.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use spanner_graph::{CsrAdjacency, EdgeSet, Graph, NodeId};
use spanner_netsim::{
    AsyncNetwork, Ctx, FaultPlan, MessageBudget, MessageSize, Network, NullSink, ParallelNetwork,
    Protocol, RunError, Synchronizer, TraceSink,
};

use crate::faults::FaultError;
use crate::fibonacci::params::FibonacciParams;
use crate::fibonacci::sequential::{sample_levels, sample_levels_n};
use crate::spanner::Spanner;

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FibMsg {
    /// (distance, source) wave for the parent/truncation stages.
    Near {
        /// Hop distance from the wave's origin.
        dist: u32,
        /// The level-i vertex the wave originated at.
        src: NodeId,
    },
    /// Newly learned level-i identities (ball stage).
    Ids(Vec<NodeId>),
    /// Min-plus cease-potential wave.
    Cease(u32),
    /// Failure wave with remaining TTL.
    Fail(u32),
    /// Path tokens: targets whose shortest-path trail passes this edge.
    Tokens(Vec<NodeId>),
}

impl MessageSize for FibMsg {
    fn words(&self) -> usize {
        match self {
            FibMsg::Near { .. } => 2,
            FibMsg::Ids(v) | FibMsg::Tokens(v) => 1 + v.len(),
            FibMsg::Cease(_) | FibMsg::Fail(_) => 1,
        }
    }
}

/// Timetable of one level.
#[derive(Debug, Clone, Copy)]
struct LevelWindows {
    /// Parent flood [start, end): Near waves for V_i, radius ℓ^{i−1}.
    parent: (u32, u32),
    /// Truncation flood [start, end): Near waves for V_{i+1}.
    trunc: (u32, u32),
    /// Ball id flood [start, end).
    ball: (u32, u32),
    /// Cease-potential flood [start, end).
    cease: (u32, u32),
    /// Failure flood [start, end).
    fail: (u32, u32),
    /// Token routing [start, end).
    tokens: (u32, u32),
    /// Ball radius ℓ^i.
    radius: u32,
    /// Parent radius ℓ^{i−1}.
    parent_radius: u32,
}

#[derive(Debug)]
struct FibConfig {
    params: FibonacciParams,
    levels: Vec<LevelWindows>,
    /// Ids per Ids/Tokens message.
    batch: usize,
    total_rounds: u32,
}

impl FibConfig {
    /// Builds the timetable. `diam_cap` is a certified upper bound on the
    /// graph diameter: a wave of radius min(ℓ^i, diam_cap) reaches exactly
    /// the same vertices as one of radius ℓ^i, so capping the flood
    /// windows is semantically neutral — it only removes guaranteed-idle
    /// rounds. (A real deployment obtains such a bound with one BFS echo
    /// in O(diameter) rounds before the construction starts.)
    fn build(params: &FibonacciParams, n: usize, budget: MessageBudget, diam_cap: u32) -> Self {
        let batch = match budget.limit() {
            None => usize::MAX,
            Some(w) => w.saturating_sub(1).max(1),
        };
        let ln_n = (n.max(2) as f64).ln();
        let cap = u64::from(diam_cap.max(2));
        let mut t = 1u32;
        let mut levels = Vec::new();
        for i in 1..=params.order {
            let r = params.ball_radius(i).min(cap) as u32;
            let pr = params.ball_radius(i - 1).min(cap) as u32;
            // Expected ball content: 4·(q_i/q_{i+1})·ln n (the paper's
            // message-length bound); drives the token-drain window.
            let q_ratio =
                params.level_probability(i) / params.level_probability(i + 1).max(1.0 / n as f64);
            let expected_ball = (4.0 * q_ratio * ln_n).ceil() as usize + 1;
            let drain = if batch == usize::MAX {
                1
            } else {
                expected_ball.div_ceil(batch) as u32 + 2
            };
            let parent = (t, t + pr + 3);
            let trunc = (parent.1, parent.1 + r + 4);
            let ball = (trunc.1, trunc.1 + r + 3 + drain);
            let cease = (ball.1, ball.1 + r + 3);
            let fail = (cease.1, cease.1 + r + 3);
            let tokens = (fail.1, fail.1 + r + 3 + 2 * drain);
            levels.push(LevelWindows {
                parent,
                trunc,
                ball,
                cease,
                fail,
                tokens,
                radius: r,
                parent_radius: pr,
            });
            t = tokens.1 + 1;
        }
        FibConfig {
            params: params.clone(),
            levels,
            batch,
            total_rounds: t + 2,
        }
    }
}

/// Per-node state.
#[derive(Debug, Clone)]
pub struct FibNode {
    cfg: Arc<FibConfig>,
    /// My sampled level.
    level: u32,
    /// Level currently being processed (1-based index into windows).
    stage: usize,
    /// Latest Near report per neighbor (parent stage).
    nbr_near: BTreeMap<NodeId, (u32, NodeId)>,
    /// My own best (dist, src) for the parent stage, and what I last sent.
    near_best: Option<(u32, NodeId)>,
    near_sent: Option<(u32, NodeId)>,
    /// Truncation-stage equivalents.
    trunc_best: Option<(u32, NodeId)>,
    trunc_sent: Option<(u32, NodeId)>,
    /// Ball stage: known level-i vertices → (distance, first-hop).
    known: BTreeMap<NodeId, (u32, NodeId)>,
    /// Ids learned this round, to forward next round.
    fresh: Vec<NodeId>,
    /// Step (within the ball window) at which this vertex ceased, if any.
    ceased: Option<u32>,
    /// Min-plus cease potential.
    cease_pot: u32,
    cease_sent: Option<u32>,
    /// Failure TTL to propagate.
    fail_ttl: Option<u32>,
    fail_sent: Option<u32>,
    /// Keep-all flag set by the repair mechanism.
    include_all: bool,
    /// Token queue per next-hop.
    token_queue: BTreeMap<NodeId, Vec<NodeId>>,
    /// Targets already forwarded.
    token_seen: BTreeSet<NodeId>,
    /// Selected spanner edges (undirected, deduplicated).
    pub selected: BTreeSet<(NodeId, NodeId)>,
    /// Truncation distance δ(v, V_{i+1}) per the just-finished stage.
    trunc_dist: u32,
    finished: bool,
}

impl FibNode {
    fn new(cfg: Arc<FibConfig>, level: u32) -> Self {
        FibNode {
            cfg,
            level,
            stage: 0,
            nbr_near: BTreeMap::new(),
            near_best: None,
            near_sent: None,
            trunc_best: None,
            trunc_sent: None,
            known: BTreeMap::new(),
            fresh: Vec::new(),
            ceased: None,
            cease_pot: u32::MAX,
            cease_sent: None,
            fail_ttl: None,
            fail_sent: None,
            include_all: false,
            token_queue: BTreeMap::new(),
            token_seen: BTreeSet::new(),
            selected: BTreeSet::new(),
            trunc_dist: u32::MAX,
            finished: false,
        }
    }

    fn edge(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (a.min(b), a.max(b))
    }
}

impl Protocol for FibNode {
    type Msg = FibMsg;

    fn init(&mut self, _ctx: &mut Ctx<'_, FibMsg>) {}

    #[allow(clippy::too_many_lines)]
    fn round(&mut self, ctx: &mut Ctx<'_, FibMsg>, inbox: &[(NodeId, FibMsg)]) {
        if self.finished {
            return;
        }
        let t = ctx.round();
        let me = ctx.me();
        let i = (self.stage + 1) as u32; // paper's level index
        let w = self.cfg.levels[self.stage];

        // ---- message processing --------------------------------------
        let in_parent = t >= w.parent.0 && t <= w.parent.1;
        let in_trunc = t >= w.trunc.0 && t <= w.trunc.1;
        for (from, msg) in inbox {
            match msg {
                FibMsg::Near { dist, src } => {
                    if in_parent {
                        // Latest report per neighbor (it only improves).
                        self.nbr_near.insert(*from, (*dist, *src));
                        let cand = (*dist + 1, *src);
                        if *dist < w.parent_radius && self.near_best.is_none_or(|b| cand < b) {
                            self.near_best = Some(cand);
                        }
                    } else if in_trunc {
                        let cand = (*dist + 1, *src);
                        if *dist <= w.radius && self.trunc_best.is_none_or(|b| cand < b) {
                            self.trunc_best = Some(cand);
                        }
                    }
                }
                FibMsg::Ids(ids) => {
                    if self.ceased.is_none() {
                        let d = t - w.ball.0;
                        for &y in ids {
                            self.known.entry(y).or_insert_with(|| {
                                self.fresh.push(y);
                                (d, *from)
                            });
                        }
                    }
                }
                FibMsg::Cease(p) => {
                    let cand = p.saturating_add(1);
                    if cand < self.cease_pot {
                        self.cease_pot = cand;
                    }
                }
                FibMsg::Fail(ttl) => {
                    if !self.include_all {
                        self.include_all = true;
                        for &nb in ctx.neighbors() {
                            self.selected.insert(Self::edge(me, nb));
                        }
                    }
                    if *ttl > 0 && self.fail_ttl.is_none_or(|f| *ttl > f) {
                        self.fail_ttl = Some(*ttl);
                    }
                }
                FibMsg::Tokens(ys) => {
                    for &y in ys {
                        if y == me || self.token_seen.contains(&y) {
                            continue;
                        }
                        if let Some(&(_, hop)) = self.known.get(&y) {
                            self.token_seen.insert(y);
                            self.token_queue.entry(hop).or_default().push(y);
                        }
                    }
                }
            }
        }

        // Phase spans for traced runs. Declared by window *range* rather
        // than start round: the stage pointer advances one round after the
        // next level's timetable begins, so an equality check against the
        // fresh window would miss its first round.
        if ctx.tracing() {
            if t >= w.parent.0 && t < w.trunc.0 {
                ctx.enter_phase(format!("L{i}.parent"));
            } else if t >= w.trunc.0 && t < w.ball.0 {
                ctx.enter_phase(format!("L{i}.trunc"));
            } else if t >= w.ball.0 && t < w.cease.0 {
                ctx.enter_phase(format!("L{i}.ball"));
            } else if t >= w.cease.0 && t < w.fail.0 {
                ctx.enter_phase(format!("L{i}.cease"));
            } else if t >= w.fail.0 && t < w.tokens.0 {
                ctx.enter_phase(format!("L{i}.fail"));
            } else if t >= w.tokens.0 && t <= w.tokens.1 {
                ctx.enter_phase(format!("L{i}.tokens"));
            }
        }

        // ---- stage actions --------------------------------------------
        // Parent stage: sources seed themselves at the start; everyone
        // rebroadcasts improvements; at the end, mark the parent edge.
        if t == w.parent.0 {
            self.nbr_near.clear();
            self.near_best = if self.level >= i { Some((0, me)) } else { None };
            self.near_sent = None;
        }
        if t >= w.parent.0 && t < w.parent.1 {
            if let Some(b) = self.near_best {
                if self.near_sent != Some(b) && b.0 < w.parent_radius {
                    ctx.broadcast(FibMsg::Near {
                        dist: b.0,
                        src: b.1,
                    });
                    self.near_sent = Some(b);
                }
            }
        }
        if t == w.parent.1 {
            // Mark P(v, p_i(v)) when 1 ≤ δ(v, V_i) ≤ ℓ^{i−1}: one edge to
            // the min-id neighbor reporting (d−1, same source).
            if let Some((d, src)) = self.near_best {
                if d >= 1 && d as u64 <= self.cfg.params.ball_radius(i - 1) {
                    let parent = self
                        .nbr_near
                        .iter()
                        .filter(|(_, &(nd, ns))| nd == d - 1 && ns == src)
                        .map(|(&w2, _)| w2)
                        .min();
                    if let Some(p) = parent {
                        self.selected.insert(Self::edge(me, p));
                    }
                }
            }
            // Level-0 term of the spanner, evaluated once (at i = 1):
            // keep all incident edges iff δ(v, V_1) ≥ 2.
            if i == 1 {
                let d1 = self.near_best.map_or(u32::MAX, |(d, _)| d);
                if d1 >= 2 {
                    for &nb in ctx.neighbors() {
                        self.selected.insert(Self::edge(me, nb));
                    }
                }
            }
        }

        // Truncation stage: flood for V_{i+1}.
        if t == w.trunc.0 {
            self.trunc_best = if self.level > i { Some((0, me)) } else { None };
            self.trunc_sent = None;
        }
        if t >= w.trunc.0 && t < w.trunc.1 {
            if let Some(b) = self.trunc_best {
                if self.trunc_sent != Some(b) && b.0 <= w.radius {
                    ctx.broadcast(FibMsg::Near {
                        dist: b.0,
                        src: b.1,
                    });
                    self.trunc_sent = Some(b);
                }
            }
        }
        if t == w.trunc.1 {
            self.trunc_dist = self.trunc_best.map_or(u32::MAX, |(d, _)| d);
        }

        // Ball stage.
        if t == w.ball.0 {
            self.known.clear();
            self.fresh.clear();
            self.ceased = None;
            if self.level >= i {
                self.known.insert(me, (0, me));
                self.fresh.push(me);
            }
        }
        if t >= w.ball.0 && t < w.ball.1 && self.ceased.is_none() && !self.fresh.is_empty() {
            let step = t - w.ball.0;
            if step >= w.radius {
                self.fresh.clear(); // wave has gone far enough
            } else if self.fresh.len() > self.cfg.batch {
                self.ceased = Some(step);
                self.fresh.clear();
            } else {
                let ids = std::mem::take(&mut self.fresh);
                ctx.broadcast(FibMsg::Ids(ids));
            }
        }

        // Cease-potential stage (min-plus flood).
        if t == w.cease.0 {
            self.cease_pot = self.ceased.unwrap_or(u32::MAX);
            self.cease_sent = None;
        }
        if t >= w.cease.0
            && t < w.cease.1
            && self.cease_pot != u32::MAX
            && self.cease_sent.is_none_or(|s| self.cease_pot < s)
        {
            ctx.broadcast(FibMsg::Cease(self.cease_pot));
            self.cease_sent = Some(self.cease_pot);
        }

        // Failure stage: detect and flood.
        if t == w.fail.0 {
            self.fail_ttl = None;
            self.fail_sent = None;
            let relevant = self.level + 1 >= i; // x ∈ V_{i−1}
            if relevant && self.cease_pot < self.trunc_dist.min(w.radius + 1) {
                // A ceased vertex may have hidden a ball member: repair.
                if !self.include_all {
                    self.include_all = true;
                    for &nb in ctx.neighbors() {
                        self.selected.insert(Self::edge(me, nb));
                    }
                }
                self.fail_ttl = Some(w.radius);
            }
        }
        if t >= w.fail.0 && t < w.fail.1 {
            if let Some(ttl) = self.fail_ttl {
                if self.fail_sent.is_none_or(|s| ttl > s) && ttl > 0 {
                    ctx.broadcast(FibMsg::Fail(ttl - 1));
                    self.fail_sent = Some(ttl);
                }
            }
        }

        // Token stage.
        if t == w.tokens.0 {
            self.token_queue.clear();
            self.token_seen.clear();
            // x ∈ V_{i−1} initiates a token per ball member.
            if self.level + 1 >= i {
                let ball: Vec<(NodeId, NodeId)> = self
                    .known
                    .iter()
                    .filter(|(&y, &(d, _))| {
                        y != me && d as u64 <= self.cfg.params.ball_radius(i) && d < self.trunc_dist
                    })
                    .map(|(&y, &(_, hop))| (y, hop))
                    .collect();
                for (y, hop) in ball {
                    if self.token_seen.insert(y) {
                        self.token_queue.entry(hop).or_default().push(y);
                    }
                }
            }
        }
        if t >= w.tokens.0 && t < w.tokens.1 && !self.token_queue.is_empty() {
            // One batched message per next-hop per round, within budget.
            let hops: Vec<NodeId> = self.token_queue.keys().copied().collect();
            for hop in hops {
                let queue = self.token_queue.get_mut(&hop).expect("key exists");
                let take = queue.len().min(self.cfg.batch);
                let batch: Vec<NodeId> = queue.drain(..take).collect();
                if queue.is_empty() {
                    self.token_queue.remove(&hop);
                }
                if !batch.is_empty() {
                    self.selected.insert(Self::edge(me, hop));
                    ctx.send(hop, FibMsg::Tokens(batch));
                }
            }
        }
        if t == w.tokens.1 && !self.token_queue.is_empty() && !self.include_all {
            // Could not drain in the window (astronomically unlikely with
            // the sized windows): fall back to keeping everything local.
            self.include_all = true;
            for &nb in ctx.neighbors() {
                self.selected.insert(Self::edge(me, nb));
            }
            self.token_queue.clear();
        }

        // Advance to the next level / finish.
        if t > w.tokens.1 {
            if self.stage + 1 < self.cfg.levels.len() {
                self.stage += 1;
            } else {
                self.finished = true;
                ctx.exit_phase();
            }
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

/// The message budget of Theorem 8: `⌈n^{1/t}⌉ + 2` words for `t ≥ 1`, or
/// unbounded for `t = 0`.
pub fn theorem8_budget(n: usize, t: u32) -> MessageBudget {
    if t == 0 {
        MessageBudget::Unbounded
    } else {
        let w = (n.max(2) as f64).powf(1.0 / t as f64).ceil() as usize;
        MessageBudget::Words(w.max(4) + 2)
    }
}

/// Runs the distributed Fibonacci construction on the simulator.
///
/// Uses the same per-vertex level sampling as
/// [`build_sequential`](crate::fibonacci::sequential::build_sequential)
/// (same seed ⇒ same hierarchy), so the two constructions are directly
/// comparable.
///
/// # Errors
///
/// Propagates simulator failures (round cap / budget violation); neither
/// occurs for the timetable this function derives.
pub fn build_distributed(
    g: &Graph,
    params: &FibonacciParams,
    seed: u64,
) -> Result<Spanner, RunError> {
    build_distributed_traced(g, params, seed, &mut NullSink)
}

/// Like [`build_distributed`], streaming round-level
/// [`TraceEvent`](spanner_netsim::TraceEvent)s into `sink`; each stage of
/// each level appears as an `L<i>.<stage>` phase span (`parent`, `trunc`,
/// `ball`, `cease`, `fail`, `tokens`).
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_traced(
    g: &Graph,
    params: &FibonacciParams,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let levels = sample_levels(g, params, seed);
    let budget = theorem8_budget(n, params.t);
    let cfg = Arc::new(FibConfig::build(params, n, budget, diameter_cap(g)));
    let mut net = Network::new(g, budget, seed);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run_traced(
        |v, _| FibNode::new(Arc::clone(&cfg), levels[v.index()]),
        max_rounds,
        sink,
    )?;
    Ok(collect_spanner(g, &states, net.metrics()))
}

/// Like [`build_distributed`], executed on the event-driven asynchronous
/// simulator with per-link latencies from `delays` and round semantics
/// recovered by `synchronizer` (see [`spanner_netsim::AsyncNetwork`]).
/// Builds the exact spanner of [`build_distributed`] for every delay plan,
/// with async cost counters added to the metrics.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_async(
    g: &Graph,
    params: &FibonacciParams,
    seed: u64,
    delays: &FaultPlan,
    synchronizer: Synchronizer,
) -> Result<Spanner, RunError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let levels = sample_levels(g, params, seed);
    let budget = theorem8_budget(n, params.t);
    let cfg = Arc::new(FibConfig::build(params, n, budget, diameter_cap(g)));
    let mut net = AsyncNetwork::new(g, budget, seed)
        .with_delays(delays.clone())
        .with_synchronizer(synchronizer);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run(
        |v, _| FibNode::new(Arc::clone(&cfg), levels[v.index()]),
        max_rounds,
    )?;
    Ok(collect_spanner(g, &states, net.metrics()))
}

/// Like [`build_distributed`], executed on `threads` worker threads.
///
/// Deterministic in `seed` and independent of `threads`: produces exactly
/// the spanner and metrics of [`build_distributed`] (asserted in tests).
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_parallel(
    g: &Graph,
    params: &FibonacciParams,
    seed: u64,
    threads: usize,
) -> Result<Spanner, RunError> {
    build_distributed_parallel_traced(g, params, seed, threads, &mut NullSink)
}

/// Like [`build_distributed_parallel`], streaming trace events into `sink`.
///
/// The event stream is byte-identical to the one
/// [`build_distributed_traced`] produces for the same graph and seed,
/// whatever `threads` is (asserted in tests).
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_parallel_traced(
    g: &Graph,
    params: &FibonacciParams,
    seed: u64,
    threads: usize,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let levels = sample_levels(g, params, seed);
    let budget = theorem8_budget(n, params.t);
    let cfg = Arc::new(FibConfig::build(params, n, budget, diameter_cap(g)));
    let mut net = ParallelNetwork::new(g, budget, seed, threads);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run_traced(
        |v, _| FibNode::new(Arc::clone(&cfg), levels[v.index()]),
        max_rounds,
        sink,
    )?;
    Ok(collect_spanner(g, &states, net.metrics()))
}

/// Runs the distributed Fibonacci construction under a fault schedule.
///
/// Never panics and never returns an unchecked spanner: the output is
/// re-certified against the fault-free host graph (spanning + the
/// Theorem 7 distortion envelope checked exactly), and every failure comes
/// back as a typed [`FaultError`] retaining the partial
/// [`RunMetrics`](spanner_netsim::RunMetrics) with fault counters.
///
/// # Errors
///
/// [`FaultError::Run`] when the simulated
/// run fails, [`FaultError::Uncertified`]
/// when the surviving output is not a certified Fibonacci spanner.
#[allow(clippy::result_large_err)] // error carries full RunMetrics by design
pub fn build_distributed_faulted(
    g: &Graph,
    params: &FibonacciParams,
    seed: u64,
    plan: &FaultPlan,
) -> Result<Spanner, FaultError> {
    let n = g.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let levels = sample_levels(g, params, seed);
    let budget = theorem8_budget(n, params.t);
    let cfg = Arc::new(FibConfig::build(params, n, budget, diameter_cap(g)));
    let max_rounds = cfg.total_rounds + 8;
    let net = std::cell::RefCell::new(Network::new(g, budget, seed).with_faults(plan.clone()));
    let (order, ell) = (params.order, params.ell);
    crate::faults::build_certified(
        g,
        || {
            let mut net = net.borrow_mut();
            let states = net.run(
                |v, _| FibNode::new(Arc::clone(&cfg), levels[v.index()]),
                max_rounds,
            )?;
            let metrics = net.metrics();
            Ok(collect_spanner(g, &states, metrics))
        },
        || net.borrow().metrics(),
        |s| match s.check_envelope_exact(g, |d| {
            crate::fibonacci::analysis::distortion_envelope(order, ell, d as u64)
        }) {
            None => Ok(()),
            Some(viol) => Err(format!("distortion envelope violated: {viol:?}")),
        },
    )
}

/// [`build_distributed`] straight from a shared CSR adjacency: no
/// [`Graph`] is ever materialized. Byte-identical spanner and metrics to
/// the `Graph` driver on the same topology (asserted in tests); this is
/// the memory-lean entry point the `--scale huge` experiment tiers use.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_csr(
    csr: &Arc<CsrAdjacency>,
    params: &FibonacciParams,
    seed: u64,
) -> Result<Spanner, RunError> {
    let n = csr.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let levels = sample_levels_n(n, params, seed);
    let budget = theorem8_budget(n, params.t);
    let cfg = Arc::new(FibConfig::build(params, n, budget, diameter_cap_csr(csr)));
    let mut net = Network::from_csr(Arc::clone(csr), budget, seed);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run(
        |v, _| FibNode::new(Arc::clone(&cfg), levels[v.index()]),
        max_rounds,
    )?;
    Ok(collect_spanner_csr(csr, &states, net.metrics()))
}

/// [`build_distributed_csr`] executed on `threads` worker threads.
/// Deterministic in `seed` and independent of `threads`.
///
/// # Errors
///
/// Propagates simulator failures, as [`build_distributed`] does.
pub fn build_distributed_csr_parallel(
    csr: &Arc<CsrAdjacency>,
    params: &FibonacciParams,
    seed: u64,
    threads: usize,
) -> Result<Spanner, RunError> {
    let n = csr.node_count();
    if n == 0 {
        return Ok(Spanner::from_edges(EdgeSet::with_universe(0)));
    }
    let levels = sample_levels_n(n, params, seed);
    let budget = theorem8_budget(n, params.t);
    let cfg = Arc::new(FibConfig::build(params, n, budget, diameter_cap_csr(csr)));
    let mut net = ParallelNetwork::from_csr(Arc::clone(csr), budget, seed, threads);
    let max_rounds = cfg.total_rounds + 8;
    let states = net.run(
        |v, _| FibNode::new(Arc::clone(&cfg), levels[v.index()]),
        max_rounds,
    )?;
    Ok(collect_spanner_csr(csr, &states, net.metrics()))
}

/// [`collect_spanner`] against a CSR edge index instead of `Graph` lookup.
fn collect_spanner_csr(
    csr: &CsrAdjacency,
    states: &[FibNode],
    metrics: spanner_netsim::RunMetrics,
) -> Spanner {
    let index = csr.edge_index();
    let mut edges = EdgeSet::with_universe(index.edge_count());
    for st in states {
        for &(a, b) in &st.selected {
            let e = index.edge_id(csr, a, b).expect("selected edges exist");
            edges.insert(e);
        }
    }
    Spanner {
        edges,
        metrics: Some(metrics),
    }
}

/// [`diameter_cap`] over a CSR adjacency (identical value on the same
/// topology: the two-sweep start vertex and tiebreaks match exactly).
fn diameter_cap_csr(csr: &CsrAdjacency) -> u32 {
    if csr.node_count() == 0 {
        return 2;
    }
    let ecc = spanner_graph::distance::diameter_two_sweep_csr(csr, NodeId(0));
    2 * ecc + 2
}

/// Gathers per-node edge selections into a [`Spanner`] with metrics.
fn collect_spanner(g: &Graph, states: &[FibNode], metrics: spanner_netsim::RunMetrics) -> Spanner {
    let mut edges = EdgeSet::new(g);
    for st in states {
        for &(a, b) in &st.selected {
            let e = g.find_edge(a, b).expect("selected edges exist");
            edges.insert(e);
        }
    }
    Spanner {
        edges,
        metrics: Some(metrics),
    }
}

/// Planned timetable length in rounds for a concrete input graph (used by
/// E9's tradeoff table).
pub fn timetable_rounds(g: &Graph, params: &FibonacciParams) -> u32 {
    let n = g.node_count().max(2);
    FibConfig::build(params, n, theorem8_budget(n, params.t), diameter_cap(g)).total_rounds
}

/// A certified upper bound on the diameter: twice the eccentricity found
/// by the classic two-sweep heuristic, plus slack.
fn diameter_cap(g: &Graph) -> u32 {
    if g.node_count() == 0 {
        return 2;
    }
    let ecc = spanner_graph::distance::diameter_two_sweep(g, NodeId(0));
    2 * ecc + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fibonacci::analysis::distortion_envelope;
    use crate::fibonacci::sequential::build_sequential;
    use spanner_graph::generators;

    fn params(n: usize, o: u32, t: u32) -> FibonacciParams {
        FibonacciParams::new(n, o, 0.5, t).unwrap()
    }

    #[test]
    fn unbounded_budget_matches_sequential_exactly() {
        for seed in 0..3u64 {
            let g = generators::connected_gnm(250, 900, seed);
            let p = params(250, 2, 0);
            let seq = build_sequential(&g, &p, seed + 7);
            let dist = build_distributed(&g, &p, seed + 7).expect("run");
            let a: Vec<_> = seq.edges.iter().collect();
            let b: Vec<_> = dist.edges.iter().collect();
            assert_eq!(a, b, "seed {seed}: sequential and distributed differ");
        }
    }

    #[test]
    fn spanning_and_envelope() {
        let g = generators::grid(14, 14);
        let p = params(196, 2, 0);
        let s = build_distributed(&g, &p, 5).unwrap();
        assert!(s.is_spanning(&g));
        let viol = s.check_envelope_exact(&g, |d| distortion_envelope(p.order, p.ell, d as u64));
        assert!(viol.is_none(), "{viol:?}");
    }

    #[test]
    fn bounded_budget_still_spans() {
        let g = generators::connected_gnm(300, 1_200, 11);
        let p = params(300, 2, 3);
        let s = build_distributed(&g, &p, 3).unwrap();
        assert!(s.is_spanning(&g));
        let m = s.metrics.unwrap();
        let cap = theorem8_budget(300, 3).limit().unwrap();
        assert!(m.max_message_words <= cap);
        let viol = s.check_envelope_sampled(&g, 500, 9, |d| {
            distortion_envelope(p.order, p.ell, d as u64)
        });
        assert!(viol.is_none(), "{viol:?}");
    }

    #[test]
    fn rounds_within_timetable() {
        let g = generators::connected_gnm(200, 700, 2);
        let p = params(200, 2, 0);
        let planned = timetable_rounds(&g, &p);
        let s = build_distributed(&g, &p, 1).unwrap();
        assert!(s.metrics.unwrap().rounds <= planned + 8);
    }

    #[test]
    fn tighter_budget_means_smaller_messages() {
        let g = generators::connected_gnm(400, 1_600, 4);
        let mut maxes = Vec::new();
        for t in [2u32, 4] {
            let p = params(400, 2, t);
            let s = build_distributed(&g, &p, 6).unwrap();
            assert!(s.is_spanning(&g), "t={t}");
            maxes.push(s.metrics.unwrap().max_message_words);
        }
        assert!(maxes[1] <= maxes[0], "t=4 should use smaller messages");
    }

    #[test]
    fn empty_graph() {
        let p = FibonacciParams::new(4, 1, 0.5, 0).unwrap();
        let s = build_distributed(&spanner_graph::Graph::empty(0), &p, 1).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn deterministic() {
        let g = generators::connected_gnm(150, 500, 8);
        let p = params(150, 2, 0);
        let a = build_distributed(&g, &p, 3).unwrap();
        let b = build_distributed(&g, &p, 3).unwrap();
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn parallel_driver_matches_sequential() {
        let g = generators::connected_gnm(250, 900, 12);
        let p = params(250, 2, 3);
        let seq = build_distributed(&g, &p, 4).unwrap();
        for threads in [1, 2, 4] {
            let par = build_distributed_parallel(&g, &p, 4, threads).unwrap();
            assert_eq!(seq.edges, par.edges, "{threads} threads");
            assert_eq!(seq.metrics, par.metrics, "{threads} threads");
        }
    }

    /// The CSR-native drivers reproduce the `Graph` drivers byte for byte:
    /// same spanner, same metrics, sequential and parallel.
    #[test]
    fn csr_driver_matches_graph_driver() {
        let g = generators::connected_gnm(250, 900, 21);
        let p = params(250, 2, 3);
        let graph_built = build_distributed(&g, &p, 4).unwrap();
        let csr = Arc::new(CsrAdjacency::from_graph(&g));
        let csr_built = build_distributed_csr(&csr, &p, 4).unwrap();
        assert_eq!(graph_built.edges, csr_built.edges);
        assert_eq!(graph_built.metrics, csr_built.metrics);
        for threads in [1, 4] {
            let par = build_distributed_csr_parallel(&csr, &p, 4, threads).unwrap();
            assert_eq!(graph_built.edges, par.edges, "{threads} threads");
            assert_eq!(graph_built.metrics, par.metrics, "{threads} threads");
        }
    }

    /// Every per-level stage of the timetable shows up as its own phase
    /// span, the trace totals reconcile with the metrics, and the stream is
    /// byte-identical across executors.
    #[test]
    fn traced_run_has_stage_spans() {
        let g = generators::connected_gnm(400, 2_000, 19);
        let p = params(400, 2, 0);
        let mut summary = spanner_netsim::TraceSummary::new();
        let mut seq_sink = spanner_netsim::JsonLinesSink::new(Vec::<u8>::new());
        let s = {
            // One run feeds both the summary and the byte stream: replaying
            // recorded events into a second summary must agree too.
            let seq = build_distributed_traced(&g, &p, 4, &mut seq_sink).unwrap();
            let bytes = seq_sink.finish().unwrap();
            for line in std::str::from_utf8(&bytes).unwrap().lines() {
                let ev = spanner_netsim::TraceEvent::from_json_line(line).expect("parseable");
                summary.observe(&ev);
            }
            seq
        };
        let m = s.metrics.expect("metrics");
        assert!(m.agrees_with(&summary), "{m} vs trace totals");
        for stage in ["parent", "trunc", "ball", "cease", "fail", "tokens"] {
            for level in 1..=p.order {
                let name = format!("L{level}.{stage}");
                assert!(
                    summary.phases().iter().any(|ph| ph.name == name),
                    "missing span {name}"
                );
            }
        }
        let mut par_sink = spanner_netsim::JsonLinesSink::new(Vec::<u8>::new());
        let mut seq_sink2 = spanner_netsim::JsonLinesSink::new(Vec::<u8>::new());
        build_distributed_traced(&g, &p, 4, &mut seq_sink2).unwrap();
        build_distributed_parallel_traced(&g, &p, 4, 4, &mut par_sink).unwrap();
        assert_eq!(seq_sink2.finish().unwrap(), par_sink.finish().unwrap());
    }
}
