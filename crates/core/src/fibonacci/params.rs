//! Fibonacci spanner parameters: order, ball radius base, and the sampling
//! probabilities of Lemma 8.
//!
//! Writing `q_i = n^{−f_i α} ℓ^{−g_i φ + h_i}`, the requirement that all
//! levels contribute equal expected size forces the Fibonacci-like
//! recurrences
//!
//! ```text
//! f_0 = 0, f_1 = 1, f_i = f_{i−1} + f_{i−2} + 1        (f_i = F_{i+2} − 1)
//! g_i = f_i                                            (g_i = F_{i+2} − 1)
//! h_0 = h_1 = 0, h_i = h_{i−1} + h_{i−2} + (i − 1)     (h_i = F_{i+3} − (i+2))
//! ```
//!
//! with `α = 1/(F_{o+3} − 1)` and the exponent of ℓ set to the golden
//! ratio φ, so that `q_{o+1} = 1/n` closes the system (Lemma 8).
//!
//! Sect. 4.4's message-length adjustment is also here: if messages are
//! capped at O(n^{1/t}) words, consecutive probabilities may be at ratio at
//! most `n^{1/t}`; levels beyond the first violation are re-spaced
//! geometrically at exactly that ratio, increasing the order by at most t.

/// The golden ratio φ = (1 + √5)/2.
pub const PHI: f64 = 1.618_033_988_749_895;

/// The k-th Fibonacci number (F_0 = 0, F_1 = 1), saturating.
pub fn fibonacci(k: u32) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..k {
        let next = a.saturating_add(b);
        a = b;
        b = next;
    }
    a
}

/// Parameters of a Fibonacci spanner construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FibonacciParams {
    /// Number of nodes the parameters were derived for.
    pub n: usize,
    /// The order o: number of sampled levels (Sect. 4.1). Higher order =
    /// sparser spanner, larger small-distance distortion.
    pub order: u32,
    /// ε: the asymptotic multiplicative stretch for huge distances is 1+ε.
    pub epsilon: f64,
    /// Message-length exponent t (messages of O(n^{1/t}) words in the
    /// distributed construction); 0 means unbounded messages.
    pub t: u32,
    /// The ball radius base ℓ = 3(o + t)/ε + 2 (Theorems 7–8).
    pub ell: u64,
    /// Sampling probabilities `q_1, …, q_order` (q_0 = 1 and
    /// q_{order+1} = 1/n are implicit).
    pub q: Vec<f64>,
}

impl FibonacciParams {
    /// Derives parameters for an `n`-node graph.
    ///
    /// `order` is clamped to `[1, ⌊log_φ log₂ n⌋]` (the paper's range; at
    /// the top the spanner is sparsest). If `t > 0`, the Sect. 4.4
    /// message-bound re-spacing is applied, which may raise the effective
    /// order by up to `t`.
    ///
    /// # Errors
    ///
    /// Returns a message if `n < 4`, `epsilon ∉ (0, 1]`, or `order == 0`.
    pub fn new(n: usize, order: u32, epsilon: f64, t: u32) -> Result<Self, String> {
        if n < 4 {
            return Err(format!("need n >= 4, got {n}"));
        }
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(format!("epsilon must be in (0, 1], got {epsilon}"));
        }
        if order == 0 {
            return Err("order must be at least 1".to_string());
        }
        let nf = n as f64;
        let max_order = (nf.log2().max(2.0).ln() / PHI.ln()).floor().max(1.0) as u32;
        let order = order.min(max_order);

        let ell = (3.0 * (order + t) as f64 / epsilon + 2.0).ceil() as u64;

        // Lemma 8 exponents.
        let alpha = 1.0 / (fibonacci(order + 3) as f64 - 1.0);
        let ellf = ell as f64;
        let mut q: Vec<f64> = (1..=order)
            .map(|i| {
                let f = fibonacci(i + 2) as f64 - 1.0; // f_i = g_i
                let h = fibonacci(i + 3) as f64 - (i as f64 + 2.0);
                nf.powf(-f * alpha) * ellf.powf(-f * PHI + h)
            })
            .collect();
        // Numeric safety: probabilities are in (0, 1], non-increasing.
        for (i, p) in q.iter_mut().enumerate() {
            *p = p.clamp(1.0 / nf, 1.0);
            if i > 0 {
                // clamp preserves monotonicity under fp noise
            }
        }
        for i in 1..q.len() {
            if q[i] > q[i - 1] {
                q[i] = q[i - 1];
            }
        }

        let mut params = FibonacciParams {
            n,
            order,
            epsilon,
            t,
            ell,
            q,
        };
        if t > 0 {
            params.apply_message_bound();
        }
        Ok(params)
    }

    /// Sect. 4.4: re-spaces probabilities so consecutive ratios are at most
    /// n^{1/t}, extending the level hierarchy by at most t levels.
    fn apply_message_bound(&mut self) {
        let nf = self.n as f64;
        let max_ratio = nf.powf(1.0 / self.t as f64);
        // Find the first index where the ratio q_i / q_{i+1} exceeds the
        // cap (treat q_0 = 1 and q_{o+1} = 1/n as boundary levels).
        let mut full: Vec<f64> = Vec::with_capacity(self.q.len() + 2);
        full.push(1.0);
        full.extend_from_slice(&self.q);
        full.push(1.0 / nf);
        let mut cut = None;
        for i in 0..full.len() - 1 {
            if full[i] / full[i + 1] > max_ratio * (1.0 + 1e-9) {
                cut = Some(i);
                break;
            }
        }
        let Some(cut) = cut else {
            return; // already compliant
        };
        // Keep full[..=cut], then descend geometrically at ratio n^{1/t}
        // until reaching 1/n.
        let mut rebuilt: Vec<f64> = full[1..=cut].to_vec();
        let mut cur = full[cut];
        loop {
            cur /= max_ratio;
            if cur <= 1.0 / nf * (1.0 + 1e-9) {
                break;
            }
            rebuilt.push(cur);
        }
        self.order = rebuilt.len() as u32;
        self.ell = (3.0 * (self.order + self.t) as f64 / self.epsilon + 2.0).ceil() as u64;
        self.q = rebuilt;
    }

    /// Probability that a vertex belongs to level `i` (0 ≤ i ≤ order+1):
    /// q_0 = 1, q_{order+1} = 0 (V_{o+1} = ∅).
    pub fn level_probability(&self, i: u32) -> f64 {
        match i {
            0 => 1.0,
            i if i <= self.order => self.q[i as usize - 1],
            _ => 0.0,
        }
    }

    /// Ball radius `ℓ^i` at level `i`, saturating.
    pub fn ball_radius(&self, i: u32) -> u64 {
        self.ell.saturating_pow(i)
    }

    /// The Lemma 8 size prediction `o·n + n^{1 + 1/(F_{o+3}−1)} ℓ^φ`
    /// (expected number of spanner edges, up to the geometric-decay
    /// constant of the final re-scaling step).
    pub fn expected_size(&self) -> f64 {
        let nf = self.n as f64;
        let alpha = 1.0 / (fibonacci(self.order + 3) as f64 - 1.0);
        self.order as f64 * nf + nf.powf(1.0 + alpha) * (self.ell as f64).powf(PHI)
    }

    /// Maximum order for an n-node graph: ⌊log_φ log₂ n⌋.
    pub fn max_order(n: usize) -> u32 {
        ((n.max(4) as f64).log2().ln() / PHI.ln()).floor().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_numbers() {
        let expect = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (k, &f) in expect.iter().enumerate() {
            assert_eq!(fibonacci(k as u32), f);
        }
        // Saturates rather than overflowing.
        assert_eq!(fibonacci(200), u64::MAX);
    }

    #[test]
    fn phi_identity() {
        assert!((PHI * PHI - PHI - 1.0).abs() < 1e-12);
    }

    /// Lemma 8's closed forms: f_i = F_{i+2} − 1 and h_i = F_{i+3} − (i+2)
    /// satisfy the stated recurrences.
    #[test]
    fn exponent_recurrences() {
        let f = |i: u32| fibonacci(i + 2) as i64 - 1;
        let h = |i: u32| fibonacci(i + 3) as i64 - (i as i64 + 2);
        assert_eq!(f(0), 0);
        assert_eq!(f(1), 1);
        assert_eq!(h(0), 0);
        assert_eq!(h(1), 0);
        for i in 2..20 {
            assert_eq!(f(i), f(i - 1) + f(i - 2) + 1, "f at {i}");
            assert_eq!(h(i), h(i - 1) + h(i - 2) + (i as i64 - 1), "h at {i}");
        }
    }

    #[test]
    fn params_validation() {
        assert!(FibonacciParams::new(3, 2, 0.5, 0).is_err());
        assert!(FibonacciParams::new(100, 0, 0.5, 0).is_err());
        assert!(FibonacciParams::new(100, 2, 0.0, 0).is_err());
        assert!(FibonacciParams::new(100, 2, 2.0, 0).is_err());
        let p = FibonacciParams::new(10_000, 2, 0.5, 0).unwrap();
        assert_eq!(p.order, 2);
        assert_eq!(p.ell, 14); // 3*2/0.5 + 2
    }

    #[test]
    fn order_clamped_to_log_phi_log_n() {
        let p = FibonacciParams::new(1_000, 50, 0.5, 0).unwrap();
        assert_eq!(p.order, FibonacciParams::max_order(1_000));
        assert!(p.order <= 5);
    }

    #[test]
    fn probabilities_monotone_and_valid() {
        for n in [100usize, 10_000, 1_000_000] {
            for o in 1..=FibonacciParams::max_order(n) {
                let p = FibonacciParams::new(n, o, 0.5, 0).unwrap();
                assert_eq!(p.q.len(), p.order as usize);
                let mut last = 1.0f64;
                for (i, &qi) in p.q.iter().enumerate() {
                    assert!(qi > 0.0 && qi <= 1.0, "n={n} o={o} q[{i}]={qi}");
                    assert!(qi <= last + 1e-12, "not monotone at {i}");
                    last = qi;
                }
                assert!(p.level_probability(0) == 1.0);
                assert!(p.level_probability(p.order + 1) == 0.0);
            }
        }
    }

    /// q_1 = n^{-α} ℓ^{-φ} per Lemma 8 (f_1 = g_1 = 1, h_1 = 0).
    #[test]
    fn q1_closed_form() {
        let n = 10_000usize;
        let p = FibonacciParams::new(n, 3, 0.5, 0).unwrap();
        let alpha = 1.0 / (fibonacci(6) as f64 - 1.0); // F_6 = 8
        let expect = (n as f64).powf(-alpha) * (p.ell as f64).powf(-PHI);
        assert!((p.q[0] - expect).abs() < 1e-12 * expect.max(1e-12));
    }

    #[test]
    fn message_bound_respaces() {
        let n = 10_000usize;
        let unbounded = FibonacciParams::new(n, 3, 0.5, 0).unwrap();
        let bounded = FibonacciParams::new(n, 3, 0.5, 4).unwrap();
        // The bounded variant never exceeds ratio n^{1/4} between levels.
        let cap = (n as f64).powf(0.25) * (1.0 + 1e-6);
        let mut full = vec![1.0];
        full.extend_from_slice(&bounded.q);
        full.push(1.0 / n as f64);
        for w in full.windows(2) {
            assert!(
                w[0] / w[1] <= cap,
                "ratio {} exceeds cap {cap}",
                w[0] / w[1]
            );
        }
        // Order grows by at most t.
        assert!(bounded.order <= unbounded.order + 4);
        assert!(bounded.order >= unbounded.order);
    }

    #[test]
    fn ball_radius_powers() {
        let p = FibonacciParams::new(10_000, 2, 0.5, 0).unwrap();
        assert_eq!(p.ball_radius(0), 1);
        assert_eq!(p.ball_radius(1), p.ell);
        assert_eq!(p.ball_radius(2), p.ell * p.ell);
    }

    #[test]
    fn expected_size_near_linear_at_max_order() {
        let n = 1_000_000usize;
        let o = FibonacciParams::max_order(n);
        let p = FibonacciParams::new(n, o, 0.5, 0).unwrap();
        // At maximum order the size is n^{1+o(1)} * polylog factors; it
        // should be well under n^1.2 for this n.
        assert!(p.expected_size() < (n as f64).powf(1.2) * 100.0);
    }
}
