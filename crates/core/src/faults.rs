//! Typed outcomes for fault-injected distributed builds.
//!
//! The `*_faulted` drivers (e.g.
//! [`skeleton::distributed::build_distributed_faulted`](crate::skeleton::distributed::build_distributed_faulted))
//! run a construction under a [`FaultPlan`](spanner_netsim::FaultPlan) and
//! promise exactly one of two outcomes, never a panic and never a silently
//! wrong spanner:
//!
//! * `Ok(spanner)` — the surviving output was *certified*: it spans the
//!   host graph and passes the construction's exact stretch check
//!   (re-verified against the fault-free graph, not trusted from the run);
//! * `Err(FaultError)` — a typed error that retains the partial
//!   [`RunMetrics`] accumulated before the failure, including the fault
//!   counters.
//!
//! Protocol-level panics provoked by a hostile schedule are contained by
//! the driver and surface as [`FaultError::Uncertified`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use spanner_graph::Graph;
use spanner_netsim::{RunError, RunMetrics};

use crate::Spanner;

/// Why a fault-injected distributed build produced no certified spanner.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The simulated run itself failed (round limit or budget violation).
    Run {
        /// The simulator error.
        error: RunError,
        /// Metrics accumulated up to the failure, fault counters included.
        metrics: RunMetrics,
    },
    /// The run finished (or was contained after a panic) but the output
    /// could not be certified correct.
    Uncertified {
        /// Human-readable certification failure.
        reason: String,
        /// Metrics of the uncertified run.
        metrics: RunMetrics,
    },
}

impl FaultError {
    /// The partial metrics retained from the failed run.
    pub fn metrics(&self) -> &RunMetrics {
        match self {
            FaultError::Run { metrics, .. } | FaultError::Uncertified { metrics, .. } => metrics,
        }
    }
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Run { error, .. } => write!(f, "faulted run failed: {error}"),
            FaultError::Uncertified { reason, .. } => {
                write!(f, "output not certified: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Runs `build` (a full simulate-and-collect closure) with panics
/// contained, then certifies the result with `check`; the harness behind
/// every `build_distributed_faulted` driver (spanner constructions outside
/// this crate use it for theirs too).
///
/// `metrics` is called after the build attempt to recover whatever partial
/// accounting the network retained — on the `Err` and panic paths too.
///
/// # Errors
///
/// [`FaultError::Run`] for simulator errors; [`FaultError::Uncertified`]
/// for contained panics, non-spanning output, or a failed `check`.
// The error intentionally carries the run's full `RunMetrics` for
// post-mortem accounting; callers match on it, so it is not boxed.
#[allow(clippy::result_large_err)]
pub fn build_certified<B, M, C>(
    g: &Graph,
    build: B,
    metrics: M,
    check: C,
) -> Result<Spanner, FaultError>
where
    B: FnOnce() -> Result<Spanner, RunError>,
    M: FnOnce() -> RunMetrics,
    C: FnOnce(&Spanner) -> Result<(), String>,
{
    let spanner = match catch_unwind(AssertUnwindSafe(build)) {
        Err(payload) => {
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            return Err(FaultError::Uncertified {
                reason: format!("protocol panicked under faults: {reason}"),
                metrics: metrics(),
            });
        }
        Ok(Err(error)) => {
            return Err(FaultError::Run {
                error,
                metrics: metrics(),
            })
        }
        Ok(Ok(spanner)) => spanner,
    };
    let run_metrics = spanner.metrics.unwrap_or_default();
    if !spanner.is_spanning(g) {
        return Err(FaultError::Uncertified {
            reason: "output does not span the graph".to_owned(),
            metrics: run_metrics,
        });
    }
    if let Err(reason) = check(&spanner) {
        return Err(FaultError::Uncertified {
            reason,
            metrics: run_metrics,
        });
    }
    Ok(spanner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::{generators, EdgeSet};

    fn tiny() -> Graph {
        generators::cycle(4)
    }

    #[test]
    fn certifies_good_output() {
        let g = tiny();
        let s = build_certified(
            &g,
            || Ok(Spanner::from_edges(EdgeSet::full(&g))),
            RunMetrics::default,
            |_| Ok(()),
        )
        .unwrap();
        assert!(s.is_spanning(&g));
    }

    #[test]
    fn maps_run_errors_with_metrics() {
        let g = tiny();
        let m = RunMetrics {
            messages: 7,
            ..Default::default()
        };
        let err = build_certified(
            &g,
            || Err(RunError::RoundLimit { max_rounds: 3 }),
            || m,
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, FaultError::Run { .. }));
        assert_eq!(err.metrics().messages, 7);
    }

    #[test]
    fn rejects_non_spanning_output() {
        let g = tiny();
        let err = build_certified(
            &g,
            || Ok(Spanner::from_edges(EdgeSet::new(&g))),
            RunMetrics::default,
            |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, FaultError::Uncertified { .. }));
        assert!(err.to_string().contains("span"));
    }

    #[test]
    fn contains_panics() {
        let g = tiny();
        let err = build_certified(
            &g,
            || panic!("scrambled invariant"),
            RunMetrics::default,
            |_| Ok(()),
        )
        .unwrap_err();
        match err {
            FaultError::Uncertified { reason, .. } => {
                assert!(reason.contains("scrambled invariant"), "{reason}");
            }
            other => panic!("expected Uncertified, got {other:?}"),
        }
    }

    #[test]
    fn rejects_failed_certification() {
        let g = tiny();
        let err = build_certified(
            &g,
            || Ok(Spanner::from_edges(EdgeSet::full(&g))),
            RunMetrics::default,
            |_| Err("stretch blown".to_owned()),
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "output not certified: stretch blown".to_owned()
        );
    }
}
