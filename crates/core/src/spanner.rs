//! The spanner result type and distortion verification.
//!
//! Following the paper's definition (Sect. 1): a subgraph `S ⊆ E` is an
//! (α, β)-spanner of `G` if `δ_S(u, v) ≤ α·δ(u, v) + β` for all `u, v`.
//! [`Spanner`] holds the selected edges plus the construction's cost
//! accounting; [`StretchReport`] measures the realized distortion (exactly
//! or on sampled pairs) so experiments can compare against the analytic
//! envelopes.

use spanner_graph::components::preserves_connectivity;
use spanner_graph::distance::{sample_pairs, UNREACHABLE};
use spanner_graph::engine::BfsScratch;
use spanner_graph::{DistanceEngine, EdgeSet, Graph, NodeId};
use spanner_netsim::RunMetrics;

/// A spanner of a host graph: the selected edge subset plus the cost of
/// constructing it (rounds / messages / max message words for distributed
/// constructions, `None` for centralized ones).
#[derive(Debug, Clone)]
pub struct Spanner {
    /// The selected edges, as a subset of the host graph's edges.
    pub edges: EdgeSet,
    /// Communication cost of the construction, if it was distributed.
    pub metrics: Option<RunMetrics>,
}

impl Spanner {
    /// Wraps an edge set as a centralized-construction spanner.
    pub fn from_edges(edges: EdgeSet) -> Self {
        Spanner {
            edges,
            metrics: None,
        }
    }

    /// Number of selected edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were selected.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edges per host node, the unit the paper reports sizes in.
    pub fn edges_per_node(&self, g: &Graph) -> f64 {
        self.edges.len() as f64 / g.node_count().max(1) as f64
    }

    /// Whether the spanner is a subgraph of `g` preserving all of `g`'s
    /// connectivity — the minimal correctness requirement.
    pub fn is_spanning(&self, g: &Graph) -> bool {
        self.edges.universe() == g.edge_count() && preserves_connectivity(g, &self.edges)
    }

    /// Exact distortion over **all** connected pairs (O(n·m/64) traversal
    /// work via the bit-parallel engine — use on verification-sized
    /// inputs).
    pub fn stretch_exact(&self, g: &Graph) -> StretchReport {
        self.stretch_exact_threads(g, 1)
    }

    /// [`Spanner::stretch_exact`] with the engine fanned out over
    /// `threads` workers. Distance rows are computed in parallel but
    /// recorded sequentially in (u, v) order, so the report — including
    /// its order-sensitive witness pair and float means — is identical at
    /// every thread count.
    pub fn stretch_exact_threads(&self, g: &Graph, threads: usize) -> StretchReport {
        let n = g.node_count();
        let host = DistanceEngine::new(g).with_threads(threads);
        let sub = DistanceEngine::for_subgraph(g, &self.edges).with_threads(threads);
        let mut report = StretchReport::empty();
        // One stride of sources per engine call bounds peak row memory at
        // 2 × 64 × threads × n cells while keeping every worker busy.
        let stride = 64 * threads.max(1);
        let mut start = 0usize;
        while start < n {
            let end = (start + stride).min(n);
            let sources: Vec<NodeId> = (start as u32..end as u32).map(NodeId).collect();
            let host_rows = host.many_distances(&sources);
            let sub_rows = sub.many_distances(&sources);
            for (i, &u) in sources.iter().enumerate() {
                let dg = &host_rows[i * n..(i + 1) * n];
                let ds = &sub_rows[i * n..(i + 1) * n];
                for v in (u.index() + 1)..n {
                    if dg[v] != UNREACHABLE {
                        report.record(u, NodeId(v as u32), dg[v], ds[v]);
                    }
                }
            }
            start = end;
        }
        report
    }

    /// Distortion on `count` sampled connected pairs (seeded), grouping BFS
    /// runs per source; suitable for large graphs.
    pub fn stretch_sampled(&self, g: &Graph, count: usize, seed: u64) -> StretchReport {
        self.stretch_sampled_threads(g, count, seed, 1)
    }

    /// [`Spanner::stretch_sampled`] with the engine fanned out over
    /// `threads` workers; same sequential-record determinism argument as
    /// [`Spanner::stretch_exact_threads`].
    pub fn stretch_sampled_threads(
        &self,
        g: &Graph,
        count: usize,
        seed: u64,
        threads: usize,
    ) -> StretchReport {
        let pairs = sample_pairs(g, count, seed);
        let n = g.node_count();
        let sub = DistanceEngine::for_subgraph(g, &self.edges).with_threads(threads);
        let mut report = StretchReport::empty();
        let stride = 64 * threads.max(1);
        let mut i = 0usize;
        while i < pairs.len() {
            // The next `stride` distinct sources (pairs arrive sorted by
            // source, so sources form contiguous runs).
            let mut sources: Vec<NodeId> = Vec::with_capacity(stride);
            let mut j = i;
            while j < pairs.len() {
                let u = pairs[j].u;
                if sources.last() != Some(&u) {
                    if sources.len() == stride {
                        break;
                    }
                    sources.push(u);
                }
                j += 1;
            }
            let rows = sub.many_distances(&sources);
            let mut si = 0usize;
            for p in &pairs[i..j] {
                while sources[si] != p.u {
                    si += 1;
                }
                report.record(p.u, p.v, p.dist, rows[si * n + p.v.index()]);
            }
            i = j;
        }
        report
    }

    /// Per-distance distortion profile on sampled pairs: for every host
    /// distance `d` that occurred, the worst and mean multiplicative
    /// stretch among sampled pairs at that distance. Used to regenerate the
    /// four-stage Fibonacci distortion curves (Theorem 7).
    pub fn stretch_profile(&self, g: &Graph, count: usize, seed: u64) -> Vec<DistanceBucket> {
        let pairs = sample_pairs(g, count, seed);
        let sub = DistanceEngine::for_subgraph(g, &self.edges);
        let mut scratch = BfsScratch::new(g.node_count());
        let mut row = vec![UNREACHABLE; g.node_count()];
        let mut cached: Option<NodeId> = None;
        let mut buckets: std::collections::BTreeMap<u32, DistanceBucket> =
            std::collections::BTreeMap::new();
        for p in pairs {
            if p.dist == 0 {
                continue;
            }
            if cached != Some(p.u) {
                sub.distances_into(p.u, &mut scratch, &mut row);
                cached = Some(p.u);
            }
            let dsv = row[p.v.index()];
            let b = buckets.entry(p.dist).or_insert(DistanceBucket {
                dist: p.dist,
                pairs: 0,
                max_stretch: 0.0,
                sum_stretch: 0.0,
                disconnected: 0,
            });
            b.pairs += 1;
            if dsv == UNREACHABLE {
                b.disconnected += 1;
            } else {
                let s = dsv as f64 / p.dist as f64;
                b.max_stretch = b.max_stretch.max(s);
                b.sum_stretch += s;
            }
        }
        buckets.into_values().collect()
    }
}

/// A pair that exceeded a distortion envelope, found by
/// [`Spanner::check_envelope_exact`] / [`Spanner::check_envelope_sampled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeViolation {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Host distance.
    pub host: u32,
    /// Spanner distance (`u32::MAX` if disconnected in the spanner).
    pub in_spanner: u32,
    /// The allowed bound `envelope(host)` that was exceeded.
    pub allowed: f64,
}

impl Spanner {
    /// Checks `δ_S(u,v) ≤ envelope(δ(u,v))` for **all** connected pairs;
    /// returns the first violation found, if any. The per-distance envelope
    /// is how the paper states Fibonacci distortion (Theorem 7): a
    /// different (α, β) at every distance.
    pub fn check_envelope_exact<F>(&self, g: &Graph, envelope: F) -> Option<EnvelopeViolation>
    where
        F: Fn(u32) -> f64,
    {
        let n = g.node_count();
        let host = DistanceEngine::new(g);
        let sub = DistanceEngine::for_subgraph(g, &self.edges);
        let mut host_scratch = BfsScratch::new(n);
        let mut sub_scratch = BfsScratch::new(n);
        let mut dg = vec![UNREACHABLE; n];
        let mut ds = vec![UNREACHABLE; n];
        for u in g.nodes() {
            host.distances_into(u, &mut host_scratch, &mut dg);
            sub.distances_into(u, &mut sub_scratch, &mut ds);
            for v in (u.index() + 1)..n {
                let d = dg[v];
                if d == UNREACHABLE || d == 0 {
                    continue;
                }
                let allowed = envelope(d);
                if ds[v] == UNREACHABLE || ds[v] as f64 > allowed + 1e-9 {
                    return Some(EnvelopeViolation {
                        u,
                        v: NodeId(v as u32),
                        host: d,
                        in_spanner: ds[v],
                        allowed,
                    });
                }
            }
        }
        None
    }

    /// Sampled-pair version of [`Spanner::check_envelope_exact`].
    pub fn check_envelope_sampled<F>(
        &self,
        g: &Graph,
        count: usize,
        seed: u64,
        envelope: F,
    ) -> Option<EnvelopeViolation>
    where
        F: Fn(u32) -> f64,
    {
        let pairs = sample_pairs(g, count, seed);
        let sub = DistanceEngine::for_subgraph(g, &self.edges);
        let mut scratch = BfsScratch::new(g.node_count());
        let mut row = vec![UNREACHABLE; g.node_count()];
        let mut cached: Option<NodeId> = None;
        for p in pairs {
            if p.dist == 0 {
                continue;
            }
            if cached != Some(p.u) {
                sub.distances_into(p.u, &mut scratch, &mut row);
                cached = Some(p.u);
            }
            let dsv = row[p.v.index()];
            let allowed = envelope(p.dist);
            if dsv == UNREACHABLE || dsv as f64 > allowed + 1e-9 {
                return Some(EnvelopeViolation {
                    u: p.u,
                    v: p.v,
                    host: p.dist,
                    in_spanner: dsv,
                    allowed,
                });
            }
        }
        None
    }
}

/// Distortion statistics at one host distance, produced by
/// [`Spanner::stretch_profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceBucket {
    /// Host-graph distance of the pairs in this bucket.
    pub dist: u32,
    /// Number of sampled pairs at this distance.
    pub pairs: usize,
    /// Worst multiplicative stretch observed.
    pub max_stretch: f64,
    /// Sum of stretches (divide by connected pairs for the mean).
    pub sum_stretch: f64,
    /// Pairs disconnected in the spanner (0 for any valid spanner).
    pub disconnected: usize,
}

impl DistanceBucket {
    /// Mean multiplicative stretch over connected pairs in the bucket.
    pub fn mean_stretch(&self) -> f64 {
        let connected = self.pairs - self.disconnected;
        if connected == 0 {
            0.0
        } else {
            self.sum_stretch / connected as f64
        }
    }
}

/// Realized distortion of a spanner on a set of (host-connected) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchReport {
    /// Pairs evaluated.
    pub pairs: usize,
    /// Pairs disconnected in the spanner (0 for a valid spanner).
    pub disconnected: usize,
    /// Worst multiplicative stretch `δ_S / δ` over connected pairs.
    pub max_multiplicative: f64,
    /// Mean multiplicative stretch over connected pairs.
    pub mean_multiplicative: f64,
    /// Worst additive surplus `δ_S − δ` over connected pairs.
    pub max_additive: u32,
    /// Mean additive surplus over connected pairs.
    pub mean_additive: f64,
    /// Witness pair for the worst multiplicative stretch.
    pub worst_pair: Option<(NodeId, NodeId)>,
    sum_mult: f64,
    sum_add: f64,
}

impl StretchReport {
    fn empty() -> Self {
        StretchReport {
            pairs: 0,
            disconnected: 0,
            max_multiplicative: 1.0,
            mean_multiplicative: 1.0,
            max_additive: 0,
            mean_additive: 0.0,
            worst_pair: None,
            sum_mult: 0.0,
            sum_add: 0.0,
        }
    }

    fn record(&mut self, u: NodeId, v: NodeId, host: u32, in_spanner: u32) {
        debug_assert!(host != UNREACHABLE && host > 0);
        self.pairs += 1;
        if in_spanner == UNREACHABLE {
            self.disconnected += 1;
        } else {
            debug_assert!(in_spanner >= host, "spanner cannot shorten distances");
            let mult = in_spanner as f64 / host as f64;
            let add = in_spanner - host;
            if mult > self.max_multiplicative {
                self.max_multiplicative = mult;
                self.worst_pair = Some((u, v));
            }
            self.max_additive = self.max_additive.max(add);
            self.sum_mult += mult;
            self.sum_add += add as f64;
        }
        let connected = (self.pairs - self.disconnected) as f64;
        if connected > 0.0 {
            self.mean_multiplicative = self.sum_mult / connected;
            self.mean_additive = self.sum_add / connected;
        }
    }

    /// Whether every evaluated pair had `δ_S ≤ α·δ` (pure multiplicative).
    ///
    /// An (α, β) check with both parts nonzero is not recoverable from the
    /// aggregate maxima (the max-multiplicative and max-additive witnesses
    /// can be different pairs); a sufficient condition is
    /// `satisfies_multiplicative(alpha) || satisfies_additive(beta)`.
    pub fn satisfies_multiplicative(&self, alpha: f64) -> bool {
        self.disconnected == 0 && self.max_multiplicative <= alpha + 1e-9
    }

    /// Whether every evaluated pair had `δ_S ≤ δ + β` (pure additive).
    pub fn satisfies_additive(&self, beta: u32) -> bool {
        self.disconnected == 0 && self.max_additive <= beta
    }
}

impl std::fmt::Display for StretchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pairs={} max_mult={:.3} mean_mult={:.3} max_add={} mean_add={:.3} disconnected={}",
            self.pairs,
            self.max_multiplicative,
            self.mean_multiplicative,
            self.max_additive,
            self.mean_additive,
            self.disconnected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::{generators, EdgeId};

    /// Spanner = full graph: stretch exactly 1 everywhere.
    #[test]
    fn full_spanner_stretch_one() {
        let g = generators::erdos_renyi_gnm(40, 120, 1);
        let s = Spanner::from_edges(EdgeSet::full(&g));
        assert!(s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        assert_eq!(r.max_multiplicative, 1.0);
        assert_eq!(r.max_additive, 0);
        assert_eq!(r.disconnected, 0);
        assert!(r.satisfies_multiplicative(1.0));
        assert!(r.satisfies_additive(0));
    }

    /// Cycle minus one edge: the deleted edge's endpoints are at distance
    /// n−1 in the spanner, giving multiplicative stretch n−1.
    #[test]
    fn cycle_minus_edge() {
        let n = 11;
        let g = generators::cycle(n);
        let mut edges = EdgeSet::full(&g);
        let e = g.find_edge(NodeId(0), NodeId(n as u32 - 1)).unwrap();
        edges.remove(e);
        let s = Spanner::from_edges(edges);
        assert!(s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        assert_eq!(r.max_multiplicative, (n - 1) as f64);
        assert_eq!(r.max_additive, (n - 2) as u32);
        assert_eq!(r.worst_pair, Some((NodeId(0), NodeId(n as u32 - 1))));
        assert!(r.satisfies_multiplicative((n - 1) as f64));
        assert!(!r.satisfies_multiplicative((n - 2) as f64));
    }

    #[test]
    fn empty_spanner_disconnects() {
        let g = generators::path(5);
        let s = Spanner::from_edges(EdgeSet::new(&g));
        assert!(!s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        assert_eq!(r.disconnected, r.pairs);
        assert!(!r.satisfies_additive(1_000));
    }

    #[test]
    fn sampled_agrees_with_exact_on_full() {
        let g = generators::connected_gnm(60, 140, 2);
        let s = Spanner::from_edges(EdgeSet::full(&g));
        let r = s.stretch_sampled(&g, 200, 3);
        assert!(r.pairs > 0);
        assert_eq!(r.max_multiplicative, 1.0);
        assert_eq!(r.disconnected, 0);
    }

    #[test]
    fn sampled_detects_stretch() {
        let n = 16;
        let g = generators::cycle(n);
        let mut edges = EdgeSet::full(&g);
        edges.remove(EdgeId(0));
        let s = Spanner::from_edges(edges);
        let r = s.stretch_sampled(&g, 500, 9);
        assert!(r.max_multiplicative > 1.0);
        assert_eq!(r.disconnected, 0);
    }

    /// The float means and worst-pair witness are order-sensitive, so this
    /// also pins the sequential-record determinism contract.
    #[test]
    fn threaded_reports_identical() {
        let g = generators::connected_gnm(70, 200, 4);
        let mut edges = EdgeSet::full(&g);
        edges.remove(EdgeId(0));
        edges.remove(EdgeId(7));
        let s = Spanner::from_edges(edges);
        let base_exact = s.stretch_exact(&g);
        let base_sampled = s.stretch_sampled(&g, 300, 9);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                s.stretch_exact_threads(&g, threads),
                base_exact,
                "t={threads}"
            );
            assert_eq!(
                s.stretch_sampled_threads(&g, 300, 9, threads),
                base_sampled,
                "t={threads}"
            );
        }
    }

    #[test]
    fn profile_buckets_sorted_and_consistent() {
        let g = generators::grid(8, 8);
        let s = Spanner::from_edges(EdgeSet::full(&g));
        let profile = s.stretch_profile(&g, 300, 5);
        assert!(!profile.is_empty());
        for w in profile.windows(2) {
            assert!(w[0].dist < w[1].dist);
        }
        for b in &profile {
            assert_eq!(b.disconnected, 0);
            assert!((b.max_stretch - 1.0).abs() < 1e-9);
            assert!((b.mean_stretch() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn edges_per_node() {
        let g = generators::path(10);
        let s = Spanner::from_edges(EdgeSet::full(&g));
        assert!((s.edges_per_node(&g) - 0.9).abs() < 1e-12);
        assert_eq!(s.len(), 9);
        assert!(!s.is_empty());
    }

    #[test]
    fn envelope_checks() {
        let n = 9;
        let g = generators::cycle(n);
        let mut edges = EdgeSet::full(&g);
        let e = g.find_edge(NodeId(0), NodeId(n as u32 - 1)).unwrap();
        edges.remove(e);
        let s = Spanner::from_edges(edges);
        // The deleted chord pair (distance 1) needs n-1; additive envelope
        // d + (n-2) passes, d + (n-3) fails.
        assert!(s
            .check_envelope_exact(&g, |d| d as f64 + (n - 2) as f64)
            .is_none());
        let viol = s
            .check_envelope_exact(&g, |d| d as f64 + (n - 3) as f64)
            .expect("violation");
        assert_eq!(viol.host, 1);
        assert_eq!(viol.in_spanner, (n - 1) as u32);
        // Sampled check agrees on the passing envelope.
        assert!(s
            .check_envelope_sampled(&g, 400, 3, |d| d as f64 + (n - 2) as f64)
            .is_none());
        // Disconnected spanner is always a violation.
        let empty = Spanner::from_edges(EdgeSet::new(&g));
        assert!(empty.check_envelope_exact(&g, |_| 1e18).is_some());
    }

    #[test]
    fn display_report() {
        let g = generators::path(4);
        let s = Spanner::from_edges(EdgeSet::full(&g));
        let r = s.stretch_exact(&g);
        assert!(r.to_string().contains("max_mult=1.000"));
    }
}
