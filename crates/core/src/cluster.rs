//! Clusterings, contraction, and the centralized `Expand` engine.
//!
//! The skeleton algorithm of Sect. 2 works on a sequence of graph–cluster
//! pairs (G_{i,j}, C_{i,j}) where G_{i,j} is a contracted version of the
//! original graph. [`ContractionState`] maintains everything implicitly
//! over the **original** graph:
//!
//! * each live original vertex knows the center of its *supervertex*
//!   (the contracted vertex of G_{i,0} it belongs to) — the φ⁻¹ map,
//! * and the center of its current *cluster* in C_{i,j},
//! * dead vertices are marked and excluded (the graph induced by live
//!   vertices is G_{i,j}).
//!
//! An `Expand` call (Fig. 2) is then one pass over the original edge list:
//! supervertex adjacency (with one representative original edge per
//! adjacent cluster, as the paper's φ⁻¹ edge-selection shorthand requires)
//! is recomputed, each live supervertex applies the [`Decision`] rule, and
//! the selected edges accumulate into the spanner. A contraction merely
//! reassigns supervertex centers — the key economy that makes the
//! centralized algorithm run in O(m) time per call.

use spanner_graph::{EdgeId, EdgeSet, Graph, NodeId};

use crate::expand::{ClusterSampler, Decision};

/// Identifier of a cluster: the original-graph id of its center vertex.
///
/// Clusters (and supervertices) are identified by their center's original
/// vertex id throughout, which is what makes sampling decisions locally
/// recomputable in the distributed implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub NodeId);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C[{}]", self.0)
    }
}

/// Statistics of one `Expand` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpandStats {
    /// Supervertices whose own cluster was sampled.
    pub stayed: usize,
    /// Supervertices that joined a sampled neighbor cluster (line 4).
    pub joined: usize,
    /// Supervertices that died (line 7).
    pub died: usize,
    /// Spanner edges added by this call.
    pub edges_added: usize,
    /// Clusters remaining after the call.
    pub clusters_after: usize,
}

/// The evolving contraction/clustering state of the skeleton algorithm.
#[derive(Debug, Clone)]
pub struct ContractionState<'g> {
    g: &'g Graph,
    /// Per original vertex: center of its supervertex; `None` = dead.
    sv_center: Vec<Option<NodeId>>,
    /// Per original vertex: center of its current cluster (valid iff live).
    cluster_center: Vec<NodeId>,
    /// Selected spanner edges.
    spanner: EdgeSet,
    /// Index of the next `Expand` call (feeds the sampler).
    call_index: u32,
    sampler: ClusterSampler,
}

impl<'g> ContractionState<'g> {
    /// Fresh state: every vertex is its own live supervertex and cluster.
    pub fn new(g: &'g Graph, seed: u64) -> Self {
        let ids: Vec<NodeId> = g.nodes().collect();
        ContractionState {
            g,
            sv_center: ids.iter().copied().map(Some).collect(),
            cluster_center: ids,
            spanner: EdgeSet::new(g),
            call_index: 0,
            sampler: ClusterSampler::new(seed),
        }
    }

    /// The host graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The spanner edges selected so far.
    pub fn spanner(&self) -> &EdgeSet {
        &self.spanner
    }

    /// Consumes the state, returning the selected spanner edges.
    pub fn into_spanner(self) -> EdgeSet {
        self.spanner
    }

    /// Number of live original vertices.
    pub fn live_count(&self) -> usize {
        self.sv_center.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live supervertices (vertices of the current G_{i,j}).
    pub fn supervertex_count(&self) -> usize {
        let mut centers: Vec<NodeId> = self.sv_center.iter().flatten().copied().collect();
        centers.sort_unstable();
        centers.dedup();
        centers.len()
    }

    /// Number of clusters in the current clustering.
    pub fn cluster_count(&self) -> usize {
        let mut centers: Vec<NodeId> = self
            .sv_center
            .iter()
            .zip(&self.cluster_center)
            .filter_map(|(sv, c)| sv.map(|_| *c))
            .collect();
        centers.sort_unstable();
        centers.dedup();
        centers.len()
    }

    /// Whether original vertex `v` is still live.
    pub fn is_live(&self, v: NodeId) -> bool {
        self.sv_center[v.index()].is_some()
    }

    /// The cluster of live original vertex `v`, if live.
    pub fn cluster_of(&self, v: NodeId) -> Option<ClusterId> {
        self.sv_center[v.index()].map(|_| ClusterId(self.cluster_center[v.index()]))
    }

    /// One `Expand` call with sampling probability `p` (Fig. 2).
    ///
    /// Decisions are drawn from the shared [`ClusterSampler`] at the
    /// state's internal call index, which increments afterwards.
    pub fn expand(&mut self, p: f64) -> ExpandStats {
        let call = self.call_index;
        self.call_index += 1;

        // 1. Supervertex ↔ cluster adjacency with representative edges:
        //    entries (supervertex center, adjacent cluster, edge id).
        let mut entries: Vec<(NodeId, NodeId, EdgeId)> = Vec::new();
        for (e, a, b) in self.g.edges() {
            let (sa, sb) = (self.sv_center[a.index()], self.sv_center[b.index()]);
            let (Some(sa), Some(sb)) = (sa, sb) else {
                continue;
            };
            if sa == sb {
                continue;
            }
            let (ca, cb) = (
                self.cluster_center[a.index()],
                self.cluster_center[b.index()],
            );
            if ca != cb {
                entries.push((sa, cb, e));
                entries.push((sb, ca, e));
            }
        }
        entries.sort_unstable();
        // Dedup (supervertex, cluster) keeping the minimum edge id — the
        // deterministic stand-in for the paper's "arbitrary edge in
        // φ⁻¹(u) × φ⁻¹(v)".
        entries.dedup_by_key(|&mut (u, c, _)| (u, c));

        // 2. Per-supervertex decisions.
        let mut decisions: std::collections::HashMap<NodeId, Decision> =
            std::collections::HashMap::new();
        let mut stats = ExpandStats::default();
        let mut idx = 0usize;
        // Iterate groups of `entries` by supervertex; supervertices with no
        // entries are handled afterwards (they die with q = 0 if unsampled).
        while idx < entries.len() {
            let u = entries[idx].0;
            let mut end = idx;
            while end < entries.len() && entries[end].0 == u {
                end += 1;
            }
            let group = &entries[idx..end];
            idx = end;

            let own = self.cluster_center[u.index()];
            if self.sampler.sampled(own, call, p) {
                decisions.insert(u, Decision::Stay);
                continue;
            }
            // Among adjacent clusters, find the sampled one with the
            // smallest (cluster, edge).
            let join = group
                .iter()
                .find(|&&(_, c, _)| self.sampler.sampled(c, call, p));
            match join {
                Some(&(_, c, e)) => {
                    self.spanner.insert(e); // line 4
                    stats.edges_added += 1;
                    decisions.insert(u, Decision::Join(ClusterId(c)));
                }
                None => {
                    for &(_, _, e) in group {
                        if self.spanner.insert(e) {
                            stats.edges_added += 1; // line 7
                        }
                    }
                    decisions.insert(u, Decision::Die);
                }
            }
        }
        // Supervertices with no adjacency entries.
        for v in self.g.nodes() {
            if let Some(sv) = self.sv_center[v.index()] {
                if sv == v && !decisions.contains_key(&v) {
                    let own = self.cluster_center[v.index()];
                    let d = if self.sampler.sampled(own, call, p) {
                        Decision::Stay
                    } else {
                        Decision::Die
                    };
                    decisions.insert(v, d);
                }
            }
        }

        // 3. Apply decisions to every member vertex.
        for v in 0..self.sv_center.len() {
            let Some(sv) = self.sv_center[v] else {
                continue;
            };
            match decisions.get(&sv) {
                Some(Decision::Stay) | None => {}
                Some(Decision::Join(c)) => self.cluster_center[v] = c.0,
                Some(Decision::Die) => self.sv_center[v] = None,
            }
        }
        for d in decisions.values() {
            match d {
                Decision::Stay => stats.stayed += 1,
                Decision::Join(_) => stats.joined += 1,
                Decision::Die => stats.died += 1,
            }
        }
        stats.clusters_after = self.cluster_count();
        stats
    }

    /// Contracts the current clustering: each cluster becomes a single
    /// supervertex (centered at the cluster center) and the clustering
    /// resets to the trivial one.
    pub fn contract(&mut self) {
        for v in 0..self.sv_center.len() {
            if self.sv_center[v].is_some() {
                self.sv_center[v] = Some(self.cluster_center[v]);
            }
        }
    }

    /// Invariant of the algorithm: for every cluster C in the current
    /// clustering, the selected spanner edges restricted to φ⁻¹(C) connect
    /// all of φ⁻¹(C), and the center's eccentricity inside the cluster is
    /// at most `radius_bound`. Returns the maximum realized radius.
    ///
    /// # Panics
    ///
    /// Panics (with a diagnostic) if a cluster is not spanned or exceeds
    /// the bound. Intended for tests and debug assertions.
    pub fn assert_clusters_spanned(&self, radius_bound: u64) -> u64 {
        use std::collections::VecDeque;
        let adj = self.spanner.adjacency(self.g);
        // Group live vertices by cluster center.
        let mut by_cluster: std::collections::HashMap<NodeId, Vec<NodeId>> =
            std::collections::HashMap::new();
        for v in self.g.nodes() {
            if self.sv_center[v.index()].is_some() {
                by_cluster
                    .entry(self.cluster_center[v.index()])
                    .or_default()
                    .push(v);
            }
        }
        let mut max_radius = 0u64;
        for (&center, members) in &by_cluster {
            let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
            assert!(
                member_set.contains(&center),
                "{center} is not a member of its own cluster"
            );
            // BFS from the center inside the member set.
            let mut dist: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
            dist.insert(center, 0);
            let mut q = VecDeque::from([center]);
            while let Some(u) = q.pop_front() {
                let du = dist[&u];
                for &w in &adj[u.index()] {
                    if member_set.contains(&w) && !dist.contains_key(&w) {
                        dist.insert(w, du + 1);
                        q.push_back(w);
                    }
                }
            }
            for &m in members {
                let d = *dist
                    .get(&m)
                    .unwrap_or_else(|| panic!("cluster {center}: member {m} not spanned"));
                assert!(
                    d <= radius_bound,
                    "cluster {center}: member {m} at radius {d} > bound {radius_bound}"
                );
                max_radius = max_radius.max(d);
            }
        }
        max_radius
    }

    /// Invariant: the live clusters form a complete clustering of the live
    /// vertices (every live vertex belongs to a cluster whose center is
    /// live and in the same cluster).
    pub fn assert_complete_clustering(&self) {
        for v in self.g.nodes() {
            if self.sv_center[v.index()].is_some() {
                let c = self.cluster_center[v.index()];
                assert!(
                    self.sv_center[c.index()].is_some(),
                    "live vertex {v} in cluster of dead center {c}"
                );
                assert_eq!(
                    self.cluster_center[c.index()],
                    c,
                    "center {c} not in its own cluster"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn fresh_state_counts() {
        let g = generators::cycle(10);
        let st = ContractionState::new(&g, 1);
        assert_eq!(st.live_count(), 10);
        assert_eq!(st.supervertex_count(), 10);
        assert_eq!(st.cluster_count(), 10);
        assert!(st.is_live(NodeId(3)));
        assert_eq!(st.cluster_of(NodeId(3)), Some(ClusterId(NodeId(3))));
        st.assert_complete_clustering();
        st.assert_clusters_spanned(0);
    }

    #[test]
    fn expand_with_p_zero_kills_everyone() {
        let g = generators::cycle(8);
        let mut st = ContractionState::new(&g, 1);
        let stats = st.expand(0.0);
        assert_eq!(stats.died, 8);
        assert_eq!(stats.stayed + stats.joined, 0);
        assert_eq!(st.live_count(), 0);
        // Every vertex added one edge per adjacent cluster (2 each on a
        // cycle), but shared edges dedup: the spanner is the whole cycle.
        assert_eq!(st.spanner().len(), 8);
    }

    #[test]
    fn expand_with_p_one_keeps_everyone() {
        let g = generators::cycle(8);
        let mut st = ContractionState::new(&g, 1);
        let stats = st.expand(1.0);
        assert_eq!(stats.stayed, 8);
        assert_eq!(st.live_count(), 8);
        assert_eq!(st.spanner().len(), 0);
    }

    #[test]
    fn expand_decisions_partition() {
        let g = generators::connected_gnm(200, 600, 3);
        let mut st = ContractionState::new(&g, 5);
        let stats = st.expand(0.25);
        assert_eq!(stats.stayed + stats.joined + stats.died, 200);
        st.assert_complete_clustering();
        // Clusters after one expand have radius <= 1.
        st.assert_clusters_spanned(1);
    }

    #[test]
    fn expand_reduces_clusters_geometrically() {
        let g = generators::connected_gnm(2_000, 10_000, 7);
        let mut st = ContractionState::new(&g, 9);
        let before = st.cluster_count();
        let stats = st.expand(0.25);
        // E[clusters after] = p * before; allow generous slack.
        assert!(
            (stats.clusters_after as f64) < 0.45 * before as f64,
            "clusters_after {} vs before {}",
            stats.clusters_after,
            before
        );
    }

    #[test]
    fn contract_then_radius_grows() {
        let g = generators::connected_gnm(300, 1_200, 11);
        let mut st = ContractionState::new(&g, 13);
        st.expand(0.3);
        st.assert_clusters_spanned(1);
        st.contract();
        st.assert_complete_clustering();
        // After contraction, clusters are the supervertices (radius <= 1
        // w.r.t. the original graph), trivially clustered.
        let r = st.assert_clusters_spanned(1);
        assert!(r <= 1);
        // Second round: expand again; cluster radius w.r.t. original graph
        // is now <= 1*(2*1+1)+1 = 4 (Lemma 2 with j = 1, r_i = 1).
        st.expand(0.3);
        st.assert_clusters_spanned(4);
    }

    #[test]
    fn isolated_vertices_die_quietly() {
        let g = spanner_graph::Graph::from_edges(4, [(0u32, 1u32)]);
        let mut st = ContractionState::new(&g, 2);
        // With p = 0 everyone dies; isolated vertices contribute no edges.
        let stats = st.expand(0.0);
        assert_eq!(stats.died, 4);
        assert_eq!(st.spanner().len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::connected_gnm(150, 500, 21);
        let run = |seed| {
            let mut st = ContractionState::new(&g, seed);
            st.expand(0.3);
            st.expand(0.3);
            st.contract();
            st.expand(0.3);
            st.into_spanner()
        };
        assert_eq!(run(5).len(), run(5).len());
        let a: Vec<_> = run(5).iter().collect();
        let b: Vec<_> = run(5).iter().collect();
        assert_eq!(a, b);
    }
}
