//! The tower sequence (s_i) of Lemma 1 and the round/iteration schedule of
//! Theorem 2.
//!
//! The skeleton algorithm is guided by the sequence
//!
//! ```text
//! s_0 = s_1 = D,   s_i = (s_{i-1})^{s_{i-1}}  for i ≥ 2
//! ```
//!
//! which grows like an exponential tower (Lemma 1: for
//! n = s_1²…s_{L−1}²·s_L, the number of rounds is L ≤ log* n − log* D + 1).
//! The values explode past any machine integer almost immediately, so
//! [`tower_seq`] saturates at a cap — the algorithm only ever compares s_i
//! against quantities ≤ n, so saturation at `n` is exact for its purposes.
//!
//! [`Schedule`] realizes the schedule of **Theorem 2** for arbitrary `n`:
//! run the ideal rounds (sampling probability 1/s_i, s_i + 1 iterations)
//! while tracking the expected nominal density `d_{i,j}` (Lemma 2); the
//! first time the density would exceed `log^ε n · log(log^ε n)`, stop
//! early and finish with two rounds at sampling probability `log^{−ε} n` —
//! one amplifying the density to `log n`, one driving it to `n` — and a
//! final iteration with sampling probability zero that kills every
//! remaining vertex.

/// Iterated logarithm: the number of times `log2` must be applied to `n`
/// before the result is ≤ 1.
pub fn log_star(n: f64) -> u32 {
    let mut x = n;
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
        if count > 64 {
            break; // unreachable for finite inputs; guard anyway
        }
    }
    count
}

/// The sequence s_0, s_1, …, saturating at `cap`, with `len` entries.
///
/// # Panics
///
/// Panics if `d < 4` (the paper requires D ≥ 4) or `cap < d`.
pub fn tower_seq(d: f64, cap: f64, len: usize) -> Vec<f64> {
    assert!(d >= 4.0, "the paper requires D >= 4, got {d}");
    assert!(cap >= d, "cap must be at least D");
    let mut s = Vec::with_capacity(len);
    for i in 0..len {
        let v: f64 = if i <= 1 {
            d
        } else {
            let prev: f64 = s[i - 1];
            if prev >= cap {
                cap
            } else {
                // prev^prev, computed in log-space to detect overflow early.
                let log_v = prev * prev.log2();
                if log_v >= cap.log2() {
                    cap
                } else {
                    prev.powf(prev)
                }
            }
        };
        s.push(v.min(cap));
    }
    s
}

/// One `Expand` call in the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandCall {
    /// Round index (0-based; the paper's round i+1).
    pub round: u32,
    /// Iteration index within the round (0-based).
    pub iteration: u32,
    /// Sampling probability handed to `Expand` (0 in the final call).
    pub probability: f64,
    /// Whether a contraction happens after this call (end of round).
    pub contract_after: bool,
    /// Certified radius bound r_i of supervertex trees w.r.t. the original
    /// graph *during* this call (Lemma 2/3 bookkeeping; drives the
    /// distributed timetable).
    pub radius_before: u64,
    /// Certified radius bound r_{i,j+1} of cluster trees right after this
    /// call.
    pub cluster_radius_after: u64,
}

/// The full Theorem 2 schedule for a given input size.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The `Expand` calls in execution order.
    pub calls: Vec<ExpandCall>,
    /// The tower sequence used (saturated at n).
    pub seq: Vec<f64>,
    /// The density threshold `log^ε n · log(log^ε n)` that triggers the
    /// early stop.
    pub density_threshold: f64,
    /// The tail sampling probability `log^{−ε} n`.
    pub tail_probability: f64,
    /// Analytic distortion envelope `2·r''` (Lemma 4/Theorem 2): the final
    /// certified bound on the multiplicative stretch.
    pub distortion_bound: u64,
}

impl Schedule {
    /// Builds the Theorem 2 schedule for `n` nodes with density parameter
    /// `d` (the paper's D) and message/locality parameter `eps` (the
    /// paper's ε).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `d < 4`, or `eps` is not in (0, 1].
    pub fn theorem2(n: usize, d: f64, eps: f64) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(d >= 4.0, "the paper requires D >= 4");
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");

        let nf = n as f64;
        let log_n = nf.log2().max(2.0);
        let log_eps_n = log_n.powf(eps).max(2.0);
        // Theorem 2 requires D ≤ log^ε n; on small inputs we keep the
        // user's D but the threshold below then simply triggers at once,
        // which is the correct degenerate behaviour.
        let threshold = log_eps_n * log_eps_n.log2().max(1.0);
        let tail_p = 1.0 / log_eps_n;

        let seq = tower_seq(d, nf.max(d), 8 + log_star(nf) as usize);

        let mut calls = Vec::new();
        let mut density = 1.0f64;
        // Radius bookkeeping (Lemma 2): r = radius of supervertex trees,
        // cluster radius after j iterations is j(2r+1) + r.
        let mut r: u64 = 0;

        let mut stopped_early = false;
        'rounds: for i in 0.. {
            let s_i = seq[i.min(seq.len() - 1)];
            let iterations = if i == 0 {
                1
            } else {
                (s_i + 1.0).min(1e9) as u64
            };
            let p = 1.0 / s_i;
            for j in 0..iterations {
                // Would this iteration push the density over the threshold?
                let next_density = density * s_i;
                let is_last_of_round = j + 1 == iterations;
                let over = next_density > threshold;
                calls.push(ExpandCall {
                    round: i as u32,
                    iteration: j as u32,
                    probability: p,
                    contract_after: is_last_of_round || over,
                    radius_before: r,
                    cluster_radius_after: (j + 1) * (2 * r + 1) + r,
                });
                density = next_density;
                if over {
                    // End the round prematurely (Theorem 2's i*, j*).
                    r = (j + 1) * (2 * r + 1) + r;
                    stopped_early = true;
                    break 'rounds;
                }
            }
            // Contract: new supervertex radius = final cluster radius.
            r = iterations * (2 * r + 1) + r;
            if density >= nf {
                break;
            }
        }

        if stopped_early || density < nf {
            // Tail round A: amplify density to at least log n.
            let mut j = 0u64;
            while density < log_n && density < nf {
                calls.push(ExpandCall {
                    round: u32::MAX - 1,
                    iteration: j as u32,
                    probability: tail_p,
                    contract_after: false,
                    radius_before: r,
                    cluster_radius_after: (j + 1) * (2 * r + 1) + r,
                });
                density *= log_eps_n;
                j += 1;
            }
            if j > 0 {
                let last = calls.len() - 1;
                calls[last].contract_after = true;
                r = j * (2 * r + 1) + r;
            }
            // Tail round B: drive density to n, then kill.
            let mut k = 0u64;
            while density < nf {
                calls.push(ExpandCall {
                    round: u32::MAX,
                    iteration: k as u32,
                    probability: tail_p,
                    contract_after: false,
                    radius_before: r,
                    cluster_radius_after: (k + 1) * (2 * r + 1) + r,
                });
                density *= log_eps_n;
                k += 1;
            }
            // Final call: probability zero kills every remaining vertex.
            calls.push(ExpandCall {
                round: u32::MAX,
                iteration: k as u32,
                probability: 0.0,
                contract_after: true,
                radius_before: r,
                cluster_radius_after: (k + 1) * (2 * r + 1) + r,
            });
            r = (k + 1) * (2 * r + 1) + r;
        } else {
            // Ideal-n path ended exactly: still need the killing call.
            let last_r = r;
            calls.push(ExpandCall {
                round: u32::MAX,
                iteration: 0,
                probability: 0.0,
                contract_after: true,
                radius_before: last_r,
                cluster_radius_after: 2 * last_r + 1 + last_r,
            });
            r = 3 * last_r + 1;
        }

        Schedule {
            calls,
            seq,
            density_threshold: threshold,
            tail_probability: tail_p,
            // Lemma 4: killed-edge detours are ≤ (2j+2)(2r_i+1) − 1 < 2·r''
            // where r'' is the final cluster radius; 2r'' is the certified
            // distortion bound.
            distortion_bound: 2 * r,
        }
    }

    /// Total number of `Expand` calls.
    pub fn num_calls(&self) -> usize {
        self.calls.len()
    }

    /// Number of contractions (= number of rounds).
    pub fn num_rounds(&self) -> usize {
        self.calls.iter().filter(|c| c.contract_after).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e100), 5);
    }

    #[test]
    fn tower_growth_and_saturation() {
        let s = tower_seq(4.0, 1e12, 6);
        assert_eq!(s[0], 4.0);
        assert_eq!(s[1], 4.0);
        assert_eq!(s[2], 256.0); // 4^4
        assert_eq!(s[3], 1e12); // 256^256 saturates
        assert_eq!(s[5], 1e12);
    }

    /// Lemma 1(2): log_b(s_i) = s_1…s_{i−1}·log_b(D) while unsaturated.
    #[test]
    fn lemma1_part2() {
        let d: f64 = 5.0;
        let s = tower_seq(d, 1e300, 3);
        // i = 2: log(s_2) = s_1 log(s_1) = 5 log 5.
        assert!((s[2].log2() - 5.0 * d.log2()).abs() < 1e-9);
        // i = 3 overflows f64, so verify in log space directly:
        // log(s_3) = s_2 log(s_2) must equal s_1 s_2 log D.
        let l3 = s[2] * s[2].log2();
        assert!((l3 - 5.0 * s[2] * d.log2()).abs() < 1e-6 * l3);
    }

    /// Lemma 1(3): s_i ≥ 2^{i+1}·s_1…s_{i−1}.
    #[test]
    fn lemma1_part3() {
        let s = tower_seq(4.0, 1e300, 4);
        let mut product = 1.0;
        for (i, &si) in s.iter().enumerate().take(4).skip(1) {
            assert!(si >= 2f64.powi(i as i32 + 1) * product, "i={i}");
            product *= si;
        }
    }

    #[test]
    #[should_panic(expected = "D >= 4")]
    fn rejects_small_d() {
        tower_seq(3.0, 100.0, 3);
    }

    #[test]
    fn schedule_small_n() {
        let sch = Schedule::theorem2(1_000, 4.0, 0.5);
        assert!(!sch.calls.is_empty());
        // Ends with the killing call.
        let last = sch.calls.last().unwrap();
        assert_eq!(last.probability, 0.0);
        assert!(last.contract_after);
        // Density covered: product of 1/p over non-final calls >= n... the
        // construction guarantees this by looping until density >= n.
        let density: f64 = sch
            .calls
            .iter()
            .filter(|c| c.probability > 0.0)
            .map(|c| 1.0 / c.probability)
            .product();
        assert!(density >= 1_000.0, "density product {density}");
    }

    #[test]
    fn schedule_probabilities_valid() {
        for n in [16usize, 100, 10_000, 1_000_000] {
            let sch = Schedule::theorem2(n, 4.0, 0.5);
            for c in &sch.calls {
                // Probabilities are 1/s_i <= 1/4 in the main rounds and
                // log^{-eps} n in the tail (which can be up to 1/2 for
                // tiny n).
                assert!(c.probability >= 0.0 && c.probability <= 0.5 + 1e-12);
            }
            // Exactly one call has p = 0 and it is last.
            let zeros = sch.calls.iter().filter(|c| c.probability == 0.0).count();
            assert_eq!(zeros, 1);
            assert_eq!(sch.calls.last().unwrap().probability, 0.0);
        }
    }

    #[test]
    fn schedule_radii_monotone() {
        let sch = Schedule::theorem2(50_000, 4.0, 0.5);
        for w in sch.calls.windows(2) {
            assert!(w[1].radius_before >= w[0].radius_before);
            if w[0].contract_after {
                // After contraction the new supervertex radius equals the
                // last cluster radius.
                assert_eq!(w[1].radius_before, w[0].cluster_radius_after);
            } else {
                assert_eq!(w[1].radius_before, w[0].radius_before);
            }
        }
        assert!(sch.distortion_bound > 0);
    }

    #[test]
    fn schedule_call_count_small() {
        // The schedule is short: O(log* n + ε^{-1} + log log n)-ish calls.
        for n in [100usize, 10_000, 1_000_000] {
            let sch = Schedule::theorem2(n, 4.0, 0.5);
            assert!(sch.num_calls() <= 40, "n={n}: {} calls", sch.num_calls());
            assert!(sch.num_rounds() >= 2);
        }
    }

    /// Distortion bound scales like ε^{-1} 2^{log* n} log_D n (Theorem 2):
    /// sanity check it is in a plausible numeric range, and monotone-ish
    /// in n.
    #[test]
    fn distortion_bound_plausible() {
        let b1 = Schedule::theorem2(1_000, 4.0, 0.5).distortion_bound;
        let b2 = Schedule::theorem2(1_000_000, 4.0, 0.5).distortion_bound;
        assert!(b1 >= 4);
        assert!(b2 >= b1);
        assert!(b2 < 2_000_000, "bound {b2} unreasonably large");
    }
}
