//! Linear-size spanners and skeletons (Sect. 2, Theorem 2).
//!
//! The algorithm proceeds in log* n phases of `Expand` calls, contracting
//! clusters between rounds. At density parameter D it produces, with high
//! probability, a spanner of expected size `Dn/e + O(n log D)` and
//! multiplicative distortion `O(ε⁻¹ 2^{log* n} log_D n)`, constructible
//! distributedly in that many rounds with O(log^ε n)-word messages.
//!
//! Two implementations share the [`Schedule`] and the
//! [`ClusterSampler`](crate::expand::ClusterSampler):
//!
//! * [`build_sequential`] — the centralized reference (this module),
//! * [`distributed::build_distributed`] — the per-node protocol of
//!   Theorem 2, run on the network simulator.

pub mod distributed;

use spanner_graph::{EdgeSet, Graph, NodeId};

use crate::cluster::ContractionState;
use crate::seq::Schedule;
use crate::spanner::Spanner;

/// Parameters of the skeleton construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkeletonParams {
    /// The density parameter D ≥ 4: the expected spanner size is
    /// Dn/e + O(n log D).
    pub d: f64,
    /// The message-length/locality parameter ε ∈ (0, 1]: messages have
    /// O(log^ε n) words and the tail sampling probability is log^{−ε} n.
    pub eps: f64,
}

impl SkeletonParams {
    /// Validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `d < 4` (the analysis needs D ≥ 4) or `eps` is
    /// outside (0, 1].
    pub fn new(d: f64, eps: f64) -> Result<Self, String> {
        if d.is_nan() || d < 4.0 {
            return Err(format!("density parameter D must be >= 4, got {d}"));
        }
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(format!("eps must be in (0, 1], got {eps}"));
        }
        Ok(SkeletonParams { d, eps })
    }

    /// The Theorem 2 schedule for an `n`-node input under these parameters.
    pub fn schedule(&self, n: usize) -> Schedule {
        Schedule::theorem2(n.max(2), self.d, self.eps)
    }

    /// The analytic expected size `Dn/e + O(n log D)` with the constants of
    /// Lemma 6 made explicit: `n(D/e + 1 − 2/e + (1 + 1/D)(ln(D+2) − ζ + 1)
    /// + (ln D + 0.2)/D)`.
    pub fn expected_size(&self, n: usize) -> f64 {
        use crate::expand::ZETA;
        let d = self.d;
        let e = std::f64::consts::E;
        n as f64
            * (d / e
                + 1.0
                + -2.0 / e
                + (1.0 + 1.0 / d) * ((d + 2.0).ln() - ZETA + 1.0)
                + (d.ln() + 0.2) / d)
    }
}

impl Default for SkeletonParams {
    /// D = 4 (sparsest sensible skeleton), ε = 1/2.
    fn default() -> Self {
        SkeletonParams { d: 4.0, eps: 0.5 }
    }
}

/// Builds the linear-size spanner with the centralized reference
/// implementation: runs the Theorem 2 schedule of `Expand` calls and
/// contractions over a [`ContractionState`].
///
/// Deterministic in `seed`. Runs in O(m · #calls) = O(m (log* n + ε⁻¹ +
/// log log n)) time.
pub fn build_sequential(g: &Graph, params: &SkeletonParams, seed: u64) -> Spanner {
    let schedule = params.schedule(g.node_count());
    let mut st = ContractionState::new(g, seed);
    for call in &schedule.calls {
        st.expand(call.probability);
        if call.contract_after {
            st.contract();
        }
        if st.live_count() == 0 {
            break;
        }
    }
    debug_assert_eq!(st.live_count(), 0, "schedule must kill every vertex");
    Spanner::from_edges(st.into_spanner())
}

/// Variant of [`build_sequential`] that skips every contraction — the
/// ablation of DESIGN.md §5 showing contraction is what keeps the size
/// linear (without it the per-round base density compounds).
pub fn build_sequential_no_contraction(g: &Graph, params: &SkeletonParams, seed: u64) -> Spanner {
    let schedule = params.schedule(g.node_count());
    let mut st = ContractionState::new(g, seed);
    for call in &schedule.calls {
        st.expand(call.probability);
        if st.live_count() == 0 {
            break;
        }
    }
    // Without contraction the schedule may leave live vertices (clusters
    // never merge into supervertices); kill the remainder to stay a
    // spanner.
    while st.live_count() > 0 {
        st.expand(0.0);
    }
    Spanner::from_edges(st.into_spanner())
}

/// Re-clusters only the subgraph induced by `region` (strictly ascending
/// node ids): runs [`build_sequential`] on `g[region]` and returns the
/// chosen edges as host-graph [`EdgeSet`] — the dirty-region hook of the
/// log-structured update path, where an edit batch invalidates one
/// locality and re-running the construction globally would defeat the
/// point of incrementality.
///
/// With `region` = all nodes this is exactly `build_sequential(g, params,
/// seed).edges` (the induced relabeling is the identity and edge ids are
/// preserved), which is what the differential tests pin.
///
/// # Panics
///
/// Panics if `region` is not strictly ascending or out of range.
pub fn recluster_region(
    g: &Graph,
    region: &[NodeId],
    params: &SkeletonParams,
    seed: u64,
) -> EdgeSet {
    let (sub, host) = g.induced_subgraph(region);
    let local = build_sequential(&sub, params, seed);
    let mut out = EdgeSet::new(g);
    for e in local.edges.iter() {
        out.insert(host[e.index()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn params_validation() {
        assert!(SkeletonParams::new(4.0, 0.5).is_ok());
        assert!(SkeletonParams::new(3.9, 0.5).is_err());
        assert!(SkeletonParams::new(4.0, 0.0).is_err());
        assert!(SkeletonParams::new(4.0, 1.5).is_err());
        assert!(SkeletonParams::new(f64::NAN, 0.5).is_err());
        let def = SkeletonParams::default();
        assert_eq!(def.d, 4.0);
    }

    #[test]
    fn spanning_on_random_graphs() {
        let params = SkeletonParams::default();
        for seed in 0..3 {
            let g = generators::connected_gnm(500, 3_000, seed);
            let s = build_sequential(&g, &params, seed * 7 + 1);
            assert!(s.is_spanning(&g), "seed {seed}");
        }
    }

    #[test]
    fn spanning_on_disconnected_graph() {
        let params = SkeletonParams::default();
        let g = spanner_graph::Graph::from_edges(
            10,
            [(0u32, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7), (7, 4)],
        );
        let s = build_sequential(&g, &params, 3);
        assert!(s.is_spanning(&g));
    }

    #[test]
    fn linear_size_with_slack() {
        // Lemma 6: expected size Dn/e + O(n log D). With D = 4 the explicit
        // constant is ≈ 4/e + 1 − 2/e + 1.25·(ln6 − ζ + 1) + (ln4+0.2)/4
        // ≈ 1.47 + 0.26 + 3.08 + 0.40 ≈ 5.2 edges/vertex. Check the
        // realized size is in that ballpark (the tail rounds add o(n)).
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(4_000, 40_000, 5);
        let s = build_sequential(&g, &params, 17);
        let per_node = s.edges_per_node(&g);
        let predicted = params.expected_size(g.node_count()) / g.node_count() as f64;
        assert!(
            per_node < predicted * 1.4 + 1.0,
            "size {per_node:.2} per node vs predicted {predicted:.2}"
        );
        assert!(s.is_spanning(&g));
    }

    #[test]
    fn recluster_full_region_matches_build_sequential() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(300, 1_500, 8);
        let all: Vec<NodeId> = g.nodes().collect();
        let hook = recluster_region(&g, &all, &params, 21);
        let direct = build_sequential(&g, &params, 21);
        assert_eq!(hook, direct.edges);
    }

    #[test]
    fn recluster_subregion_spans_induced_subgraph() {
        let params = SkeletonParams::default();
        let g = generators::connected_gnm(200, 900, 4);
        let region: Vec<NodeId> = g.nodes().filter(|v| v.0 % 3 != 0).collect();
        let chosen = recluster_region(&g, &region, &params, 5);
        // Every chosen edge lies inside the region...
        let in_region: std::collections::BTreeSet<u32> = region.iter().map(|v| v.0).collect();
        for e in chosen.iter() {
            let (u, v) = g.endpoints(e);
            assert!(in_region.contains(&u.0) && in_region.contains(&v.0));
        }
        // ...and the choice is a spanning subgraph of the induced graph.
        let (sub, host) = g.induced_subgraph(&region);
        let mut local = spanner_graph::EdgeSet::new(&sub);
        for (i, e) in host.iter().enumerate() {
            if chosen.contains(*e) {
                local.insert(spanner_graph::EdgeId(i as u32));
            }
        }
        assert!(Spanner::from_edges(local).is_spanning(&sub));
    }

    #[test]
    fn density_knob_increases_size_and_reduces_stretch() {
        let g = generators::connected_gnm(1_500, 30_000, 9);
        let sparse = build_sequential(&g, &SkeletonParams::new(4.0, 0.5).unwrap(), 3);
        let dense = build_sequential(&g, &SkeletonParams::new(16.0, 0.5).unwrap(), 3);
        assert!(dense.len() > sparse.len());
        let rs = sparse.stretch_sampled(&g, 300, 1);
        let rd = dense.stretch_sampled(&g, 300, 1);
        assert_eq!(rs.disconnected, 0);
        assert_eq!(rd.disconnected, 0);
        // Denser spanner should not be (much) worse.
        assert!(rd.mean_multiplicative <= rs.mean_multiplicative + 0.35);
    }

    #[test]
    fn distortion_within_certified_bound() {
        let params = SkeletonParams::default();
        for seed in 0..2 {
            let g = generators::connected_gnm(400, 2_000, 40 + seed);
            let s = build_sequential(&g, &params, seed);
            let bound = params.schedule(g.node_count()).distortion_bound as f64;
            let r = s.stretch_exact(&g);
            assert!(
                r.max_multiplicative <= bound,
                "seed {seed}: stretch {} > certified {bound}",
                r.max_multiplicative
            );
            // The certified bound is very loose; realized stretch is small.
            assert!(r.max_multiplicative < 40.0, "{}", r.max_multiplicative);
        }
    }

    #[test]
    fn no_contraction_ablation_is_larger() {
        let g = generators::connected_gnm(2_000, 30_000, 13);
        let params = SkeletonParams::default();
        let with = build_sequential(&g, &params, 3);
        let without = build_sequential_no_contraction(&g, &params, 3);
        assert!(without.is_spanning(&g));
        // Without contraction each round restarts from singleton clusters
        // of the SAME vertex set, so the same Θ(Dn) cost recurs per round.
        assert!(
            without.len() as f64 > 1.15 * with.len() as f64,
            "with {} without {}",
            with.len(),
            without.len()
        );
    }

    #[test]
    fn deterministic() {
        let g = generators::connected_gnm(300, 1_500, 2);
        let params = SkeletonParams::default();
        let a = build_sequential(&g, &params, 5);
        let b = build_sequential(&g, &params, 5);
        assert_eq!(a.edges, b.edges);
        let c = build_sequential(&g, &params, 6);
        assert!(a.edges != c.edges || a.len() == c.len());
    }

    #[test]
    fn expected_size_formula_reasonable() {
        let p = SkeletonParams::default();
        let v = p.expected_size(1000) / 1000.0;
        assert!(v > 3.0 && v < 8.0, "per-node prediction {v}");
    }

    #[test]
    fn tree_input_keeps_all_edges() {
        // On a tree no edge can ever be discarded (removal disconnects).
        let g = generators::path(50);
        let s = build_sequential(&g, &SkeletonParams::default(), 1);
        assert!(s.is_spanning(&g));
        assert_eq!(s.len(), 49);
    }
}
