//! The additive 2-spanner of Aingworth, Chekuri, Indyk & Motwani \[3\].
//!
//! Split vertices by degree at threshold Δ:
//!
//! * **low-degree** vertices (deg < Δ) contribute all their edges,
//! * **high-degree** vertices are dominated by a small hitting set `R`
//!   (every high-degree vertex has a neighbor in R; a random sample of
//!   Θ((n/Δ) log n) works w.h.p., plus the edge to its dominator), and the
//!   spanner adds a **full BFS tree from every vertex of R**.
//!
//! Any shortest path either uses only low-degree vertices (all present) or
//! touches a high-degree vertex `w`; routing through `w`'s dominator
//! `r ∈ R` via the BFS tree of `r` costs at most +2. Choosing Δ = √(n log n)
//! gives size O(n^{3/2} √log n).
//!
//! The paper proves (Theorem 5) that **no** distributed algorithm can
//! compute such a spanner quickly: additive 2-spanners of size n^{1+δ}
//! need Ω(√(n^{1−δ}/2)) rounds. This centralized implementation is the
//! contrast row for experiment E7.

use rand::Rng;

use spanner_graph::traversal::bfs_tree;
use spanner_graph::{EdgeSet, Graph, NodeId};
use spanner_netsim::rng::node_rng;
use ultrasparse::Spanner;

/// Builds the additive 2-spanner with degree threshold
/// Δ = ⌈√(n·ln n)⌉. Deterministic in `seed`.
pub fn build(g: &Graph, seed: u64) -> Spanner {
    let n = g.node_count();
    let delta = ((n.max(2) as f64) * (n.max(2) as f64).ln()).sqrt().ceil() as usize;
    build_with_threshold(g, delta.max(1), seed)
}

/// Builds the additive 2-spanner with an explicit degree threshold Δ.
///
/// # Panics
///
/// Panics if `delta == 0`.
pub fn build_with_threshold(g: &Graph, delta: usize, seed: u64) -> Spanner {
    assert!(delta >= 1, "threshold must be positive");
    let n = g.node_count();
    let mut edges = EdgeSet::new(g);
    if n == 0 {
        return Spanner::from_edges(edges);
    }

    // Low-degree vertices keep all incident edges.
    let mut high: Vec<NodeId> = Vec::new();
    for v in g.nodes() {
        if g.degree(v) < delta {
            for &(_, e) in g.neighbors(v) {
                edges.insert(e);
            }
        } else {
            high.push(v);
        }
    }

    if high.is_empty() {
        return Spanner::from_edges(edges);
    }

    // Hitting set R: sample each vertex with probability
    // min(1, 3 ln n / Δ); then greedily add a dominator for any
    // still-undominated high-degree vertex (making the construction Las
    // Vegas rather than Monte Carlo).
    let p = (3.0 * (n as f64).ln() / delta as f64).min(1.0);
    let mut in_r = vec![false; n];
    for v in g.nodes() {
        let mut rng = node_rng(seed, v.0, 2);
        if rng.gen::<f64>() < p {
            in_r[v.index()] = true;
        }
    }
    for &h in &high {
        let dominated = in_r[h.index()] || g.neighbor_ids(h).any(|w| in_r[w.index()]);
        if !dominated {
            in_r[h.index()] = true;
        }
    }

    // Each high-degree vertex keeps one edge to a dominator (or is itself
    // in R); plus a full BFS tree from every vertex of R.
    for &h in &high {
        if in_r[h.index()] {
            continue;
        }
        let dom = g
            .neighbor_ids(h)
            .filter(|w| in_r[w.index()])
            .min()
            .expect("dominated by construction");
        edges.insert(g.find_edge(h, dom).expect("edge"));
    }
    for r in g.nodes().filter(|v| in_r[v.index()]) {
        let t = bfs_tree(g, r);
        for v in g.nodes() {
            if let Some(parent) = t.parent[v.index()] {
                edges.insert(g.find_edge(v, parent).expect("tree edge"));
            }
        }
    }

    Spanner::from_edges(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn additive_two_guarantee() {
        for seed in 0..3u64 {
            let g = generators::connected_gnm(250, 4_000, seed);
            let s = build(&g, seed + 100);
            assert!(s.is_spanning(&g));
            let r = s.stretch_exact(&g);
            assert!(
                r.satisfies_additive(2),
                "seed {seed}: additive distortion {}",
                r.max_additive
            );
        }
    }

    #[test]
    fn additive_two_on_dense_graph() {
        let g = generators::connected_gnm(300, 40_000, 4);
        let s = build(&g, 9);
        let r = s.stretch_exact(&g);
        assert!(r.satisfies_additive(2), "{}", r.max_additive);
        // It sparsifies a dense graph (n = 300 is far from asymptopia, so
        // only a modest factor is expected here; the E1 table shows the
        // n^{3/2} scaling at larger n).
        assert!(s.len() < 3 * g.edge_count() / 4, "{}", s.len());
    }

    #[test]
    fn sparse_graph_kept_entirely() {
        // Every vertex is low degree: spanner = graph, additive 0.
        let g = generators::cycle(100);
        let s = build(&g, 1);
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn threshold_one_means_all_high() {
        // Δ = 1: every non-isolated vertex is high-degree; the spanner is
        // a union of BFS trees + dominator edges, still additive-2.
        let g = generators::connected_gnm(120, 1_500, 6);
        let s = build_with_threshold(&g, 1, 2);
        assert!(s.is_spanning(&g));
        let r = s.stretch_exact(&g);
        assert!(r.satisfies_additive(2), "{}", r.max_additive);
    }

    #[test]
    fn size_scaling_n_three_halves() {
        // Size O(n^{3/2} sqrt(log n)) with modest constants.
        let n = 1_000usize;
        let g = generators::connected_gnm(n, 120_000, 8);
        let s = build(&g, 3);
        let bound = 8.0 * (n as f64).powf(1.5) * (n as f64).ln().sqrt();
        assert!((s.len() as f64) < bound, "{} vs {bound}", s.len());
    }

    #[test]
    fn empty_graph() {
        let g = spanner_graph::Graph::empty(0);
        let s = build(&g, 1);
        assert!(s.is_empty());
    }
}
