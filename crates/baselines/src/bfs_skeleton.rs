//! The trivial skeleton: a BFS spanning forest.
//!
//! n − 1 edges (per component), preserves connectivity, but guarantees
//! nothing about distortion beyond the component diameter — the anchor row
//! of the Fig. 1 comparison ("a sparse substitute should at the very least
//! preserve connectivity").
//!
//! Also provides the distributed variant (a min-id BFS forest built with
//! the [`MinIdBroadcast`](spanner_netsim::patterns::MinIdBroadcast)
//! pattern), which runs in O(diameter) rounds with 2-word messages.

use spanner_graph::components::connected_components;
use spanner_graph::traversal::bfs_tree;
use std::sync::Arc;

use spanner_graph::{CsrAdjacency, EdgeSet, Graph, NodeId};
use spanner_netsim::patterns::SourceInfo;
use spanner_netsim::{Ctx, MessageBudget, Network, NullSink, Protocol, RunError, TraceSink};
use ultrasparse::Spanner;

/// BFS spanning forest rooted at the minimum-id vertex of each component.
pub fn build(g: &Graph) -> Spanner {
    let comps = connected_components(g);
    // Minimum-id root per component.
    let mut root: Vec<Option<NodeId>> = vec![None; comps.count];
    for v in g.nodes() {
        let c = comps.labels[v.index()] as usize;
        if root[c].is_none() {
            root[c] = Some(v);
        }
    }
    let mut edges = EdgeSet::new(g);
    for r in root.into_iter().flatten() {
        let t = bfs_tree(g, r);
        for v in g.nodes() {
            if let Some(p) = t.parent[v.index()] {
                let e = g.find_edge(v, p).expect("tree edge");
                edges.insert(e);
            }
        }
    }
    Spanner::from_edges(edges)
}

/// Leader-election BFS: each vertex tracks the lexicographically minimal
/// (root id, distance) pair it has heard of. At quiescence the minimum-id
/// vertex of each component is the elected root and every vertex knows its
/// exact BFS distance to it.
#[derive(Debug, Clone)]
struct MinRootBfs {
    best: SourceInfo,
    sent: Option<SourceInfo>,
}

impl Protocol for MinRootBfs {
    type Msg = SourceInfo;

    fn init(&mut self, ctx: &mut Ctx<'_, SourceInfo>) {
        ctx.enter_phase("elect");
        self.best = SourceInfo {
            dist: 0,
            source: ctx.me(),
        };
        ctx.broadcast(self.best);
        self.sent = Some(self.best);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, SourceInfo>, inbox: &[(NodeId, SourceInfo)]) {
        let mut improved = false;
        for &(_, info) in inbox {
            let cand = SourceInfo {
                dist: info.dist + 1,
                source: info.source,
            };
            // Root id dominates, then distance.
            if (cand.source, cand.dist) < (self.best.source, self.best.dist) {
                self.best = cand;
                improved = true;
            }
        }
        if improved && self.sent != Some(self.best) {
            ctx.broadcast(self.best);
            self.sent = Some(self.best);
        }
    }
}

/// Distributed BFS forest: the minimum-id vertex of each component is
/// elected root by flooding and each non-root vertex keeps one edge toward
/// its minimum-id parent on a shortest path to the root.
///
/// # Errors
///
/// Propagates simulator errors; with `max_rounds ≥ O(diameter)` none
/// occur.
pub fn build_distributed(g: &Graph, seed: u64, max_rounds: u32) -> Result<Spanner, RunError> {
    build_distributed_traced(g, seed, max_rounds, &mut NullSink)
}

/// Like [`build_distributed`], streaming round-level trace events into
/// `sink`; the whole flood is one `elect` phase span.
///
/// # Errors
///
/// Propagates simulator errors, as [`build_distributed`] does.
pub fn build_distributed_traced(
    g: &Graph,
    seed: u64,
    max_rounds: u32,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let mut net = Network::new(g, MessageBudget::Words(2), seed);
    let states = net.run_traced(
        |v, _| MinRootBfs {
            best: SourceInfo { dist: 0, source: v },
            sent: None,
        },
        max_rounds,
        sink,
    )?;
    let mut edges = EdgeSet::new(g);
    for v in g.nodes() {
        let info = states[v.index()].best;
        if info.dist == 0 {
            continue; // component root
        }
        // Parent: min-id neighbor one hop closer to the same root.
        let parent = g
            .neighbor_ids(v)
            .filter(|w| {
                let b = states[w.index()].best;
                b.source == info.source && b.dist + 1 == info.dist
            })
            .min()
            .expect("BFS parent exists");
        edges.insert(g.find_edge(v, parent).expect("edge"));
    }
    Ok(Spanner {
        edges,
        metrics: Some(net.metrics()),
    })
}

/// [`build_distributed`] straight from a shared CSR adjacency, with no
/// [`Graph`] materialization. The parent choice (min-id neighbor one hop
/// closer to the root) scans the sorted CSR neighbor run, so it matches
/// the `Graph` driver exactly; byte-identical spanner and metrics
/// (asserted in tests).
///
/// # Errors
///
/// Propagates simulator errors, as [`build_distributed`] does.
pub fn build_distributed_csr(
    csr: &Arc<CsrAdjacency>,
    seed: u64,
    max_rounds: u32,
) -> Result<Spanner, RunError> {
    let mut net = Network::from_csr(Arc::clone(csr), MessageBudget::Words(2), seed);
    let states = net.run(
        |v, _| MinRootBfs {
            best: SourceInfo { dist: 0, source: v },
            sent: None,
        },
        max_rounds,
    )?;
    let index = csr.edge_index();
    let mut edges = EdgeSet::with_universe(index.edge_count());
    for v in 0..csr.node_count() {
        let v = NodeId(v as u32);
        let info = states[v.index()].best;
        if info.dist == 0 {
            continue; // component root
        }
        // Parent: min-id neighbor one hop closer to the same root.
        let parent = csr
            .neighbors(v)
            .iter()
            .copied()
            .filter(|w| {
                let b = states[w.index()].best;
                b.source == info.source && b.dist + 1 == info.dist
            })
            .min()
            .expect("BFS parent exists");
        edges.insert(index.edge_id(csr, v, parent).expect("edge"));
    }
    Ok(Spanner {
        edges,
        metrics: Some(net.metrics()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn csr_driver_matches_graph_driver() {
        let g = generators::connected_gnm(250, 1_000, 9);
        let graph_built = build_distributed(&g, 4, 64).unwrap();
        let csr = Arc::new(CsrAdjacency::from_graph(&g));
        let csr_built = build_distributed_csr(&csr, 4, 64).unwrap();
        assert_eq!(graph_built.edges, csr_built.edges);
        assert_eq!(graph_built.metrics, csr_built.metrics);
    }

    #[test]
    fn forest_size_and_spanning() {
        let g = generators::connected_gnm(200, 800, 3);
        let s = build(&g);
        assert!(s.is_spanning(&g));
        assert_eq!(s.len(), 199);
    }

    #[test]
    fn forest_on_disconnected() {
        let g = spanner_graph::Graph::from_edges(7, [(0u32, 1), (1, 2), (4, 5), (5, 6)]);
        let s = build(&g);
        assert!(s.is_spanning(&g));
        assert_eq!(s.len(), 4); // 2 + 2 edges; node 3 isolated
    }

    #[test]
    fn tree_distance_is_exact_from_root() {
        // On a tree the forest is the whole tree: stretch 1.
        let g = generators::path(30);
        let s = build(&g);
        let r = s.stretch_exact(&g);
        assert_eq!(r.max_multiplicative, 1.0);
    }

    #[test]
    fn distortion_can_reach_diameter_scale() {
        let g = generators::cycle(40);
        let s = build(&g);
        assert_eq!(s.len(), 39);
        let r = s.stretch_exact(&g);
        // Adjacent pair across the cut has spanner distance 39.
        assert_eq!(r.max_multiplicative, 39.0);
    }

    #[test]
    fn distributed_matches_sequential() {
        let g = generators::connected_gnm(150, 500, 9);
        let seq = build(&g);
        let dist = build_distributed(&g, 1, 400).unwrap();
        assert!(dist.is_spanning(&g));
        assert_eq!(dist.len(), seq.len());
        // Same root election (min id) and same min-id parent rule: the two
        // forests are identical.
        assert_eq!(dist.edges, seq.edges);
        assert_eq!(dist.metrics.unwrap().max_message_words, 2);
    }

    #[test]
    fn distributed_on_disconnected() {
        let g = spanner_graph::Graph::from_edges(6, [(0u32, 1), (3, 4), (4, 5)]);
        let s = build_distributed(&g, 2, 64).unwrap();
        assert!(s.is_spanning(&g));
        assert_eq!(s.len(), 3);
    }
}
