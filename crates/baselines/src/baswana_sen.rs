//! The Baswana–Sen randomized (2k−1)-spanner \[10\].
//!
//! Phase 1 runs k−1 iterations of cluster sampling (probability n^{−1/k})
//! where unclustered-but-adjacent vertices join a sampled cluster (one
//! spanner edge) and vertices with no sampled neighbor connect once to each
//! adjacent cluster and leave the clustering. Phase 2 connects every
//! remaining vertex once to each adjacent cluster of the final clustering.
//! The result is a (2k−1)-spanner.
//!
//! Pettie's paper corrects the size analysis of \[10\]: the argument of
//! their Lemma 4.1 gives O(kn + (log k)·n^{1+1/k}) in expectation, not
//! O(kn + n^{1+1/k}). Experiment E8 measures the realized size against both
//! forms.
//!
//! Both implementations share the per-cluster sampling function
//! ([`ClusterSampler`]), so a cluster's
//! fate is locally recomputable — which is what makes the distributed
//! version run in O(k) rounds with 2-word messages.

use std::sync::Arc;

use spanner_graph::{CsrAdjacency, EdgeId, EdgeSet, Graph, NodeId};
use spanner_netsim::{
    AsyncNetwork, Ctx, FaultPlan, MessageBudget, Network, NullSink, Protocol, RunError,
    Synchronizer, TraceSink,
};
use ultrasparse::expand::ClusterSampler;
use ultrasparse::{FaultError, Spanner};

/// Parameters: the stretch is 2k−1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaswanaSenParams {
    /// Number of clustering levels; the spanner is a (2k−1)-spanner with
    /// expected size O(kn + log k · n^{1+1/k}).
    pub k: u32,
}

impl BaswanaSenParams {
    /// Validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `k == 0`.
    pub fn new(k: u32) -> Result<Self, String> {
        if k == 0 {
            return Err("k must be at least 1".to_string());
        }
        Ok(BaswanaSenParams { k })
    }

    /// The guaranteed multiplicative stretch 2k−1.
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// Per-iteration sampling probability n^{−1/k}.
    pub fn probability(&self, n: usize) -> f64 {
        (n.max(2) as f64).powf(-1.0 / self.k as f64)
    }
}

/// Builds the Baswana–Sen (2k−1)-spanner sequentially. Deterministic in
/// `seed`.
pub fn build_sequential(g: &Graph, params: &BaswanaSenParams, seed: u64) -> Spanner {
    let n = g.node_count();
    let mut edges = EdgeSet::new(g);
    if n == 0 {
        return Spanner::from_edges(edges);
    }
    let p = params.probability(n);
    let sampler = ClusterSampler::new(seed);

    // cluster[v]: Some(center) while v is clustered, None once it left.
    let mut cluster: Vec<Option<NodeId>> = g.nodes().map(Some).collect();

    for iter in 0..params.k.saturating_sub(1) {
        let sampled = |c: NodeId| -> bool { sampler.sampled(c, iter, p) };
        let mut next: Vec<Option<NodeId>> = cluster.clone();
        for v in g.nodes() {
            let Some(cv) = cluster[v.index()] else {
                continue;
            };
            if sampled(cv) {
                continue; // stays in its sampled cluster
            }
            // Adjacent clusters (through currently clustered neighbors),
            // each with its minimum connecting edge.
            let mut adj: Vec<(NodeId, EdgeId)> = Vec::new();
            for &(w, e) in g.neighbors(v) {
                if let Some(cw) = cluster[w.index()] {
                    if cw != cv {
                        adj.push((cw, e));
                    }
                }
            }
            adj.sort_unstable();
            adj.dedup_by_key(|&mut (c, _)| c);
            match adj.iter().find(|&&(c, _)| sampled(c)) {
                Some(&(c, e)) => {
                    edges.insert(e); // join the sampled cluster
                    next[v.index()] = Some(c);
                }
                None => {
                    for &(_, e) in &adj {
                        edges.insert(e); // one edge per adjacent cluster
                    }
                    next[v.index()] = None; // leaves the clustering
                }
            }
        }
        cluster = next;
    }

    // Phase 2: every clustered vertex connects once to each adjacent
    // cluster of the final clustering. (Vertices that left the clustering
    // already connected to everything adjacent when they left; their other
    // edges were discarded, matching [10].)
    for v in g.nodes() {
        let cv = cluster[v.index()];
        let mut adj: Vec<(NodeId, EdgeId)> = Vec::new();
        for &(w, e) in g.neighbors(v) {
            if let Some(cw) = cluster[w.index()] {
                if Some(cw) != cv {
                    adj.push((cw, e));
                }
            }
        }
        adj.sort_unstable();
        adj.dedup_by_key(|&mut (c, _)| c);
        for &(_, e) in &adj {
            edges.insert(e);
        }
    }

    Spanner::from_edges(edges)
}

/// Re-clusters only the subgraph induced by `region` (strictly ascending
/// node ids): runs [`build_sequential`] on `g[region]` and returns the
/// chosen edges as a host-graph [`EdgeSet`] — the Baswana–Sen flavor of
/// the dirty-region hook used by the log-structured update path's
/// compaction (`spanner-store`), where only the locality an edit batch
/// touched is rebuilt.
///
/// With `region` = all nodes this equals `build_sequential(g, params,
/// seed).edges` exactly (monotone relabeling preserves edge ids), which
/// the differential tests pin.
///
/// # Panics
///
/// Panics if `region` is not strictly ascending or out of range.
pub fn recluster_region(
    g: &Graph,
    region: &[NodeId],
    params: &BaswanaSenParams,
    seed: u64,
) -> EdgeSet {
    let (sub, host) = g.induced_subgraph(region);
    let local = build_sequential(&sub, params, seed);
    let mut out = EdgeSet::new(g);
    for e in local.edges.iter() {
        out.insert(host[e.index()]);
    }
    out
}

/// Message of the distributed protocol: the sender's cluster center this
/// iteration (`None` when unclustered). Two words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsMsg {
    /// Cluster center of the sender, if clustered.
    center: Option<NodeId>,
}

impl spanner_netsim::MessageSize for BsMsg {
    fn words(&self) -> usize {
        2
    }
}

/// Per-node state of the distributed Baswana–Sen protocol.
///
/// Each iteration costs exactly one communication round: every vertex
/// broadcasts its cluster center, then decides locally (sampling decisions
/// are the shared pseudo-random function of the center id, so no
/// coordination is needed). Joining vertices adopt the *center* of the
/// sampled neighbor cluster; since cluster radii grow by one per iteration
/// this matches the sequential algorithm exactly.
#[derive(Debug, Clone)]
pub struct BsNode {
    params: BaswanaSenParams,
    sampler: ClusterSampler,
    p: f64,
    /// Current cluster center, `None` once unclustered.
    cluster: Option<NodeId>,
    /// Edges this node selected (by neighbor id).
    pub chosen: Vec<NodeId>,
    /// Iterations completed.
    iter: u32,
    finished: bool,
}

impl BsNode {
    fn decide(&mut self, me: NodeId, inbox: &[(NodeId, BsMsg)]) {
        let Some(cv) = self.cluster else { return };
        let iter = self.iter;
        if self.sampler.sampled(cv, iter, self.p) {
            return;
        }
        let mut adj: Vec<(NodeId, NodeId)> = inbox
            .iter()
            .filter_map(|&(w, m)| m.center.filter(|&c| c != cv).map(|c| (c, w)))
            .collect();
        adj.sort_unstable();
        adj.dedup_by_key(|&mut (c, _)| c);
        let _ = me;
        match adj
            .iter()
            .find(|&&(c, _)| self.sampler.sampled(c, iter, self.p))
        {
            Some(&(c, w)) => {
                self.chosen.push(w);
                self.cluster = Some(c);
            }
            None => {
                for &(_, w) in &adj {
                    self.chosen.push(w);
                }
                self.cluster = None;
            }
        }
    }

    fn phase2(&mut self, inbox: &[(NodeId, BsMsg)]) {
        let cv = self.cluster;
        let mut adj: Vec<(NodeId, NodeId)> = inbox
            .iter()
            .filter_map(|&(w, m)| m.center.filter(|&c| Some(c) != cv).map(|c| (c, w)))
            .collect();
        adj.sort_unstable();
        adj.dedup_by_key(|&mut (c, _)| c);
        for &(_, w) in &adj {
            self.chosen.push(w);
        }
        self.finished = true;
    }
}

impl Protocol for BsNode {
    type Msg = BsMsg;

    fn init(&mut self, ctx: &mut Ctx<'_, BsMsg>) {
        if self.params.k == 1 {
            // Degenerate: no phase-1 iterations; go straight to phase 2.
        }
        ctx.broadcast(BsMsg {
            center: self.cluster,
        });
    }

    fn round(&mut self, ctx: &mut Ctx<'_, BsMsg>, inbox: &[(NodeId, BsMsg)]) {
        if self.finished {
            return;
        }
        // Every node progresses through iterations in lockstep, so each one
        // declares the current span; the executor collapses the n identical
        // declarations into a single trace event.
        if ctx.tracing() {
            if self.iter < self.params.k - 1 {
                ctx.enter_phase(format!("cluster[{:02}]", self.iter));
            } else {
                ctx.enter_phase("connect");
            }
        }
        if self.iter < self.params.k - 1 {
            self.decide(ctx.me(), inbox);
            self.iter += 1;
            if self.iter < self.params.k {
                ctx.broadcast(BsMsg {
                    center: self.cluster,
                });
            }
        } else {
            // No exit_phase here: an Enter/Exit pair per node in the same
            // round would defeat the executor's consecutive-event dedup.
            // The run ends with this round and the tracer closes the open
            // `connect` span at run end.
            self.phase2(inbox);
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

/// Runs the distributed Baswana–Sen protocol on the simulator; returns the
/// spanner with its communication metrics.
///
/// # Errors
///
/// Propagates simulator errors (round cap, budget violations) — neither
/// occurs for valid parameters: the protocol runs exactly k rounds with
/// 2-word messages.
pub fn build_distributed(
    g: &Graph,
    params: &BaswanaSenParams,
    seed: u64,
) -> Result<Spanner, RunError> {
    build_distributed_traced(g, params, seed, &mut NullSink)
}

/// Like [`build_distributed`], streaming round-level trace events into
/// `sink`: one `cluster[i]` span per phase-1 iteration and a final
/// `connect` span for phase 2.
///
/// # Errors
///
/// Propagates simulator errors, as [`build_distributed`] does.
pub fn build_distributed_traced(
    g: &Graph,
    params: &BaswanaSenParams,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<Spanner, RunError> {
    let mut net = Network::new(g, MessageBudget::Words(2), seed);
    let n = g.node_count();
    let p = params.probability(n);
    let states = net.run_traced(
        |v, _| BsNode {
            params: *params,
            sampler: ClusterSampler::new(seed),
            p,
            cluster: Some(v),
            chosen: Vec::new(),
            iter: 0,
            finished: false,
        },
        params.k + 4,
        sink,
    )?;
    let mut edges = EdgeSet::new(g);
    for (v, st) in states.iter().enumerate() {
        for &w in &st.chosen {
            let e = g
                .find_edge(NodeId(v as u32), w)
                .expect("chosen edge exists");
            edges.insert(e);
        }
    }
    Ok(Spanner {
        edges,
        metrics: Some(net.metrics()),
    })
}

/// [`build_distributed`] straight from a shared CSR adjacency, with no
/// [`Graph`] materialization: the node protocol only reads topology through
/// the executor, and the spanner is collected through the CSR edge index.
/// Byte-identical spanner and metrics to the `Graph` driver (asserted in
/// tests); the memory-lean entry point for `--scale huge` tiers.
///
/// # Errors
///
/// Propagates simulator errors, as [`build_distributed`] does.
pub fn build_distributed_csr(
    csr: &Arc<CsrAdjacency>,
    params: &BaswanaSenParams,
    seed: u64,
) -> Result<Spanner, RunError> {
    let mut net = Network::from_csr(Arc::clone(csr), MessageBudget::Words(2), seed);
    let n = csr.node_count();
    let p = params.probability(n);
    let states = net.run(
        |v, _| BsNode {
            params: *params,
            sampler: ClusterSampler::new(seed),
            p,
            cluster: Some(v),
            chosen: Vec::new(),
            iter: 0,
            finished: false,
        },
        params.k + 4,
    )?;
    let index = csr.edge_index();
    let mut edges = EdgeSet::with_universe(index.edge_count());
    for (v, st) in states.iter().enumerate() {
        for &w in &st.chosen {
            let e = index
                .edge_id(csr, NodeId(v as u32), w)
                .expect("chosen edge exists");
            edges.insert(e);
        }
    }
    Ok(Spanner {
        edges,
        metrics: Some(net.metrics()),
    })
}

/// Like [`build_distributed`], executed on the event-driven asynchronous
/// simulator with per-link latencies from `delays` and round semantics
/// recovered by `synchronizer` (see [`spanner_netsim::AsyncNetwork`]).
/// Builds the exact spanner of [`build_distributed`] for every delay plan,
/// with async cost counters added to the metrics.
///
/// # Errors
///
/// Propagates simulator errors, as [`build_distributed`] does.
pub fn build_distributed_async(
    g: &Graph,
    params: &BaswanaSenParams,
    seed: u64,
    delays: &FaultPlan,
    synchronizer: Synchronizer,
) -> Result<Spanner, RunError> {
    let mut net = AsyncNetwork::new(g, MessageBudget::Words(2), seed)
        .with_delays(delays.clone())
        .with_synchronizer(synchronizer);
    let n = g.node_count();
    let p = params.probability(n);
    let states = net.run(
        |v, _| BsNode {
            params: *params,
            sampler: ClusterSampler::new(seed),
            p,
            cluster: Some(v),
            chosen: Vec::new(),
            iter: 0,
            finished: false,
        },
        params.k + 4,
    )?;
    let mut edges = EdgeSet::new(g);
    for (v, st) in states.iter().enumerate() {
        for &w in &st.chosen {
            let e = g
                .find_edge(NodeId(v as u32), w)
                .expect("chosen edge exists");
            edges.insert(e);
        }
    }
    Ok(Spanner {
        edges,
        metrics: Some(net.metrics()),
    })
}

/// Runs the distributed Baswana–Sen protocol under a fault schedule.
///
/// Never panics and never returns an unchecked spanner: the surviving
/// output is re-certified against the fault-free host graph (spanning +
/// the exact (2k−1) stretch bound), and every failure comes back as a
/// typed [`FaultError`] retaining the partial metrics with fault counters.
///
/// # Errors
///
/// [`FaultError::Run`] when the simulated run fails;
/// [`FaultError::Uncertified`] when the surviving output is not a
/// certified (2k−1)-spanner.
#[allow(clippy::result_large_err)] // error carries full RunMetrics by design
pub fn build_distributed_faulted(
    g: &Graph,
    params: &BaswanaSenParams,
    seed: u64,
    plan: &FaultPlan,
) -> Result<Spanner, FaultError> {
    let net = std::cell::RefCell::new(
        Network::new(g, MessageBudget::Words(2), seed).with_faults(plan.clone()),
    );
    let n = g.node_count();
    let p = params.probability(n);
    ultrasparse::faults::build_certified(
        g,
        || {
            let mut net = net.borrow_mut();
            let states = net.run(
                |v, _| BsNode {
                    params: *params,
                    sampler: ClusterSampler::new(seed),
                    p,
                    cluster: Some(v),
                    chosen: Vec::new(),
                    iter: 0,
                    finished: false,
                },
                params.k + 4,
            )?;
            let mut edges = EdgeSet::new(g);
            for (v, st) in states.iter().enumerate() {
                for &w in &st.chosen {
                    let e = g
                        .find_edge(NodeId(v as u32), w)
                        .expect("chosen edge exists");
                    edges.insert(e);
                }
            }
            let metrics = net.metrics();
            Ok(Spanner {
                edges,
                metrics: Some(metrics),
            })
        },
        || net.borrow().metrics(),
        |s| {
            spanner_graph::verify_stretch_exact(
                g,
                &s.edges,
                spanner_graph::StretchBound::multiplicative((2 * params.k - 1) as f64),
            )
            .map_err(|v| v.to_string())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn csr_driver_matches_graph_driver() {
        let params = BaswanaSenParams::new(3).unwrap();
        let g = generators::connected_gnm(300, 1_500, 17);
        let graph_built = build_distributed(&g, &params, 5).unwrap();
        let csr = Arc::new(CsrAdjacency::from_graph(&g));
        let csr_built = build_distributed_csr(&csr, &params, 5).unwrap();
        assert_eq!(graph_built.edges, csr_built.edges);
        assert_eq!(graph_built.metrics, csr_built.metrics);
    }

    #[test]
    fn recluster_full_region_matches_build_sequential() {
        let params = BaswanaSenParams::new(3).unwrap();
        let g = generators::connected_gnm(250, 1_200, 23);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(
            recluster_region(&g, &all, &params, 9),
            build_sequential(&g, &params, 9).edges
        );
    }

    #[test]
    fn recluster_subregion_is_local_spanner() {
        let params = BaswanaSenParams::new(2).unwrap();
        let g = generators::connected_gnm(180, 800, 31);
        let region: Vec<NodeId> = g.nodes().filter(|v| v.0 < 120).collect();
        let chosen = recluster_region(&g, &region, &params, 3);
        let (sub, host) = g.induced_subgraph(&region);
        let mut local = EdgeSet::new(&sub);
        for (i, e) in host.iter().enumerate() {
            if chosen.contains(*e) {
                local.insert(EdgeId(i as u32));
            }
        }
        let s = Spanner::from_edges(local);
        assert!(s.is_spanning(&sub));
        let r = s.stretch_exact(&sub);
        assert!(r.satisfies_multiplicative(params.stretch() as f64));
    }

    #[test]
    fn params_validation() {
        assert!(BaswanaSenParams::new(0).is_err());
        let p = BaswanaSenParams::new(3).unwrap();
        assert_eq!(p.stretch(), 5);
        assert!((p.probability(1000) - 1000f64.powf(-1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn sequential_is_spanner_with_guaranteed_stretch() {
        for k in [2u32, 3, 4] {
            let params = BaswanaSenParams::new(k).unwrap();
            let g = generators::connected_gnm(300, 2_500, k as u64);
            let s = build_sequential(&g, &params, 7);
            assert!(s.is_spanning(&g), "k={k}");
            let r = s.stretch_exact(&g);
            assert!(
                r.satisfies_multiplicative(params.stretch() as f64),
                "k={k}: stretch {} > {}",
                r.max_multiplicative,
                params.stretch()
            );
        }
    }

    #[test]
    fn k1_keeps_all_edges() {
        // A 1-spanner must keep every edge (stretch 1).
        let g = generators::erdos_renyi_gnm(50, 200, 1);
        let params = BaswanaSenParams::new(1).unwrap();
        let s = build_sequential(&g, &params, 3);
        assert_eq!(s.len(), g.edge_count());
        let r = s.stretch_exact(&g);
        assert_eq!(r.max_multiplicative, 1.0);
    }

    #[test]
    fn size_near_theoretical() {
        // k = 3 on a dense graph: expected size O(kn + log k n^{4/3}).
        let n = 2_000usize;
        let g = generators::connected_gnm(n, 100_000, 5);
        let params = BaswanaSenParams::new(3).unwrap();
        let s = build_sequential(&g, &params, 11);
        let bound = 2.0 * (3 * n) as f64 + 2.0 * (n as f64).powf(4.0 / 3.0);
        assert!(
            (s.len() as f64) < bound,
            "size {} vs bound {bound}",
            s.len()
        );
        // And it actually sparsifies.
        assert!(s.len() < g.edge_count() / 2);
    }

    #[test]
    fn distributed_matches_sequential_exactly() {
        // Same seed => same sampler => identical cluster evolution; the
        // edge *choices* (min (cluster, neighbor)) also coincide because
        // both pick the minimum (cluster, edge/neighbor) pair.
        let g = generators::connected_gnm(200, 1_000, 9);
        let params = BaswanaSenParams::new(3).unwrap();
        let seq = build_sequential(&g, &params, 21);
        let dist = build_distributed(&g, &params, 21).unwrap();
        assert!(dist.is_spanning(&g));
        let r = dist.stretch_exact(&g);
        assert!(r.satisfies_multiplicative(params.stretch() as f64));
        // The distributed run takes k+O(1) rounds with 2-word messages.
        let m = dist.metrics.unwrap();
        assert!(m.rounds <= params.k + 2, "rounds {}", m.rounds);
        assert_eq!(m.max_message_words, 2);
        // Sizes agree closely (identical decisions up to edge-id vs
        // neighbor-id tie-breaks).
        let diff = (seq.len() as i64 - dist.len() as i64).abs();
        assert!(
            diff <= (seq.len() / 10 + 5) as i64,
            "seq {} vs dist {}",
            seq.len(),
            dist.len()
        );
    }

    #[test]
    fn distributed_stretch_guarantee() {
        for k in [2u32, 4] {
            let params = BaswanaSenParams::new(k).unwrap();
            let g = generators::connected_gnm(250, 2_000, 31 + k as u64);
            let s = build_distributed(&g, &params, 5).unwrap();
            assert!(s.is_spanning(&g));
            let r = s.stretch_exact(&g);
            assert!(
                r.satisfies_multiplicative((2 * k - 1) as f64),
                "k={k}: {}",
                r.max_multiplicative
            );
        }
    }

    #[test]
    fn deterministic() {
        let g = generators::connected_gnm(150, 700, 2);
        let params = BaswanaSenParams::new(3).unwrap();
        assert_eq!(
            build_sequential(&g, &params, 5).edges,
            build_sequential(&g, &params, 5).edges
        );
    }

    #[test]
    fn disconnected_input() {
        let g = spanner_graph::Graph::from_edges(8, [(0u32, 1), (1, 2), (4, 5), (5, 6), (6, 4)]);
        let params = BaswanaSenParams::new(2).unwrap();
        let s = build_sequential(&g, &params, 3);
        assert!(s.is_spanning(&g));
    }
}
