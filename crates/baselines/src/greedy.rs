//! The greedy (2k−1)-spanner of Althöfer et al. \[4\].
//!
//! Scan the edges; add `{u, v}` to the spanner iff the current spanner
//! distance between `u` and `v` exceeds 2k−1. The result has girth > 2k,
//! hence (by the Moore bound) size O(n^{1+1/k}), and is a (2k−1)-spanner by
//! construction.
//!
//! At `k = ⌈log₂ n⌉` this is the classical **linear-size skeleton** with
//! O(log n) stretch — the centralized equivalent of the Dubhashi et al.
//! \[18\] row in the paper's Fig. 1 (see DESIGN.md §4: their distributed
//! algorithm may ship the whole topology to one vertex and run exactly this
//! kind of girth-based computation, which is why the paper develops the
//! contraction-based alternative).

use std::collections::VecDeque;

use spanner_graph::girth::girth_exceeds;
use spanner_graph::{EdgeSet, Graph, LinkedAdjacency};
use ultrasparse::Spanner;

/// Builds the greedy (2k−1)-spanner. Deterministic (edge insertion order).
///
/// O(m · n)-ish worst case (one bounded BFS per edge); intended for
/// baseline comparisons up to ~10⁵ edges. The growing spanner lives in a
/// flat [`LinkedAdjacency`] arena and the per-edge BFS reuses
/// epoch-stamped scratch, so the hot loop allocates nothing.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn build(g: &Graph, k: u32) -> Spanner {
    assert!(k >= 1, "k must be at least 1");
    let threshold = 2 * k - 1; // add edge iff current distance > 2k-1
    let mut edges = EdgeSet::new(g);
    let mut adj = LinkedAdjacency::new(g.node_count());
    let mut mark = vec![0u32; g.node_count()];
    let mut epoch = 0u32;
    let mut queue = VecDeque::new();
    for (e, u, v) in g.edges() {
        // Distance between u and v in the current spanner, bounded search.
        epoch += 1;
        mark[u.index()] = epoch;
        queue.clear();
        queue.push_back((u, 0u32));
        let mut within = false;
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                within = true;
                break;
            }
            if d == threshold {
                continue;
            }
            for y in adj.neighbors(x) {
                if mark[y.index()] != epoch {
                    mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        if !within {
            edges.insert(e);
            adj.add_edge(u, v);
        }
    }
    Spanner::from_edges(edges)
}

/// The linear-size skeleton instance: greedy with k = ⌈log₂ n⌉, giving an
/// O(log n)-spanner with O(n) edges (girth > 2 log n ⇒ < n + n^{1+1/log n}
/// ≈ 3n edges). Stands in for the Dubhashi et al. \[18\] Fig. 1 row.
pub fn linear_size_skeleton(g: &Graph) -> Spanner {
    let k = (g.node_count().max(2) as f64).log2().ceil() as u32;
    build(g, k.max(1))
}

/// Whether `s` has girth exceeding `2k` — the structural guarantee of the
/// greedy construction, exposed for tests and the E1 table.
pub fn has_greedy_girth(g: &Graph, s: &Spanner, k: u32) -> bool {
    let sub = s.edges.to_graph(g);
    girth_exceeds(&sub, 2 * k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn stretch_and_girth_guarantees() {
        for k in [1u32, 2, 3] {
            let g = generators::connected_gnm(150, 2_000, k as u64);
            let s = build(&g, k);
            assert!(s.is_spanning(&g));
            let r = s.stretch_exact(&g);
            assert!(
                r.satisfies_multiplicative((2 * k - 1) as f64),
                "k={k}: {}",
                r.max_multiplicative
            );
            assert!(has_greedy_girth(&g, &s, k), "k={k}");
        }
    }

    #[test]
    fn k1_keeps_everything() {
        let g = generators::erdos_renyi_gnm(60, 300, 2);
        let s = build(&g, 1);
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn size_bound_k2() {
        // Girth > 4 implies size <= (1/2)(1 + sqrt(4n-3)) * n / 2 ~ n^{3/2}.
        let n = 500usize;
        let g = generators::connected_gnm(n, 20_000, 3);
        let s = build(&g, 2);
        let bound = 0.5 * (n as f64) * (1.0 + ((4 * n - 3) as f64).sqrt()) / 2.0 + n as f64;
        assert!((s.len() as f64) < bound, "{} vs {bound}", s.len());
    }

    #[test]
    fn linear_size_skeleton_is_linear() {
        let n = 1_000usize;
        let g = generators::connected_gnm(n, 30_000, 7);
        let s = linear_size_skeleton(&g);
        assert!(s.is_spanning(&g));
        assert!(
            s.len() < 3 * n,
            "linear skeleton has {} edges on {n} nodes",
            s.len()
        );
        let r = s.stretch_sampled(&g, 300, 1);
        let bound = 2.0 * (n as f64).log2().ceil() - 1.0;
        assert!(r.max_multiplicative <= bound);
        assert_eq!(r.disconnected, 0);
    }

    #[test]
    fn tree_inputs_unchanged() {
        let g = generators::path(40);
        let s = build(&g, 3);
        assert_eq!(s.len(), 39);
    }
}
