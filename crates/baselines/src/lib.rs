//! Baseline spanner algorithms from the paper's Fig. 1.
//!
//! Pettie (PODC 2008) compares against the prior state of the art; this
//! crate implements those comparison rows:
//!
//! * [`baswana_sen`] — the randomized (2k−1)-spanner of Baswana & Sen
//!   \[10\], sequential and distributed; instrumented to reproduce the size
//!   correction the paper makes (O(kn + log k·n^{1+1/k}), Sect. 2),
//! * [`baswana_sen_weighted`] — the weighted version (least-weight edge
//!   selection), the row Fig. 1 calls optimal in all respects,
//! * [`greedy`] — the classical greedy (2k−1)-spanner of Althöfer et al.
//!   \[4\] (girth > 2k); at k = Θ(log n) this is the canonical linear-size
//!   O(log n)-spanner, the centralized equivalent of Dubhashi et al. \[18\]
//!   (whose Fig. 1 row it stands in for — see DESIGN.md §4),
//! * [`bfs_skeleton`] — the trivial anchor: a BFS spanning forest
//!   (connectivity-only skeleton, n − 1 edges, distortion up to the
//!   diameter),
//! * [`additive2`] — the additive 2-spanner of Aingworth et al. \[3\]
//!   (size O(n^{3/2} log^{1/2} n)), the construction whose distributed
//!   version Theorem 5 rules out,
//! * [`streaming`] — an online (2k−1)-spanner over an edge stream with the
//!   O(n^{1+1/k}) memory profile of Baswana \[5\] / Elkin \[21\]
//!   (related work, Sect. 1.4).

pub mod additive2;
pub mod baswana_sen;
pub mod baswana_sen_weighted;
pub mod bfs_skeleton;
pub mod greedy;
pub mod streaming;
