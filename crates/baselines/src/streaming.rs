//! Streaming (2k−1)-spanners (related work, Sect. 1.4).
//!
//! The paper's related-work section cites Elkin \[21\] and Baswana \[5\]
//! for spanners in the online streaming model: *"edges arrive one at a
//! time and the algorithm can only keep O(n^{1+1/k}) edges in memory."*
//! [`StreamingSpanner`] implements the correctness-equivalent online
//! filter: keep an arriving edge iff the current spanner distance between
//! its endpoints exceeds 2k−1. The kept subgraph always has girth > 2k,
//! hence ≤ O(n^{1+1/k}) edges — the stated memory bound — and is a
//! (2k−1)-spanner of the stream's prefix at every point.
//!
//! (Baswana's algorithm \[5\] achieves O(1) *processing time* per edge
//! with clustering; we trade that for the simple distance filter, whose
//! per-edge cost is a BFS bounded to depth 2k−1 in the sparse kept
//! subgraph — the same space profile, which is what the model constrains.
//! Documented as a substitution in DESIGN.md §4.)
//!
//! [`DynamicSpanner`] extends the same filter to the *fully dynamic*
//! model (insertions **and** deletions), the scenario behind the
//! log-structured update path of `spanner-store`. It maintains the
//! edge-cover invariant — every current graph edge `{u, v}` satisfies
//! δ_S(u, v) ≤ 2k−1 in the maintained subgraph S — which is exactly the
//! (2k−1)-spanner property. Insertion is the streaming filter; deleting a
//! spanner edge repairs the invariant by re-checking every graph edge
//! with an endpoint in the ball of radius 2k−1 around the removed edge
//! (computed *before* removal — any cover path through the removed edge
//! starts inside that ball, so nothing outside it can break).

use std::collections::{BTreeSet, VecDeque};

use spanner_graph::{EdgeSet, Graph, LinkedAdjacency, NodeId};

/// An online (2k−1)-spanner over an edge stream on a fixed vertex set.
///
/// # Example
///
/// ```
/// use spanner_baselines::streaming::StreamingSpanner;
/// use spanner_graph::{LinkedAdjacency, NodeId};
///
/// let mut s = StreamingSpanner::new(4, 2);
/// assert!(s.offer(NodeId(0), NodeId(1)));
/// assert!(s.offer(NodeId(1), NodeId(2)));
/// assert!(s.offer(NodeId(2), NodeId(3)));
/// // 0-3 closes a cycle of length 4 <= 2k = 4: redundant, filtered out.
/// assert!(!s.offer(NodeId(0), NodeId(3)));
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSpanner {
    k: u32,
    adj: LinkedAdjacency,
    kept: Vec<(NodeId, NodeId)>,
    // Scratch for the bounded BFS (timestamped to avoid re-allocation):
    // backward marks, forward marks, forward distances.
    mark: Vec<u32>,
    fmark: Vec<u32>,
    fdist: Vec<u32>,
    epoch: u32,
}

impl StreamingSpanner {
    /// An empty spanner over `n` vertices with stretch parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        StreamingSpanner {
            k,
            adj: LinkedAdjacency::new(n),
            kept: Vec::new(),
            mark: vec![0; n],
            fmark: vec![0; n],
            fdist: vec![0; n],
            epoch: 0,
        }
    }

    /// The stretch guarantee 2k−1.
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// Number of edges currently kept.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// Whether no edges are kept.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Processes the next stream edge; returns whether it was kept.
    /// Duplicate edges and self-loops are filtered (never kept).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn offer(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.adj.node_count() && v.index() < self.adj.node_count(),
            "endpoint out of range"
        );
        if u == v {
            return false;
        }
        if self.distance_at_most(u, v, 2 * self.k - 1) {
            return false;
        }
        self.adj.add_edge(u, v);
        self.kept.push((u.min(v), u.max(v)));
        true
    }

    /// Bidirectional bounded BFS in the kept subgraph: is δ(u, v) ≤ `limit`?
    ///
    /// Meet-in-the-middle: a forward sweep from `u` to radius ⌈limit/2⌉
    /// records its ball, then a backward sweep from `v` to the remaining
    /// radius reports success as soon as it touches a node `y` with
    /// `fdist(y) + bdist(y) ≤ limit`. Both balls have roughly the square
    /// root of the unidirectional frontier size, which is what makes the
    /// per-edge filter cheap on dense streams. Soundness: the distances on
    /// both sides are exact within their radii, so a meeting certifies a
    /// walk of length ≤ limit; conversely a shortest path of length
    /// D ≤ limit has a node at distance min(⌈limit/2⌉, D) from `u` that
    /// the backward sweep reaches within limit − ⌈limit/2⌉ hops.
    fn distance_at_most(&mut self, u: NodeId, v: NodeId, limit: u32) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        let forward_radius = limit.div_ceil(2);
        self.fmark[u.index()] = epoch;
        self.fdist[u.index()] = 0;
        let mut queue = VecDeque::from([(u, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                return true;
            }
            if d == forward_radius {
                continue;
            }
            for y in self.adj.neighbors(x) {
                if self.fmark[y.index()] != epoch {
                    self.fmark[y.index()] = epoch;
                    self.fdist[y.index()] = d + 1;
                    queue.push_back((y, d + 1));
                }
            }
        }
        let backward_radius = limit - forward_radius;
        self.mark[v.index()] = epoch;
        let mut queue = VecDeque::from([(v, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if self.fmark[x.index()] == epoch && self.fdist[x.index()] + d <= limit {
                return true;
            }
            if d == backward_radius {
                continue;
            }
            for y in self.adj.neighbors(x) {
                if self.mark[y.index()] != epoch {
                    self.mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        false
    }

    /// The original single-direction bounded BFS, kept as the reference
    /// the proptest suite cross-checks the bidirectional version against.
    #[cfg(test)]
    fn distance_at_most_unidirectional(&mut self, u: NodeId, v: NodeId, limit: u32) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        self.mark[u.index()] = epoch;
        let mut queue = VecDeque::from([(u, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                return true;
            }
            if d == limit {
                continue;
            }
            for y in self.adj.neighbors(x) {
                if self.mark[y.index()] != epoch {
                    self.mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        false
    }

    /// The kept edges, in arrival order, as (min, max) endpoint pairs.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.kept
    }
}

/// Statistics of one [`DynamicSpanner::compact`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Dirty nodes re-clustered.
    pub region: usize,
    /// Nodes in the repair ball around the region.
    pub ball: usize,
    /// Spanner edges dropped (both endpoints dirty) before re-clustering.
    pub removed: usize,
    /// Edges chosen by the re-clustering hook and installed.
    pub reclustered: usize,
    /// Edges re-added by the invariant fixup pass over the ball.
    pub refilled: usize,
}

/// A fully dynamic (2k−1)-spanner over a fixed vertex set: edge
/// insertions *and* deletions, with periodic compaction that re-clusters
/// only the dirty region through the repo's construction hooks
/// (`skeleton::recluster_region` / `baswana_sen::recluster_region`).
///
/// The maintained invariant is the edge cover: every current graph edge
/// `{u, v}` has δ_S(u, v) ≤ 2k−1 inside the maintained subgraph S —
/// equivalent to S being a (2k−1)-spanner. The spanner is always a
/// subgraph of the current graph (deleting a graph edge deletes it from
/// S too, then repairs the cover).
///
/// # Example
///
/// ```
/// use spanner_baselines::streaming::DynamicSpanner;
/// use spanner_graph::NodeId;
///
/// let mut s = DynamicSpanner::new(4, 2);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
///     s.insert(NodeId(u), NodeId(v));
/// }
/// // The 4-cycle closes within stretch 3: one edge stays graph-only.
/// assert_eq!(s.graph_len(), 4);
/// assert_eq!(s.spanner_len(), 3);
/// // Deleting a spanner edge re-promotes the bypass to repair the cover.
/// let (a, b) = s.spanner_edges().next().unwrap();
/// s.delete(a, b);
/// assert_eq!(s.spanner_len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicSpanner {
    k: u32,
    /// Current graph edges, canonical `(min, max)` pairs.
    graph: BTreeSet<(u32, u32)>,
    /// Maintained spanner edges — always a subset of `graph`.
    spanner: BTreeSet<(u32, u32)>,
    /// Graph adjacency (for enumerating edges incident to a repair ball).
    gadj: LinkedAdjacency,
    /// Spanner adjacency (for the bounded-distance cover checks).
    sadj: LinkedAdjacency,
    /// Nodes touched by edits since the last compaction.
    dirty: BTreeSet<u32>,
    // Timestamped BFS scratch, same discipline as [`StreamingSpanner`].
    mark: Vec<u32>,
    fmark: Vec<u32>,
    fdist: Vec<u32>,
    epoch: u32,
}

impl DynamicSpanner {
    /// An empty dynamic spanner over `n` vertices with stretch 2k−1.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        DynamicSpanner {
            k,
            graph: BTreeSet::new(),
            spanner: BTreeSet::new(),
            gadj: LinkedAdjacency::new(n),
            sadj: LinkedAdjacency::new(n),
            dirty: BTreeSet::new(),
            mark: vec![0; n],
            fmark: vec![0; n],
            fdist: vec![0; n],
            epoch: 0,
        }
    }

    /// Rebuilds a dynamic spanner from persisted state: the current graph
    /// edges and the maintained spanner edges (canonical or not — pairs
    /// are normalized). The spanner property itself is **not** re-derived
    /// here (the differential tests own that); only structural sanity is.
    ///
    /// # Errors
    ///
    /// A message if a pair is a self-loop, out of range, duplicated, or a
    /// spanner edge is not a graph edge.
    pub fn from_state<I, J>(n: usize, k: u32, graph: I, spanner: J) -> Result<Self, String>
    where
        I: IntoIterator<Item = (u32, u32)>,
        J: IntoIterator<Item = (u32, u32)>,
    {
        assert!(k >= 1, "k must be at least 1");
        let mut s = DynamicSpanner::new(n, k);
        for (u, v) in graph {
            let key = Self::key_checked(n, u, v)?;
            if !s.graph.insert(key) {
                return Err(format!("duplicate graph edge {u}-{v}"));
            }
            s.gadj.add_edge(NodeId(key.0), NodeId(key.1));
        }
        for (u, v) in spanner {
            let key = Self::key_checked(n, u, v)?;
            if !s.graph.contains(&key) {
                return Err(format!("spanner edge {u}-{v} is not a graph edge"));
            }
            if !s.spanner.insert(key) {
                return Err(format!("duplicate spanner edge {u}-{v}"));
            }
            s.sadj.add_edge(NodeId(key.0), NodeId(key.1));
        }
        Ok(s)
    }

    fn key_checked(n: usize, u: u32, v: u32) -> Result<(u32, u32), String> {
        if u == v {
            return Err(format!("self-loop {u}-{v}"));
        }
        if u as usize >= n || v as usize >= n {
            return Err(format!("edge {u}-{v} out of range for n = {n}"));
        }
        Ok((u.min(v), u.max(v)))
    }

    /// The stretch guarantee 2k−1.
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// The clustering parameter k.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.mark.len()
    }

    /// Number of current graph edges.
    pub fn graph_len(&self) -> usize {
        self.graph.len()
    }

    /// Number of maintained spanner edges.
    pub fn spanner_len(&self) -> usize {
        self.spanner.len()
    }

    /// Whether `{u, v}` is a current graph edge.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.graph.contains(&(u.0.min(v.0), u.0.max(v.0)))
    }

    /// Whether `{u, v}` is a maintained spanner edge.
    pub fn spanner_contains(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.spanner.contains(&(u.0.min(v.0), u.0.max(v.0)))
    }

    /// Current graph edges in canonical sorted order.
    pub fn graph_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.graph.iter().map(|&(u, v)| (NodeId(u), NodeId(v)))
    }

    /// Maintained spanner edges in canonical sorted order.
    pub fn spanner_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.spanner.iter().map(|&(u, v)| (NodeId(u), NodeId(v)))
    }

    /// Nodes dirtied by edits since the last [`DynamicSpanner::compact`].
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Materializes the current graph. Edge ids follow the canonical
    /// lexicographic order of [`Graph::from_edges`].
    pub fn to_graph(&self) -> Graph {
        Graph::from_sorted_edges(self.node_count(), self.graph.iter().copied())
    }

    /// The maintained spanner as an [`EdgeSet`] over `g`, which must be
    /// [`DynamicSpanner::to_graph`] of the current state.
    ///
    /// # Panics
    ///
    /// Panics if a spanner edge is missing from `g`.
    pub fn spanner_edge_set(&self, g: &Graph) -> EdgeSet {
        let mut set = EdgeSet::new(g);
        for &(u, v) in &self.spanner {
            let e = g
                .find_edge(NodeId(u), NodeId(v))
                .expect("spanner edge must be a graph edge");
            set.insert(e);
        }
        set
    }

    /// Inserts the graph edge `{u, v}`; returns whether the graph changed
    /// (false for self-loops and duplicates). The edge joins the spanner
    /// iff the current spanner distance between its endpoints exceeds
    /// 2k−1 — the invariant for every other edge is untouched, since
    /// adding edges never increases spanner distances.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.node_count() && v.index() < self.node_count(),
            "endpoint out of range"
        );
        if u == v {
            return false;
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        if !self.graph.insert(key) {
            return false;
        }
        self.gadj.add_edge(u, v);
        self.dirty.extend([key.0, key.1]);
        if !self.distance_at_most(u, v, self.stretch()) {
            self.spanner.insert(key);
            self.sadj.add_edge(u, v);
        }
        true
    }

    /// Deletes the graph edge `{u, v}`; returns whether the graph changed.
    ///
    /// A graph-only edge just disappears. Deleting a *spanner* edge
    /// additionally repairs the cover invariant: the ball of radius 2k−1
    /// around `u` in S is computed **before** the removal (any cover path
    /// through `{u, v}` starts at a node of that ball), the edge is
    /// dropped, and every remaining graph edge with an endpoint in the
    /// ball is re-checked — re-entering S when its endpoints drifted
    /// beyond 2k−1 apart.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.node_count() && v.index() < self.node_count(),
            "endpoint out of range"
        );
        if u == v {
            return false;
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        if !self.graph.remove(&key) {
            return false;
        }
        self.gadj.remove_edge(u, v);
        self.dirty.extend([key.0, key.1]);
        if self.spanner.remove(&key) {
            let ball = self.spanner_ball(&[u], self.stretch());
            self.sadj.remove_edge(u, v);
            self.refill(&ball);
        }
        true
    }

    /// Compacts the accumulated edits: re-clusters the dirty region
    /// through `recluster` (a hook like
    /// `baswana_sen::recluster_region(g, region, ...)` partially applied),
    /// replacing every spanner edge internal to the region with the
    /// hook's choice, then restores the cover invariant with one fixup
    /// pass over the graph edges incident to the region's pre-removal
    /// ball. Clears the dirty set.
    ///
    /// The hook receives the materialized current graph and the sorted
    /// dirty region, and must return a subset of the graph's edges
    /// spanning the induced subgraph within stretch 2k−1 (both
    /// `recluster_region` hooks guarantee this).
    pub fn compact<F>(&mut self, recluster: F) -> CompactStats
    where
        F: FnOnce(&Graph, &[NodeId]) -> EdgeSet,
    {
        if self.dirty.is_empty() {
            return CompactStats::default();
        }
        let region: Vec<NodeId> = self.dirty.iter().map(|&v| NodeId(v)).collect();
        // Pre-removal ball: every cover path through a region-internal
        // spanner edge starts within distance 2k−1 of the region.
        let ball = self.spanner_ball(&region, self.stretch());
        let g = self.to_graph();
        let chosen = recluster(&g, &region);
        let doomed: Vec<(u32, u32)> = self
            .spanner
            .iter()
            .copied()
            .filter(|&(a, b)| self.dirty.contains(&a) && self.dirty.contains(&b))
            .collect();
        for &(a, b) in &doomed {
            self.spanner.remove(&(a, b));
            self.sadj.remove_edge(NodeId(a), NodeId(b));
        }
        let mut reclustered = 0usize;
        for e in chosen.iter() {
            let (a, b) = g.endpoints(e);
            let key = (a.0.min(b.0), a.0.max(b.0));
            debug_assert!(self.graph.contains(&key), "hook chose a non-graph edge");
            if self.spanner.insert(key) {
                self.sadj.add_edge(a, b);
                reclustered += 1;
            }
        }
        let refilled = self.refill(&ball);
        let stats = CompactStats {
            region: region.len(),
            ball: ball.len(),
            removed: doomed.len(),
            reclustered,
            refilled,
        };
        self.dirty.clear();
        stats
    }

    /// Re-checks every graph edge with an endpoint in `ball` against the
    /// current spanner, adding the ones whose cover broke. Candidates are
    /// visited in canonical sorted order so the result is deterministic.
    /// Returns the number of edges added.
    fn refill(&mut self, ball: &[NodeId]) -> usize {
        let mut candidates: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &x in ball {
            for y in self.gadj.neighbors(x) {
                candidates.insert((x.0.min(y.0), x.0.max(y.0)));
            }
        }
        let mut added = 0usize;
        for (a, b) in candidates {
            if self.spanner.contains(&(a, b)) {
                continue;
            }
            let (u, v) = (NodeId(a), NodeId(b));
            if !self.distance_at_most(u, v, self.stretch()) {
                self.spanner.insert((a, b));
                self.sadj.add_edge(u, v);
                added += 1;
            }
        }
        added
    }

    /// Multi-source bounded BFS in the spanner: all nodes within `radius`
    /// of `sources`, ascending.
    fn spanner_ball(&mut self, sources: &[NodeId], radius: u32) -> Vec<NodeId> {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut queue = VecDeque::new();
        for &s in sources {
            if self.mark[s.index()] != epoch {
                self.mark[s.index()] = epoch;
                queue.push_back((s, 0u32));
            }
        }
        let mut ball: Vec<NodeId> = Vec::new();
        while let Some((x, d)) = queue.pop_front() {
            ball.push(x);
            if d == radius {
                continue;
            }
            for y in self.sadj.neighbors(x) {
                if self.mark[y.index()] != epoch {
                    self.mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        ball.sort_unstable();
        ball
    }

    /// Bidirectional bounded BFS in the spanner: is δ_S(u, v) ≤ `limit`?
    /// Same meet-in-the-middle scheme as
    /// [`StreamingSpanner::distance_at_most`].
    fn distance_at_most(&mut self, u: NodeId, v: NodeId, limit: u32) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        let forward_radius = limit.div_ceil(2);
        self.fmark[u.index()] = epoch;
        self.fdist[u.index()] = 0;
        let mut queue = VecDeque::from([(u, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                return true;
            }
            if d == forward_radius {
                continue;
            }
            for y in self.sadj.neighbors(x) {
                if self.fmark[y.index()] != epoch {
                    self.fmark[y.index()] = epoch;
                    self.fdist[y.index()] = d + 1;
                    queue.push_back((y, d + 1));
                }
            }
        }
        let backward_radius = limit - forward_radius;
        self.mark[v.index()] = epoch;
        let mut queue = VecDeque::from([(v, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if self.fmark[x.index()] == epoch && self.fdist[x.index()] + d <= limit {
                return true;
            }
            if d == backward_radius {
                continue;
            }
            for y in self.sadj.neighbors(x) {
                if self.mark[y.index()] != epoch {
                    self.mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use spanner_graph::girth::girth_exceeds;
    use spanner_graph::{generators, Graph};
    use ultrasparse::Spanner;

    /// Streams all edges of `g` in the given order; returns the kept set
    /// as a spanner of `g`.
    fn stream_graph(g: &Graph, k: u32, shuffle_seed: Option<u64>) -> Spanner {
        let mut order: Vec<(NodeId, NodeId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        if let Some(seed) = shuffle_seed {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let mut s = StreamingSpanner::new(g.node_count(), k);
        for (u, v) in order {
            s.offer(u, v);
        }
        let mut edges = spanner_graph::EdgeSet::new(g);
        for &(u, v) in s.edges() {
            edges.insert(g.find_edge(u, v).expect("streamed edge"));
        }
        Spanner::from_edges(edges)
    }

    #[test]
    fn stretch_and_girth_any_order() {
        let g = generators::connected_gnm(150, 1_500, 3);
        for (k, shuffle) in [(2u32, None), (2, Some(7)), (3, Some(8))] {
            let s = stream_graph(&g, k, shuffle);
            assert!(s.is_spanning(&g));
            let r = s.stretch_exact(&g);
            assert!(
                r.satisfies_multiplicative((2 * k - 1) as f64),
                "k={k} shuffle={shuffle:?}: {}",
                r.max_multiplicative
            );
            let sub = s.edges.to_graph(&g);
            assert!(girth_exceeds(&sub, 2 * k));
        }
    }

    #[test]
    fn memory_bound_k2() {
        // Girth > 4 => O(n^{3/2}) kept edges regardless of stream length.
        let n = 400;
        let g = generators::connected_gnm(n, 15_000, 5);
        let s = stream_graph(&g, 2, Some(1));
        let bound = (n as f64).powf(1.5) + n as f64;
        assert!((s.len() as f64) < bound, "{} vs {bound}", s.len());
    }

    #[test]
    fn prefix_property() {
        // At every point of the stream the kept set spans the prefix.
        let g = generators::connected_gnm(60, 300, 9);
        let mut s = StreamingSpanner::new(60, 2);
        let mut prefix: Vec<(u32, u32)> = Vec::new();
        for (i, (_, u, v)) in g.edges().enumerate() {
            s.offer(u, v);
            prefix.push((u.0, v.0));
            if i % 50 == 49 {
                let pg = Graph::from_edges(60, prefix.iter().copied());
                let mut kept = spanner_graph::EdgeSet::new(&pg);
                for &(a, b) in s.edges() {
                    kept.insert(pg.find_edge(a, b).expect("kept edge in prefix"));
                }
                assert!(Spanner::from_edges(kept).is_spanning(&pg), "prefix {i}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn bidirectional_matches_unidirectional(
            n in 2usize..=40,
            m in 0usize..=160,
            k in 1u32..=4,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut s = StreamingSpanner::new(n, k);
            for _ in 0..m {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                if u != v {
                    s.offer(u, v);
                }
            }
            for _ in 0..64 {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                if u == v {
                    continue;
                }
                let limit = rng.gen_range(0..=2 * k + 2);
                prop_assert_eq!(
                    s.distance_at_most(u, v, limit),
                    s.distance_at_most_unidirectional(u, v, limit),
                    "query ({u}, {v}) limit {limit}"
                );
            }
        }
    }

    #[test]
    fn duplicates_and_loops_filtered() {
        let mut s = StreamingSpanner::new(3, 2);
        assert!(!s.offer(NodeId(1), NodeId(1)));
        assert!(s.offer(NodeId(0), NodeId(1)));
        assert!(!s.offer(NodeId(0), NodeId(1)));
        assert!(!s.offer(NodeId(1), NodeId(0)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    /// Asserts the cover invariant of `s` directly: the spanner is a
    /// subgraph of the graph and every graph edge's endpoints are within
    /// stretch in the spanner (checked by exact verification).
    fn assert_dynamic_invariant(s: &DynamicSpanner) {
        let g = s.to_graph();
        let set = s.spanner_edge_set(&g);
        let spanner = Spanner::from_edges(set);
        let r = spanner.stretch_exact(&g);
        assert!(
            r.satisfies_multiplicative(s.stretch() as f64),
            "cover invariant broken: stretch {} > {}",
            r.max_multiplicative,
            s.stretch()
        );
    }

    #[test]
    fn dynamic_insert_matches_streaming_filter() {
        // With insert-only traffic the dynamic spanner IS the streaming
        // filter: same kept set for the same arrival order.
        let g = generators::connected_gnm(80, 400, 13);
        let mut stream = StreamingSpanner::new(80, 2);
        let mut dynamic = DynamicSpanner::new(80, 2);
        for (_, u, v) in g.edges() {
            let kept = stream.offer(u, v);
            dynamic.insert(u, v);
            assert_eq!(kept, dynamic.spanner_contains(u, v), "edge {u}-{v}");
        }
        assert_eq!(dynamic.spanner_len(), stream.len());
        assert_eq!(dynamic.graph_len(), g.edge_count());
    }

    #[test]
    fn dynamic_delete_repairs_cover() {
        use rand::{Rng, SeedableRng};
        let g = generators::connected_gnm(60, 240, 21);
        let mut s = DynamicSpanner::new(60, 2);
        for (_, u, v) in g.edges() {
            s.insert(u, v);
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut live: Vec<(NodeId, NodeId)> = s.graph_edges().collect();
        for _ in 0..120 {
            let i = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(i);
            assert!(s.delete(u, v));
            assert!(!s.contains(u, v));
            assert!(!s.spanner_contains(u, v));
        }
        assert_eq!(s.graph_len(), g.edge_count() - 120);
        assert_dynamic_invariant(&s);
    }

    #[test]
    fn dynamic_compact_preserves_cover() {
        use rand::{Rng, SeedableRng};
        // Re-cluster through the real Baswana–Sen hook mid-stream. The
        // closure captures nothing, so it is `Copy` and reusable.
        let hook = |g: &Graph, region: &[NodeId]| {
            let params = crate::baswana_sen::BaswanaSenParams::new(2).unwrap();
            crate::baswana_sen::recluster_region(g, region, &params, 11)
        };
        let g = generators::connected_gnm(70, 300, 9);
        let mut s = DynamicSpanner::new(70, 2);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for (i, (_, u, v)) in g.edges().enumerate() {
            s.insert(u, v);
            if i % 40 == 39 {
                // Also delete something to dirty more of the region.
                let (du, dv) = s
                    .graph_edges()
                    .nth(rng.gen_range(0..s.graph_len()))
                    .unwrap();
                s.delete(du, dv);
                assert!(s.dirty_len() > 0);
                let stats = s.compact(hook);
                assert!(stats.region > 0);
                assert_eq!(s.dirty_len(), 0);
                assert_dynamic_invariant(&s);
            }
        }
        assert_dynamic_invariant(&s);
        // Drain the tail edits, then compacting with nothing dirty is a
        // no-op.
        s.compact(hook);
        assert_eq!(s.dirty_len(), 0);
        let stats = s.compact(hook);
        assert_eq!(stats, CompactStats::default());
        assert_dynamic_invariant(&s);
    }

    #[test]
    fn dynamic_from_state_round_trips_and_validates() {
        let g = generators::connected_gnm(40, 150, 2);
        let mut s = DynamicSpanner::new(40, 3);
        for (_, u, v) in g.edges() {
            s.insert(u, v);
        }
        let graph: Vec<(u32, u32)> = s.graph_edges().map(|(u, v)| (u.0, v.0)).collect();
        let spanner: Vec<(u32, u32)> = s.spanner_edges().map(|(u, v)| (u.0, v.0)).collect();
        let back =
            DynamicSpanner::from_state(40, 3, graph.iter().copied(), spanner.iter().copied())
                .unwrap();
        assert_eq!(
            back.graph_edges().collect::<Vec<_>>(),
            s.graph_edges().collect::<Vec<_>>()
        );
        assert_eq!(
            back.spanner_edges().collect::<Vec<_>>(),
            s.spanner_edges().collect::<Vec<_>>()
        );
        // Structural validation failures are typed messages, not panics.
        assert!(DynamicSpanner::from_state(40, 3, [(1, 1)], []).is_err());
        assert!(DynamicSpanner::from_state(40, 3, [(0, 99)], []).is_err());
        assert!(DynamicSpanner::from_state(40, 3, [(0, 1), (1, 0)], []).is_err());
        assert!(DynamicSpanner::from_state(40, 3, [(0, 1)], [(0, 2)]).is_err());
        assert!(DynamicSpanner::from_state(40, 3, [(0, 1)], [(0, 1), (1, 0)]).is_err());
    }

    #[test]
    fn dynamic_delete_to_disconnection() {
        // Deleting a bridge disconnects the graph; the exempt pair stays
        // exempt and the spanner tracks the surviving components.
        let mut s = DynamicSpanner::new(6, 2);
        for (u, v) in [(0u32, 1), (1, 2), (3, 4), (4, 5), (2, 3)] {
            s.insert(NodeId(u), NodeId(v));
        }
        assert!(s.delete(NodeId(2), NodeId(3)));
        assert_eq!(s.graph_len(), 4);
        assert_dynamic_invariant(&s);
        // Delete everything: empty graph, empty spanner.
        let live: Vec<(NodeId, NodeId)> = s.graph_edges().collect();
        for (u, v) in live {
            assert!(s.delete(u, v));
        }
        assert_eq!(s.graph_len(), 0);
        assert_eq!(s.spanner_len(), 0);
        assert_dynamic_invariant(&s);
    }
}
