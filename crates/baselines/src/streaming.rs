//! Streaming (2k−1)-spanners (related work, Sect. 1.4).
//!
//! The paper's related-work section cites Elkin \[21\] and Baswana \[5\]
//! for spanners in the online streaming model: *"edges arrive one at a
//! time and the algorithm can only keep O(n^{1+1/k}) edges in memory."*
//! [`StreamingSpanner`] implements the correctness-equivalent online
//! filter: keep an arriving edge iff the current spanner distance between
//! its endpoints exceeds 2k−1. The kept subgraph always has girth > 2k,
//! hence ≤ O(n^{1+1/k}) edges — the stated memory bound — and is a
//! (2k−1)-spanner of the stream's prefix at every point.
//!
//! (Baswana's algorithm \[5\] achieves O(1) *processing time* per edge
//! with clustering; we trade that for the simple distance filter, whose
//! per-edge cost is a BFS bounded to depth 2k−1 in the sparse kept
//! subgraph — the same space profile, which is what the model constrains.
//! Documented as a substitution in DESIGN.md §4.)

use std::collections::VecDeque;

use spanner_graph::{LinkedAdjacency, NodeId};

/// An online (2k−1)-spanner over an edge stream on a fixed vertex set.
///
/// # Example
///
/// ```
/// use spanner_baselines::streaming::StreamingSpanner;
/// use spanner_graph::{LinkedAdjacency, NodeId};
///
/// let mut s = StreamingSpanner::new(4, 2);
/// assert!(s.offer(NodeId(0), NodeId(1)));
/// assert!(s.offer(NodeId(1), NodeId(2)));
/// assert!(s.offer(NodeId(2), NodeId(3)));
/// // 0-3 closes a cycle of length 4 <= 2k = 4: redundant, filtered out.
/// assert!(!s.offer(NodeId(0), NodeId(3)));
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSpanner {
    k: u32,
    adj: LinkedAdjacency,
    kept: Vec<(NodeId, NodeId)>,
    // Scratch for the bounded BFS (timestamped to avoid re-allocation):
    // backward marks, forward marks, forward distances.
    mark: Vec<u32>,
    fmark: Vec<u32>,
    fdist: Vec<u32>,
    epoch: u32,
}

impl StreamingSpanner {
    /// An empty spanner over `n` vertices with stretch parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        StreamingSpanner {
            k,
            adj: LinkedAdjacency::new(n),
            kept: Vec::new(),
            mark: vec![0; n],
            fmark: vec![0; n],
            fdist: vec![0; n],
            epoch: 0,
        }
    }

    /// The stretch guarantee 2k−1.
    pub fn stretch(&self) -> u32 {
        2 * self.k - 1
    }

    /// Number of edges currently kept.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// Whether no edges are kept.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Processes the next stream edge; returns whether it was kept.
    /// Duplicate edges and self-loops are filtered (never kept).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn offer(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.adj.node_count() && v.index() < self.adj.node_count(),
            "endpoint out of range"
        );
        if u == v {
            return false;
        }
        if self.distance_at_most(u, v, 2 * self.k - 1) {
            return false;
        }
        self.adj.add_edge(u, v);
        self.kept.push((u.min(v), u.max(v)));
        true
    }

    /// Bidirectional bounded BFS in the kept subgraph: is δ(u, v) ≤ `limit`?
    ///
    /// Meet-in-the-middle: a forward sweep from `u` to radius ⌈limit/2⌉
    /// records its ball, then a backward sweep from `v` to the remaining
    /// radius reports success as soon as it touches a node `y` with
    /// `fdist(y) + bdist(y) ≤ limit`. Both balls have roughly the square
    /// root of the unidirectional frontier size, which is what makes the
    /// per-edge filter cheap on dense streams. Soundness: the distances on
    /// both sides are exact within their radii, so a meeting certifies a
    /// walk of length ≤ limit; conversely a shortest path of length
    /// D ≤ limit has a node at distance min(⌈limit/2⌉, D) from `u` that
    /// the backward sweep reaches within limit − ⌈limit/2⌉ hops.
    fn distance_at_most(&mut self, u: NodeId, v: NodeId, limit: u32) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        let forward_radius = limit.div_ceil(2);
        self.fmark[u.index()] = epoch;
        self.fdist[u.index()] = 0;
        let mut queue = VecDeque::from([(u, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                return true;
            }
            if d == forward_radius {
                continue;
            }
            for y in self.adj.neighbors(x) {
                if self.fmark[y.index()] != epoch {
                    self.fmark[y.index()] = epoch;
                    self.fdist[y.index()] = d + 1;
                    queue.push_back((y, d + 1));
                }
            }
        }
        let backward_radius = limit - forward_radius;
        self.mark[v.index()] = epoch;
        let mut queue = VecDeque::from([(v, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if self.fmark[x.index()] == epoch && self.fdist[x.index()] + d <= limit {
                return true;
            }
            if d == backward_radius {
                continue;
            }
            for y in self.adj.neighbors(x) {
                if self.mark[y.index()] != epoch {
                    self.mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        false
    }

    /// The original single-direction bounded BFS, kept as the reference
    /// the proptest suite cross-checks the bidirectional version against.
    #[cfg(test)]
    fn distance_at_most_unidirectional(&mut self, u: NodeId, v: NodeId, limit: u32) -> bool {
        self.epoch += 1;
        let epoch = self.epoch;
        self.mark[u.index()] = epoch;
        let mut queue = VecDeque::from([(u, 0u32)]);
        while let Some((x, d)) = queue.pop_front() {
            if x == v {
                return true;
            }
            if d == limit {
                continue;
            }
            for y in self.adj.neighbors(x) {
                if self.mark[y.index()] != epoch {
                    self.mark[y.index()] = epoch;
                    queue.push_back((y, d + 1));
                }
            }
        }
        false
    }

    /// The kept edges, in arrival order, as (min, max) endpoint pairs.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use spanner_graph::girth::girth_exceeds;
    use spanner_graph::{generators, Graph};
    use ultrasparse::Spanner;

    /// Streams all edges of `g` in the given order; returns the kept set
    /// as a spanner of `g`.
    fn stream_graph(g: &Graph, k: u32, shuffle_seed: Option<u64>) -> Spanner {
        let mut order: Vec<(NodeId, NodeId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        if let Some(seed) = shuffle_seed {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let mut s = StreamingSpanner::new(g.node_count(), k);
        for (u, v) in order {
            s.offer(u, v);
        }
        let mut edges = spanner_graph::EdgeSet::new(g);
        for &(u, v) in s.edges() {
            edges.insert(g.find_edge(u, v).expect("streamed edge"));
        }
        Spanner::from_edges(edges)
    }

    #[test]
    fn stretch_and_girth_any_order() {
        let g = generators::connected_gnm(150, 1_500, 3);
        for (k, shuffle) in [(2u32, None), (2, Some(7)), (3, Some(8))] {
            let s = stream_graph(&g, k, shuffle);
            assert!(s.is_spanning(&g));
            let r = s.stretch_exact(&g);
            assert!(
                r.satisfies_multiplicative((2 * k - 1) as f64),
                "k={k} shuffle={shuffle:?}: {}",
                r.max_multiplicative
            );
            let sub = s.edges.to_graph(&g);
            assert!(girth_exceeds(&sub, 2 * k));
        }
    }

    #[test]
    fn memory_bound_k2() {
        // Girth > 4 => O(n^{3/2}) kept edges regardless of stream length.
        let n = 400;
        let g = generators::connected_gnm(n, 15_000, 5);
        let s = stream_graph(&g, 2, Some(1));
        let bound = (n as f64).powf(1.5) + n as f64;
        assert!((s.len() as f64) < bound, "{} vs {bound}", s.len());
    }

    #[test]
    fn prefix_property() {
        // At every point of the stream the kept set spans the prefix.
        let g = generators::connected_gnm(60, 300, 9);
        let mut s = StreamingSpanner::new(60, 2);
        let mut prefix: Vec<(u32, u32)> = Vec::new();
        for (i, (_, u, v)) in g.edges().enumerate() {
            s.offer(u, v);
            prefix.push((u.0, v.0));
            if i % 50 == 49 {
                let pg = Graph::from_edges(60, prefix.iter().copied());
                let mut kept = spanner_graph::EdgeSet::new(&pg);
                for &(a, b) in s.edges() {
                    kept.insert(pg.find_edge(a, b).expect("kept edge in prefix"));
                }
                assert!(Spanner::from_edges(kept).is_spanning(&pg), "prefix {i}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn bidirectional_matches_unidirectional(
            n in 2usize..=40,
            m in 0usize..=160,
            k in 1u32..=4,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut s = StreamingSpanner::new(n, k);
            for _ in 0..m {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                if u != v {
                    s.offer(u, v);
                }
            }
            for _ in 0..64 {
                let u = NodeId(rng.gen_range(0..n as u32));
                let v = NodeId(rng.gen_range(0..n as u32));
                if u == v {
                    continue;
                }
                let limit = rng.gen_range(0..=2 * k + 2);
                prop_assert_eq!(
                    s.distance_at_most(u, v, limit),
                    s.distance_at_most_unidirectional(u, v, limit),
                    "query ({u}, {v}) limit {limit}"
                );
            }
        }
    }

    #[test]
    fn duplicates_and_loops_filtered() {
        let mut s = StreamingSpanner::new(3, 2);
        assert!(!s.offer(NodeId(1), NodeId(1)));
        assert!(s.offer(NodeId(0), NodeId(1)));
        assert!(!s.offer(NodeId(0), NodeId(1)));
        assert!(!s.offer(NodeId(1), NodeId(0)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
