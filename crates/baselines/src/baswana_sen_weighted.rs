//! Baswana–Sen on **weighted** graphs — the Fig. 1 row the paper calls
//! *"optimal in all respects, save for a factor of k in the spanner
//! size"*.
//!
//! The weighted algorithm refines the unweighted one with least-weight
//! edge selection and explicit edge retirement: when `v` joins the
//! sampled cluster reachable by its lightest edge (weight W), it also
//! connects once to every adjacent cluster offering an edge *lighter*
//! than W, and all edges from `v` to those clusters retire from further
//! consideration. The result is a (2k−1)-spanner **with respect to
//! weighted distances**, expected size O(kn + log k·n^{1+1/k}) (with the
//! paper's corrected log k factor).

use spanner_graph::weighted::WeightedGraph;
use spanner_graph::{EdgeId, EdgeSet, NodeId};
use ultrasparse::expand::ClusterSampler;
use ultrasparse::Spanner;

use crate::baswana_sen::BaswanaSenParams;

/// Builds the weighted Baswana–Sen (2k−1)-spanner. Deterministic in
/// `seed`.
pub fn build_weighted(g: &WeightedGraph, params: &BaswanaSenParams, seed: u64) -> Spanner {
    let n = g.node_count();
    let mut spanner = EdgeSet::new(g.graph());
    if n == 0 {
        return Spanner::from_edges(spanner);
    }
    let p = params.probability(n);
    let sampler = ClusterSampler::new(seed);

    // cluster[v]: Some(center) while clustered; retired[e]: edge removed
    // from further consideration.
    let mut cluster: Vec<Option<NodeId>> = g.graph().nodes().map(Some).collect();
    let mut retired: Vec<bool> = vec![false; g.edge_count()];

    // Lightest live edge from v to each adjacent cluster:
    // (weight, edge, cluster center), sorted by cluster for dedup.
    let adjacent = |g: &WeightedGraph, retired: &[bool], cluster: &[Option<NodeId>], v: NodeId| {
        let cv = cluster[v.index()];
        let mut adj: Vec<(NodeId, u32, EdgeId)> = Vec::new();
        for &(w, e) in g.graph().neighbors(v) {
            if retired[e.index()] {
                continue;
            }
            if let Some(cw) = cluster[w.index()] {
                if Some(cw) != cv {
                    adj.push((cw, g.weight(e), e));
                }
            }
        }
        adj.sort_unstable_by_key(|&(c, wt, e)| (c, wt, e));
        adj.dedup_by_key(|&mut (c, _, _)| c);
        adj
    };

    for iter in 0..params.k.saturating_sub(1) {
        let mut next = cluster.clone();
        for v in g.graph().nodes() {
            let Some(cv) = cluster[v.index()] else {
                continue;
            };
            if sampler.sampled(cv, iter, p) {
                continue;
            }
            let adj = adjacent(g, &retired, &cluster, v);
            // The lightest edge into a *sampled* cluster, by (weight, edge).
            let best = adj
                .iter()
                .filter(|&&(c, _, _)| sampler.sampled(c, iter, p))
                .min_by_key(|&&(_, wt, e)| (wt, e))
                .copied();
            match best {
                None => {
                    // Connect once to every adjacent cluster; retire all
                    // of v's live edges; v leaves the clustering.
                    for &(_, _, e) in &adj {
                        spanner.insert(e);
                    }
                    for &(_, e) in g.graph().neighbors(v) {
                        retired[e.index()] = true;
                    }
                    next[v.index()] = None;
                }
                Some((cstar, wstar, estar)) => {
                    spanner.insert(estar);
                    next[v.index()] = Some(cstar);
                    // Clusters offering strictly lighter edges: connect
                    // and retire; also retire all edges into c*.
                    let lighter: Vec<NodeId> = adj
                        .iter()
                        .filter(|&&(c, wt, e)| c != cstar && (wt, e) < (wstar, estar))
                        .map(|&(c, _, _)| c)
                        .collect();
                    for &(c, _, e) in &adj {
                        if lighter.contains(&c) {
                            spanner.insert(e);
                        }
                    }
                    for &(w, e) in g.graph().neighbors(v) {
                        if retired[e.index()] {
                            continue;
                        }
                        if let Some(cw) = cluster[w.index()] {
                            if cw == cstar || lighter.contains(&cw) {
                                retired[e.index()] = true;
                            }
                        }
                    }
                }
            }
        }
        cluster = next;
        // Retire intra-cluster edges of the new clustering.
        for (e, a, b) in g.graph().edges() {
            if let (Some(ca), Some(cb)) = (cluster[a.index()], cluster[b.index()]) {
                if ca == cb {
                    retired[e.index()] = true;
                }
            }
        }
    }

    // Phase 2: lightest live edge to each adjacent final cluster.
    for v in g.graph().nodes() {
        for (_, _, e) in adjacent(g, &retired, &cluster, v) {
            spanner.insert(e);
        }
    }

    Spanner::from_edges(spanner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;
    use spanner_graph::weighted::weighted_stretch;

    fn workload(n: usize, m: usize, wmax: u32, seed: u64) -> WeightedGraph {
        WeightedGraph::random_weights(generators::connected_gnm(n, m, seed), wmax, seed + 100)
    }

    #[test]
    fn weighted_stretch_guarantee() {
        for k in [2u32, 3] {
            let params = BaswanaSenParams::new(k).unwrap();
            let g = workload(150, 1_200, 20, k as u64);
            let s = build_weighted(&g, &params, 7);
            assert!(s.is_spanning(g.graph()), "k={k}");
            let stretch = weighted_stretch(&g, &s.edges);
            assert!(
                stretch <= (2 * k - 1) as f64 + 1e-9,
                "k={k}: weighted stretch {stretch}"
            );
        }
    }

    #[test]
    fn unit_weights_match_unweighted_guarantee() {
        let g0 = generators::connected_gnm(200, 1_500, 5);
        let g = WeightedGraph::new(g0.clone(), vec![1; g0.edge_count()]);
        let params = BaswanaSenParams::new(3).unwrap();
        let s = build_weighted(&g, &params, 9);
        assert!(s.is_spanning(&g0));
        let r = s.stretch_exact(&g0);
        assert!(r.satisfies_multiplicative(5.0), "{}", r.max_multiplicative);
    }

    #[test]
    fn prefers_light_edges() {
        // Star of heavy edges + light cycle: the spanner should carry the
        // light cycle rather than heavy chords where possible. Check total
        // weight is far below keeping everything heavy.
        let n = 40u32;
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 2..n - 1 {
            edges.push((0, i));
        }
        let g0 = spanner_graph::Graph::from_edges(n as usize, edges);
        let mut w = vec![0u32; g0.edge_count()];
        for (e, a, b) in g0.edges() {
            let cyclic = (b.0 == a.0 + 1) || (a.0 == 0 && b.0 == n - 1);
            w[e.index()] = if cyclic { 1 } else { 100 };
        }
        let g = WeightedGraph::new(g0.clone(), w);
        let params = BaswanaSenParams::new(2).unwrap();
        let s = build_weighted(&g, &params, 3);
        assert!(s.is_spanning(&g0));
        let stretch = weighted_stretch(&g, &s.edges);
        assert!(stretch <= 3.0 + 1e-9, "{stretch}");
    }

    #[test]
    fn size_bound_dense() {
        let n = 1_500usize;
        let g = workload(n, 60_000, 50, 11);
        let params = BaswanaSenParams::new(3).unwrap();
        let s = build_weighted(&g, &params, 5);
        let bound = 2.0 * (3 * n) as f64 + 2.0 * (n as f64).powf(4.0 / 3.0);
        assert!((s.len() as f64) < bound, "{} vs {bound}", s.len());
        assert!(s.len() < g.edge_count());
    }

    #[test]
    fn k1_keeps_every_edge() {
        let g = workload(50, 300, 9, 2);
        let params = BaswanaSenParams::new(1).unwrap();
        let s = build_weighted(&g, &params, 1);
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn deterministic() {
        let g = workload(100, 600, 10, 4);
        let params = BaswanaSenParams::new(2).unwrap();
        let a = build_weighted(&g, &params, 6);
        let b = build_weighted(&g, &params, 6);
        assert_eq!(a.edges, b.edges);
    }
}
