//! Differential suite: the incrementally-maintained spanner versus a
//! from-scratch rebuild.
//!
//! Property under test: after **any** sequence of edge insertions and
//! deletions — with compactions interleaved at arbitrary points — the
//! incremental spanner satisfies the same multiplicative
//! [`StretchBound`] (2k−1) that a from-scratch rebuild over the final
//! graph satisfies, verified *exactly* (every connected pair) by
//! [`verify_stretch_exact_threads`] at thread counts 1–8, and its size
//! stays within the paper's `O(k · n^{1+1/k})` regime (asserted with the
//! conformance-style slack `k·n + 8·n^{1+1/k}`). The durable
//! [`DynamicStore`] variant additionally pins reload-equality: close,
//! reopen, and the in-memory state is reproduced edit-for-edit.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_baselines::baswana_sen::{recluster_region, BaswanaSenParams};
use spanner_baselines::streaming::{DynamicSpanner, StreamingSpanner};
use spanner_graph::distance::{verify_stretch_exact_threads, StretchBound};
use spanner_graph::{generators, NodeId};
use spanner_store::{scratch_dir, DynamicStore, SnapshotMeta};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// The paper-bound ceiling with conformance slack: `k·n + 8·n^{1+1/k}`.
fn size_ceiling(n: usize, k: u32) -> usize {
    let nf = n as f64;
    (k as usize) * n + (8.0 * nf.powf(1.0 + 1.0 / f64::from(k))).ceil() as usize
}

/// Exact stretch check at every thread count in 1–8.
fn assert_stretch_all_threads(s: &DynamicSpanner, context: &str) {
    let g = s.to_graph();
    let edge_set = s.spanner_edge_set(&g);
    let bound = StretchBound::multiplicative(f64::from(s.stretch()));
    for t in THREAD_COUNTS {
        verify_stretch_exact_threads(&g, &edge_set, bound, t)
            .unwrap_or_else(|v| panic!("{context}: stretch violated at {t} threads: {v}"));
    }
}

/// Builds the from-scratch baseline over the final graph and checks it
/// against the *same* bound the incremental spanner must satisfy — the
/// differential anchor.
fn assert_rebuild_same_bound(s: &DynamicSpanner) {
    let n = s.node_count();
    let mut rebuild = StreamingSpanner::new(n, s.k());
    for (u, v) in s.graph_edges() {
        rebuild.offer(u, v);
    }
    let fresh = DynamicSpanner::from_state(
        n,
        s.k(),
        s.graph_edges().map(|(a, b)| (a.0, b.0)),
        rebuild.edges().iter().map(|&(a, b)| (a.0, b.0)),
    )
    .expect("rebuild state is structurally valid");
    assert_stretch_all_threads(&fresh, "from-scratch rebuild");
    assert!(
        rebuild.len() <= size_ceiling(n, s.k()),
        "rebuild size {} over ceiling {}",
        rebuild.len(),
        size_ceiling(n, s.k())
    );
}

/// Starts an incremental spanner from the streaming filter over a random
/// connected graph.
fn seeded_spanner(n: usize, m: usize, k: u32, seed: u64) -> DynamicSpanner {
    let g = generators::connected_gnm(n, m, seed);
    let mut s = DynamicSpanner::new(n, k);
    for (_, u, v) in g.edges() {
        s.insert(u, v);
    }
    s
}

/// One random edit: mode 0 inserts only, mode 1 deletes only, mode 2
/// mixes. Returns whether the edit applied.
fn random_edit(s: &mut DynamicSpanner, rng: &mut SmallRng, mode: u8) -> bool {
    let n = s.node_count() as u32;
    let u = rng.gen_range(0..n);
    let mut v = rng.gen_range(0..n - 1);
    if v >= u {
        v += 1;
    }
    let delete = match mode {
        0 => false,
        1 => true,
        _ => rng.gen_range(0..2u32) == 1,
    };
    if delete {
        s.delete(NodeId(u), NodeId(v))
    } else {
        s.insert(NodeId(u), NodeId(v))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The tentpole differential property: random edit sequences with
    // interleaved compactions, verified exactly at threads 1–8 against
    // the bound a from-scratch rebuild satisfies, size within the paper
    // ceiling throughout.
    #[test]
    fn edit_sequences_match_from_scratch_rebuild(
        n in 8usize..=36,
        extra in 0usize..=40,
        k in 1u32..=3,
        seed in 0u64..=u64::MAX / 2,
        ops in 1usize..=48,
        mode in 0u8..=2,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let mut s = seeded_spanner(n, m, k, seed);
        let params = BaswanaSenParams::new(k).expect("valid k");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE017);
        for i in 0..ops {
            random_edit(&mut s, &mut rng, mode);
            if i % 17 == 16 {
                s.compact(|g, region| recluster_region(g, region, &params, seed));
                prop_assert_eq!(s.dirty_len(), 0);
            }
        }
        s.compact(|g, region| recluster_region(g, region, &params, seed));
        assert_stretch_all_threads(&s, "incremental");
        prop_assert!(
            s.spanner_len() <= size_ceiling(n, k),
            "incremental size {} over ceiling {}", s.spanner_len(), size_ceiling(n, k)
        );
        assert_rebuild_same_bound(&s);
    }

    // Durability differential: the same edits through DynamicStore, with
    // a mid-sequence checkpoint; a reopened store reproduces the
    // in-memory graph and spanner edge-for-edge and passes the same
    // exact verification.
    #[test]
    fn checkpoint_and_reload_reproduce_in_memory_state(
        n in 8usize..=24,
        extra in 0usize..=20,
        k in 1u32..=3,
        seed in 0u64..=u64::MAX / 2,
        ops in 1usize..=24,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let csr = generators::connected_gnm_csr(n, m, seed);
        let initial: Vec<(u32, u32)> = {
            let mut filter = StreamingSpanner::new(n, k);
            for (_, a, b) in csr.forward_edges() {
                filter.offer(a, b);
            }
            filter.edges().iter().map(|&(a, b)| (a.0, b.0)).collect()
        };
        let dir = scratch_dir("parity");
        let meta = SnapshotMeta { k, seed, routing: false };
        let mut store = DynamicStore::create(&dir, &csr, &initial, meta).expect("create");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15C);
        for i in 0..ops {
            let u = rng.gen_range(0..n as u32);
            let mut v = rng.gen_range(0..n as u32 - 1);
            if v >= u { v += 1; }
            if rng.gen_range(0..2u32) == 0 {
                store.insert(u.min(v), u.max(v)).expect("insert");
            } else {
                store.delete(u.min(v), u.max(v)).expect("delete");
            }
            if i == ops / 2 {
                store.checkpoint().expect("checkpoint");
            }
        }
        let reopened = DynamicStore::open(&dir).expect("reopen");
        prop_assert_eq!(reopened.generation(), store.generation());
        prop_assert_eq!(reopened.wal_len(), store.wal_len());
        prop_assert_eq!(
            reopened.spanner().graph_edges().collect::<Vec<_>>(),
            store.spanner().graph_edges().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            reopened.spanner().spanner_edges().collect::<Vec<_>>(),
            store.spanner().spanner_edges().collect::<Vec<_>>()
        );
        assert_stretch_all_threads(reopened.spanner(), "reopened store");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The empty edit sequence is the identity: nothing moves, a compaction
/// is a no-op, and verification still passes.
#[test]
fn empty_edit_sequence_is_identity() {
    let s0 = seeded_spanner(30, 70, 2, 11);
    let before_graph: Vec<_> = s0.graph_edges().collect();
    let mut s = s0;
    let params = BaswanaSenParams::new(2).expect("valid k");
    // Fresh-built state has dirty endpoints from the initial inserts;
    // drain them, then the *empty edit sequence* compaction is a no-op.
    s.compact(|g, region| recluster_region(g, region, &params, 11));
    let settled_spanner: Vec<_> = s.spanner_edges().collect();
    let stats = s.compact(|g, region| recluster_region(g, region, &params, 11));
    assert_eq!(stats, Default::default(), "no-op compaction did work");
    assert_eq!(s.graph_edges().collect::<Vec<_>>(), before_graph);
    assert_eq!(s.spanner_edges().collect::<Vec<_>>(), settled_spanner);
    assert_stretch_all_threads(&s, "identity sequence");
}

/// Compaction is hook-agnostic: the cover-repair pass after the hook
/// restores the 2k−1 edge-cover invariant even when the hook's own
/// guarantee is different — here the paper's skeleton construction
/// (O(log n) stretch), the other CSR driver a compaction can replay
/// through.
#[test]
fn skeleton_recluster_hook_also_preserves_cover() {
    use ultrasparse::skeleton::{recluster_region, SkeletonParams};

    let mut s = seeded_spanner(32, 90, 2, 19);
    let params = SkeletonParams::new(4.0, 1.0).expect("valid params");
    let mut rng = SmallRng::seed_from_u64(0x5E1E);
    for i in 0..40 {
        random_edit(&mut s, &mut rng, 2);
        if i % 13 == 12 {
            s.compact(|g, region| recluster_region(g, region, &params, 19));
            assert_eq!(s.dirty_len(), 0);
        }
    }
    s.compact(|g, region| recluster_region(g, region, &params, 19));
    assert_stretch_all_threads(&s, "skeleton hook");
}

/// Deleting down to a disconnected graph: connected pairs still meet the
/// bound, disconnected pairs impose none, and the spanner carries no
/// ghost edges across the cut.
#[test]
fn delete_to_disconnection_stays_consistent() {
    let n = 24usize;
    let mut s = DynamicSpanner::new(n, 2);
    for i in 0..n as u32 - 1 {
        s.insert(NodeId(i), NodeId(i + 1));
    }
    // Sever the path in the middle: two components.
    assert!(s.delete(NodeId(11), NodeId(12)));
    assert_stretch_all_threads(&s, "severed path");
    for (u, v) in s.spanner_edges() {
        assert_eq!(
            (u.0 <= 11),
            (v.0 <= 11),
            "spanner edge {u:?}-{v:?} crosses the cut"
        );
    }
    // Delete everything: the spanner must drain to empty alongside.
    let edges: Vec<_> = s.graph_edges().collect();
    for (u, v) in edges {
        assert!(s.delete(u, v));
    }
    assert_eq!(s.graph_len(), 0);
    assert_eq!(s.spanner_len(), 0);
    assert_stretch_all_threads(&s, "fully deleted");
}
