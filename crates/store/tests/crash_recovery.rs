//! Crash-recovery suite: kill a checkpoint at **every** filesystem
//! operation boundary and prove recovery.
//!
//! The save path is a sequence of mutating operations (create, write
//! temp, rename, ..., rename MANIFEST, cleanup). The op-counting `Fs`
//! layer behind [`DynamicStore::checkpoint_with_budget`] turns operation
//! number `b` and everything after it into a simulated crash
//! ([`StoreError::Injected`]). This test sweeps `b` from 0 until the
//! checkpoint survives, and after every single crash point demands:
//!
//! * the directory still opens — no torn state, ever;
//! * the graph read back is exactly the graph (it never changes across a
//!   checkpoint);
//! * the spanner read back is exactly the **old** state (base snapshot +
//!   WAL replay) or exactly the **new** state (post-compaction) — never a
//!   hybrid;
//! * the recovered spanner passes the exact stretch verification.

use std::fs;
use std::path::Path;

use spanner_baselines::streaming::StreamingSpanner;
use spanner_graph::distance::{verify_stretch_exact, StretchBound};
use spanner_graph::{generators, NodeId};
use spanner_store::{scratch_dir, DynamicStore, SnapshotMeta, StoreError};

fn copy_dir(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("create copy dir");
    for entry in fs::read_dir(from).expect("read dir").flatten() {
        fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
    }
}

type Edges = Vec<(NodeId, NodeId)>;

fn state_of(store: &DynamicStore) -> (Edges, Edges) {
    (
        store.spanner().graph_edges().collect(),
        store.spanner().spanner_edges().collect(),
    )
}

fn assert_verified(store: &DynamicStore) {
    let g = store.spanner().to_graph();
    let s = store.spanner().spanner_edge_set(&g);
    let bound = StretchBound::multiplicative(f64::from(store.spanner().stretch()));
    verify_stretch_exact(&g, &s, bound).expect("recovered spanner must verify");
}

#[test]
fn checkpoint_killed_at_every_op_recovers_old_or_new() {
    // Base snapshot + a WAL of edits that dirty the spanner.
    let base = scratch_dir("crash-base");
    let csr = generators::connected_gnm_csr(100, 300, 41);
    let initial: Vec<(u32, u32)> = {
        let mut filter = StreamingSpanner::new(100, 2);
        for (_, a, b) in csr.forward_edges() {
            filter.offer(a, b);
        }
        filter.edges().iter().map(|&(a, b)| (a.0, b.0)).collect()
    };
    let meta = SnapshotMeta {
        k: 2,
        seed: 41,
        routing: false,
    };
    let mut seeded = DynamicStore::create(&base, &csr, &initial, meta).expect("create base");
    for i in 0..10u32 {
        let (u, v) = (i, 50 + 3 * i);
        if seeded.spanner().contains(NodeId(u), NodeId(v)) {
            seeded.delete(u, v).expect("delete");
        } else {
            seeded.insert(u, v).expect("insert");
        }
    }
    assert_eq!(seeded.wal_len(), 10);
    let old_state = state_of(&seeded);
    drop(seeded);

    // Reference "new" state: one fully successful checkpoint.
    let done = scratch_dir("crash-done");
    copy_dir(&base, &done);
    let mut finished = DynamicStore::open(&done).expect("open reference");
    finished.checkpoint().expect("reference checkpoint");
    assert_eq!(finished.generation(), 2);
    let new_state = state_of(&finished);
    assert_eq!(
        old_state.0, new_state.0,
        "a checkpoint must not change the graph"
    );
    drop(finished);
    fs::remove_dir_all(&done).ok();

    // The sweep: budgets 0, 1, 2, ... until the save runs to completion.
    let mut completed_at = None;
    for budget in 0..200usize {
        let dir = scratch_dir("crash-sweep");
        copy_dir(&base, &dir);
        let mut store = DynamicStore::open(&dir).expect("open sweep copy");
        match store.checkpoint_with_budget(Some(budget)) {
            Ok(_) => {
                assert_eq!(store.generation(), 2);
                assert_eq!(store.wal_len(), 0);
                completed_at = Some(budget);
            }
            Err(StoreError::Injected { index, .. }) => {
                assert!(index <= budget, "injection fired late");
            }
            Err(other) => panic!("budget {budget}: non-injected failure {other}"),
        }
        drop(store);

        // Recovery: the directory must open cleanly to old or new.
        let recovered = DynamicStore::open(&dir).expect("crashed dir must reopen");
        let state = state_of(&recovered);
        assert_eq!(state.0, old_state.0, "budget {budget}: graph diverged");
        let is_old = state.1 == old_state.1 && recovered.generation() == 1;
        let is_new = state.1 == new_state.1 && recovered.generation() == 2;
        assert!(
            is_old || is_new,
            "budget {budget}: recovered spanner is neither the old nor the new state \
             (generation {})",
            recovered.generation()
        );
        assert_verified(&recovered);
        drop(recovered);
        fs::remove_dir_all(&dir).ok();

        if completed_at.is_some() {
            break;
        }
    }
    let total = completed_at.expect("checkpoint never completed within the sweep");
    // The save is 7 core ops (mkdir + 3×(write, rename)) plus cleanup of
    // the old generation; the sweep must actually have exercised them.
    assert!(total >= 7, "suspiciously short op sequence: {total}");
    fs::remove_dir_all(&base).ok();
}

#[test]
fn commit_point_is_the_manifest_rename() {
    // Pin *where* the old/new transition happens: with the op sequence
    // mkdir, write, rename, write, rename, write, rename(MANIFEST), the
    // first budget that recovers to generation 2 is exactly 7 — nothing
    // before the manifest rename publishes, everything after it does.
    let base = scratch_dir("crash-commit");
    let csr = generators::grid_csr(8, 8);
    let initial: Vec<(u32, u32)> = csr.forward_edges().map(|(_, a, b)| (a.0, b.0)).collect();
    let meta = SnapshotMeta {
        k: 2,
        seed: 5,
        routing: false,
    };
    let mut store = DynamicStore::create(&base, &csr, &initial, meta).expect("create");
    store.insert(0, 63).expect("insert");
    drop(store);

    let mut first_new = None;
    for budget in 0..64usize {
        let dir = scratch_dir("crash-commit-sweep");
        copy_dir(&base, &dir);
        let mut s = DynamicStore::open(&dir).expect("open");
        let done = s.checkpoint_with_budget(Some(budget)).is_ok();
        drop(s);
        let generation = DynamicStore::open(&dir).expect("reopen").generation();
        if generation == 2 && first_new.is_none() {
            first_new = Some(budget);
        }
        fs::remove_dir_all(&dir).ok();
        if done {
            break;
        }
    }
    assert_eq!(
        first_new,
        Some(7),
        "the commit point moved — update the op-sequence documentation"
    );
    fs::remove_dir_all(&base).ok();
}
