//! Corruption-injection suite: every tampered file fails **closed**.
//!
//! Attacks are deterministic — byte positions come from the pure
//! [`salted_pick`] hash (seed × class salt), never from ambient
//! randomness — and cover each block class of the format: the manifest
//! (flips, truncations at every byte, version bumps with *valid*
//! checksums), the data file (header flips, body flips across every
//! block, cross-directory transplants, truncation), and the WAL (flips,
//! torn tails, double-written tails). The required outcome everywhere is
//! a typed [`StoreError`] from [`Store::open`] — never a panic, and
//! never a silently wrong graph.

use std::fs;
use std::path::{Path, PathBuf};

use spanner_graph::generators;
use spanner_store::checksum::{checksum, salted_pick};
use spanner_store::manifest::{DATA_SALT, MANIFEST_LEN, MANIFEST_SALT};
use spanner_store::wal::RECORD_LEN;
use spanner_store::{scratch_dir, DynamicStore, SnapshotMeta, Store, StoreError};

/// A saved snapshot with a non-empty WAL, payload large enough to span
/// several 4 KiB blocks.
fn fixture(tag: &str) -> PathBuf {
    let dir = scratch_dir(tag);
    let csr = generators::connected_gnm_csr(600, 2000, 23);
    let spanner: Vec<(u32, u32)> = csr
        .forward_edges()
        .filter(|(e, _, _)| e.0 % 2 == 0)
        .map(|(_, a, b)| (a.0, b.0))
        .collect();
    let meta = SnapshotMeta {
        k: 2,
        seed: 23,
        routing: false,
    };
    let mut store = DynamicStore::create(&dir, &csr, &spanner, meta).expect("create fixture");
    assert!(store.insert(0, 599).expect("insert"));
    assert!(store.delete(0, 599).expect("delete"));
    assert_eq!(store.wal_len(), 2);
    dir
}

/// Opens must fail with a typed error — any variant, but an error.
fn assert_fails_closed(dir: &Path, context: &str) -> StoreError {
    match Store::open(dir) {
        Ok(_) => panic!("{context}: tampered snapshot opened successfully"),
        Err(e) => e,
    }
}

fn flip_byte(path: &Path, at: usize) {
    let mut bytes = fs::read(path).expect("read for tampering");
    bytes[at] ^= 0x5A;
    fs::write(path, bytes).expect("write tampered");
}

#[test]
fn manifest_byte_flips_fail_closed() {
    let dir = fixture("cor-man");
    let path = dir.join("MANIFEST");
    let pristine = fs::read(&path).expect("read manifest");
    assert_eq!(pristine.len(), MANIFEST_LEN);
    for seed in 0..32u64 {
        let at = salted_pick(seed, 0x01, pristine.len());
        flip_byte(&path, at);
        let err = assert_fails_closed(&dir, "manifest flip");
        assert!(
            matches!(
                err,
                StoreError::BadMagic { .. }
                    | StoreError::Checksum { .. }
                    | StoreError::Version { .. }
            ),
            "manifest flip at {at}: unexpected {err}"
        );
        fs::write(&path, &pristine).expect("restore");
    }
    Store::open(&dir).expect("restored manifest loads");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_truncated_mid_write_fails_closed() {
    let dir = fixture("cor-mantrunc");
    let path = dir.join("MANIFEST");
    let pristine = fs::read(&path).expect("read manifest");
    for cut in 0..pristine.len() {
        fs::write(&path, &pristine[..cut]).expect("truncate");
        let err = assert_fails_closed(&dir, "manifest truncation");
        assert!(
            matches!(
                err,
                StoreError::BadMagic { .. } | StoreError::Truncated { what: "manifest" }
            ),
            "cut {cut}: unexpected {err}"
        );
    }
    fs::write(&path, &pristine).expect("restore");
    Store::open(&dir).expect("restored manifest loads");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn data_file_flips_fail_closed_in_every_block() {
    let dir = fixture("cor-data");
    let path = dir.join("blocks-1.dat");
    let pristine = fs::read(&path).expect("read data");
    assert!(pristine.len() > 4104 * 3, "fixture should span 3+ blocks");
    // One deterministic flip inside every 4 KiB block record, plus the
    // header.
    let records = (pristine.len() - 32) / 4104;
    for index in 0..=records {
        let (lo, hi) = if index == 0 {
            (0, 32)
        } else {
            (32 + (index - 1) * 4104, 32 + index * 4104)
        };
        let at = lo + salted_pick(index as u64, 0x02, hi - lo);
        flip_byte(&path, at);
        let err = assert_fails_closed(&dir, "data flip");
        // A header flip may land on the magic bytes (BadMagic) or any
        // other header byte (Checksum); body flips are always Checksum.
        assert!(
            matches!(err, StoreError::Checksum { .. })
                || (index == 0 && matches!(err, StoreError::BadMagic { .. })),
            "flip at {at} (block record {index}): unexpected {err}"
        );
        fs::write(&path, &pristine).expect("restore");
    }
    Store::open(&dir).expect("restored data loads");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn data_file_truncation_fails_closed() {
    let dir = fixture("cor-datatrunc");
    let path = dir.join("blocks-1.dat");
    let pristine = fs::read(&path).expect("read data");
    for seed in 0..16u64 {
        let cut = salted_pick(seed, 0x03, pristine.len());
        fs::write(&path, &pristine[..cut]).expect("truncate");
        let err = assert_fails_closed(&dir, "data truncation");
        assert!(
            matches!(err, StoreError::Truncated { what: "data file" }),
            "cut {cut}: unexpected {err}"
        );
    }
    fs::write(&path, &pristine).expect("restore");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn transplanted_data_file_fails_closed() {
    // Two directories, both at generation 1, different graphs: the
    // foreign data file is internally pristine, but it is not the file
    // the manifest committed to.
    let dir_a = fixture("cor-transa");
    let dir_b = scratch_dir("cor-transb");
    let csr = generators::grid_csr(20, 20);
    let meta = SnapshotMeta {
        k: 2,
        seed: 1,
        routing: false,
    };
    Store::save(&dir_b, &csr, &[], meta).expect("save b");
    fs::copy(dir_b.join("blocks-1.dat"), dir_a.join("blocks-1.dat")).expect("transplant");
    let err = assert_fails_closed(&dir_a, "transplanted data file");
    assert!(
        matches!(
            err,
            StoreError::Checksum { .. } | StoreError::Truncated { what: "data file" }
        ),
        "unexpected {err}"
    );
    fs::remove_dir_all(&dir_a).ok();
    fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn wal_flips_and_double_written_tail_fail_closed() {
    let dir = fixture("cor-wal");
    let path = dir.join("wal-1.log");
    let pristine = fs::read(&path).expect("read wal");
    assert_eq!(pristine.len(), 2 * RECORD_LEN);
    // Deterministic byte flips.
    for seed in 0..16u64 {
        let at = salted_pick(seed, 0x04, pristine.len());
        flip_byte(&path, at);
        let err = assert_fails_closed(&dir, "wal flip");
        assert!(matches!(err, StoreError::Wal { .. }), "flip {at}: {err}");
        fs::write(&path, &pristine).expect("restore");
    }
    // Double-written tail: the last record appended twice (a retried
    // write). The duplicate carries a checksum for index 1, lands at
    // index 2, and must poison the log.
    let mut doubled = pristine.clone();
    doubled.extend_from_slice(&pristine[RECORD_LEN..]);
    fs::write(&path, &doubled).expect("double tail");
    let err = assert_fails_closed(&dir, "double-written tail");
    assert!(
        matches!(&err, StoreError::Wal { detail } if detail.starts_with("record 2")),
        "unexpected {err}"
    );
    // Torn tail: a partial final record.
    fs::write(&path, &pristine[..pristine.len() - 5]).expect("tear tail");
    let err = assert_fails_closed(&dir, "torn tail");
    assert!(
        matches!(&err, StoreError::Wal { detail } if detail.contains("torn tail")),
        "unexpected {err}"
    );
    fs::write(&path, &pristine).expect("restore");
    let state = Store::open(&dir).expect("restored wal loads");
    assert_eq!(state.edits.len(), 2);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_wal_after_commit_fails_closed() {
    let dir = fixture("cor-nowal");
    fs::remove_file(dir.join("wal-1.log")).expect("remove wal");
    let err = assert_fails_closed(&dir, "missing wal");
    assert!(matches!(err, StoreError::Io { op: "read", .. }), "{err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_bumps_with_valid_checksums_are_version_errors() {
    let dir = fixture("cor-version");
    // Manifest: claim version 9, recompute the self-checksum so only the
    // version check can object.
    let path = dir.join("MANIFEST");
    let pristine = fs::read(&path).expect("read manifest");
    let mut bumped = pristine.clone();
    bumped[8..12].copy_from_slice(&9u32.to_le_bytes());
    let sum = checksum(MANIFEST_SALT, &bumped[..MANIFEST_LEN - 8]);
    bumped[MANIFEST_LEN - 8..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &bumped).expect("bump manifest");
    let err = assert_fails_closed(&dir, "manifest version bump");
    assert!(
        matches!(
            err,
            StoreError::Version {
                what: "manifest",
                found: 9,
                ..
            }
        ),
        "unexpected {err}"
    );
    fs::write(&path, &pristine).expect("restore");

    // Data file: bump its header version, fix the header checksum, and
    // fix the manifest's whole-file checksum — three consistent lies,
    // still rejected, and rejected *as a version error*.
    let data_path = dir.join("blocks-1.dat");
    let mut data = fs::read(&data_path).expect("read data");
    data[8..12].copy_from_slice(&9u32.to_le_bytes());
    let headsum = checksum(spanner_store::blocks::HEADER_SALT ^ 1, &data[..24]);
    data[24..32].copy_from_slice(&headsum.to_le_bytes());
    fs::write(&data_path, &data).expect("bump data");
    let mut manifest = pristine.clone();
    let data_sum = checksum(DATA_SALT ^ 1, &data);
    manifest[28..36].copy_from_slice(&data_sum.to_le_bytes());
    let sum = checksum(MANIFEST_SALT, &manifest[..MANIFEST_LEN - 8]);
    manifest[MANIFEST_LEN - 8..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &manifest).expect("rewrite manifest");
    let err = assert_fails_closed(&dir, "data version bump");
    assert!(
        matches!(
            err,
            StoreError::Version {
                what: "blocks",
                found: 9,
                ..
            }
        ),
        "unexpected {err}"
    );
    fs::remove_dir_all(&dir).ok();
}
