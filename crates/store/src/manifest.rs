//! The manifest codec: the tiny root of every snapshot directory.
//!
//! `MANIFEST` names the live generation and pins the data file's exact
//! length and checksum. Layout (little-endian):
//!
//! ```text
//! magic        8 bytes   "USSMAN1\n"
//! version      u32       FORMAT_VERSION
//! generation   u64       the live generation g (blocks-g.dat, wal-g.log)
//! data_len     u64       byte length of blocks-g.dat
//! data_sum     u64       checksum(DATA_SALT ^ g, entire blocks-g.dat)
//! selfsum      u64       checksum(MANIFEST_SALT, bytes above)
//! ```
//!
//! The manifest is replaced atomically (write temp + rename), so a reader
//! sees either the previous 44-byte manifest or the new one; a torn or
//! edited manifest fails the trailing self-checksum.

use crate::checksum::checksum;
use crate::format::{put_u32, put_u64, Reader};
use crate::{StoreError, FORMAT_VERSION};

/// Magic bytes opening the manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"USSMAN1\n";

/// Exact encoded size in bytes.
pub const MANIFEST_LEN: usize = 44;

/// Salt of the manifest's trailing self-checksum. Public so the
/// corruption/golden tests can craft structurally valid files that are
/// wrong in exactly one way (e.g. a version bump with a correct
/// checksum) and pin the *typed* rejection.
pub const MANIFEST_SALT: u64 = 0x3A41_F157_0000_0003;
/// Salt for the whole-data-file checksum recorded in the manifest
/// (xor-folded with the generation). Public for the same reason as
/// [`MANIFEST_SALT`].
pub const DATA_SALT: u64 = 0xDA7A_F11E_0000_0004;

/// Decoded manifest contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// The live snapshot generation.
    pub generation: u64,
    /// Byte length of the live data file.
    pub data_len: u64,
    /// Salted checksum of the entire live data file.
    pub data_sum: u64,
}

impl Manifest {
    /// Encodes the manifest to its exact 44-byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_LEN);
        out.extend_from_slice(&MANIFEST_MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.generation);
        put_u64(&mut out, self.data_len);
        put_u64(&mut out, self.data_sum);
        let selfsum = checksum(MANIFEST_SALT, &out);
        put_u64(&mut out, selfsum);
        debug_assert_eq!(out.len(), MANIFEST_LEN);
        out
    }

    /// Decodes and verifies a manifest.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`] (wrong leading bytes),
    /// [`StoreError::Truncated`] (wrong length — a torn write),
    /// [`StoreError::Checksum`] (edited bytes), or
    /// [`StoreError::Version`] (valid bytes from a different format).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 8 || bytes[..8] != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic { what: "manifest" });
        }
        if bytes.len() != MANIFEST_LEN {
            return Err(StoreError::Truncated { what: "manifest" });
        }
        let mut r = Reader::new(bytes, "manifest");
        r.take(8)?;
        let version = r.u32()?;
        let generation = r.u64()?;
        let data_len = r.u64()?;
        let data_sum = r.u64()?;
        let selfsum = r.u64()?;
        if checksum(MANIFEST_SALT, &bytes[..MANIFEST_LEN - 8]) != selfsum {
            return Err(StoreError::Checksum {
                what: "manifest".to_string(),
            });
        }
        if version != FORMAT_VERSION {
            return Err(StoreError::Version {
                what: "manifest",
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        r.finish()?;
        Ok(Manifest {
            generation,
            data_len,
            data_sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Manifest {
            generation: 7,
            data_len: 123_456,
            data_sum: 0xDEAD_BEEF,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let bytes = Manifest {
            generation: 3,
            data_len: 99,
            data_sum: 1,
        }
        .encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Manifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn truncations_fail_closed() {
        let bytes = Manifest {
            generation: 1,
            data_len: 5,
            data_sum: 6,
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = Manifest::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::BadMagic { .. } | StoreError::Truncated { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn version_bump_with_valid_checksum_is_version_error() {
        let mut bytes = Manifest {
            generation: 1,
            data_len: 5,
            data_sum: 6,
        }
        .encode();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        let sum = checksum(MANIFEST_SALT, &bytes[..MANIFEST_LEN - 8]);
        let at = MANIFEST_LEN - 8;
        bytes[at..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Manifest::decode(&bytes).unwrap_err(),
            StoreError::Version {
                what: "manifest",
                found: 9,
                supported: FORMAT_VERSION
            }
        );
    }
}
