//! Snapshot persistence and log-structured incremental updates.
//!
//! Every experiment and every `spanner-serve` session used to rebuild its
//! spanner from scratch (70s and 85M simulated messages for the skeleton
//! construction at n = 2²⁰). This crate is the persistence layer that
//! makes built state a first-class artifact, modeled on the LSM
//! manifest/WAL/sstable split and written against std only — no serde,
//! no external crates:
//!
//! * [`snapshot`] — a versioned on-disk format for
//!   [`CsrAdjacency`](spanner_graph::CsrAdjacency) graphs plus built
//!   spanners: a `MANIFEST` (tiny, self-checksummed,
//!   names the live generation) pointing at a generation-numbered data
//!   file of fixed-size checksummed [`blocks`]. Saves follow the
//!   write-then-rename discipline, so a crashed save leaves the previous
//!   snapshot loadable — never a torn one.
//! * [`wal`] — a write-ahead log of edge insertions/deletions buffered
//!   memtable-style next to the snapshot, each record checksummed with a
//!   salt derived from the generation *and* the record index (a
//!   double-written or torn tail fails closed).
//! * [`dynamic`] — [`DynamicStore`]: the log-structured update path.
//!   Edits append to the WAL and apply incrementally to an in-memory
//!   [`DynamicSpanner`](spanner_baselines::streaming::DynamicSpanner);
//!   periodic [`DynamicStore::checkpoint`] compaction
//!   re-clusters only the dirty region (through the
//!   `baswana_sen::recluster_region` hook), folds the log into a new
//!   snapshot generation, and starts a fresh WAL.
//!
//! Every decode path re-validates what it reads — magic, version,
//! per-block and whole-file checksums, CSR structural invariants,
//! spanner-edges-are-graph-edges — and surfaces a typed [`StoreError`];
//! a corrupted file can produce an error, never a silently wrong graph.
//! The differential test suite (`tests/incremental_parity.rs`) pins every
//! incremental state against a from-scratch rebuild via
//! `verify_stretch_exact`.
//!
//! # Example
//!
//! ```
//! use spanner_graph::CsrAdjacency;
//! use spanner_store::{scratch_dir, SnapshotMeta, Store};
//!
//! let dir = scratch_dir("doc-example");
//! let csr = CsrAdjacency::from_edges(4, [(0u32, 1), (1, 2), (2, 3)]);
//! let meta = SnapshotMeta { k: 2, seed: 1, routing: false };
//! Store::save(&dir, &csr, &[(0, 1), (1, 2), (2, 3)], meta).unwrap();
//! let loaded = Store::open(&dir).unwrap();
//! assert_eq!(loaded.csr, csr);
//! assert_eq!(loaded.generation, 1);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod blocks;
pub mod checksum;
pub mod dynamic;
pub mod manifest;
pub mod snapshot;
pub mod wal;

mod format;

pub use dynamic::DynamicStore;
pub use snapshot::{SnapshotMeta, SnapshotState, Store};
pub use wal::Edit;

/// On-disk format version. Any layout change must bump this; decode
/// rejects other versions with [`StoreError::Version`] (pinned by the
/// golden-format tests).
pub const FORMAT_VERSION: u32 = 1;

/// Typed failure of any store operation. Every decode path fails closed
/// through one of these variants; no store API panics on bad bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The operation (`"read"`, `"write"`, `"rename"`, ...).
        op: &'static str,
        /// The path it targeted.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
    /// A file does not start with its expected magic bytes.
    BadMagic {
        /// Which file class (`"manifest"` or `"blocks"`).
        what: &'static str,
    },
    /// A file was written by a different format version.
    Version {
        /// Which file class carried the version.
        what: &'static str,
        /// The version found on disk.
        found: u32,
        /// The only version this build reads ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// A checksum did not match — flipped bytes, a swapped block, or a
    /// data file that does not belong to the manifest.
    Checksum {
        /// What failed to verify (file class, and block index if any).
        what: String,
    },
    /// A file ended before its declared content did.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// The write-ahead log is corrupt (torn, duplicated, or edited tail).
    Wal {
        /// What exactly failed, with the record index.
        detail: String,
    },
    /// Bytes decoded cleanly but describe an invalid structure (CSR
    /// invariant violation, spanner edge missing from the graph, ...).
    Corrupt {
        /// The violated invariant.
        detail: String,
    },
    /// A deterministic fault-injection budget ran out mid-save (crash
    /// simulation; see [`snapshot::Store::save_with_budget`]).
    Injected {
        /// The filesystem operation that was suppressed.
        op: &'static str,
        /// Its index in the save's operation sequence.
        index: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "{op} {}: {message}", path.display())
            }
            StoreError::BadMagic { what } => write!(f, "{what}: bad magic bytes"),
            StoreError::Version {
                what,
                found,
                supported,
            } => write!(
                f,
                "{what}: format version {found} unsupported (this build reads v{supported})"
            ),
            StoreError::Checksum { what } => write!(f, "checksum mismatch in {what}"),
            StoreError::Truncated { what } => write!(f, "{what}: truncated"),
            StoreError::Wal { detail } => write!(f, "WAL corrupt: {detail}"),
            StoreError::Corrupt { detail } => write!(f, "invalid snapshot content: {detail}"),
            StoreError::Injected { op, index } => {
                write!(f, "injected crash before {op} (op #{index})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &Path, e: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    }
}

/// A fresh scratch directory under the system temp dir, unique per
/// process *and* per call — safe under any `RUST_TEST_THREADS` setting.
/// The caller owns cleanup (`std::fs::remove_dir_all`); the directory is
/// **not** created.
pub fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let serial = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "spanner-store-{tag}-{}-{serial}",
        std::process::id()
    ))
}
