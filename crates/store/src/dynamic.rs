//! The log-structured update path: a durable [`DynamicSpanner`].
//!
//! [`DynamicStore`] pairs the in-memory incremental spanner with a
//! snapshot directory. Edits go through [`DynamicStore::insert`] /
//! [`DynamicStore::delete`]: each is appended to the live generation's
//! WAL *before* being applied in memory (write-ahead), so a process that
//! dies at any point reopens to exactly the edits it had acknowledged.
//! [`DynamicStore::checkpoint`] is the compaction step: it re-clusters
//! the dirty region through
//! [`baswana_sen::recluster_region`](spanner_baselines::baswana_sen::recluster_region),
//! folds graph + spanner into a new snapshot generation, and starts an
//! empty WAL — the memtable-flush of this LSM.
//!
//! Amortization shape: an edit is O(WAL append) plus the bounded-radius
//! cover repair inside [`DynamicSpanner`]; a checkpoint is O(size) for
//! the snapshot write plus a rebuild of only the region the edits since
//! the last checkpoint touched. Reopening is O(size + WAL length) —
//! no construction algorithm runs.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use spanner_baselines::baswana_sen::{recluster_region, BaswanaSenParams};
use spanner_baselines::streaming::{CompactStats, DynamicSpanner};
use spanner_graph::{CsrAdjacency, NodeId};

use crate::snapshot::{SnapshotMeta, Store};
use crate::wal::{encode_record, Edit};
use crate::StoreError;

/// A spanner kept consistent with a snapshot directory: edits are
/// write-ahead logged, applied incrementally, and periodically compacted
/// into a fresh snapshot generation.
#[derive(Debug)]
pub struct DynamicStore {
    dir: PathBuf,
    spanner: DynamicSpanner,
    meta: SnapshotMeta,
    generation: u64,
    wal_len: u64,
}

impl DynamicStore {
    /// Creates the snapshot directory from a built `(graph, spanner)`
    /// pair and opens it for updates.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the save, or [`StoreError::Corrupt`] if
    /// the pair fails [`DynamicSpanner::from_state`] validation.
    pub fn create(
        dir: &Path,
        csr: &CsrAdjacency,
        spanner: &[(u32, u32)],
        meta: SnapshotMeta,
    ) -> Result<Self, StoreError> {
        Store::save(dir, csr, spanner, meta)?;
        Self::open(dir)
    }

    /// Opens a snapshot directory for updates: loads the snapshot,
    /// rebuilds the in-memory incremental state, and replays the WAL.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]. A WAL edit that does not apply (inserting an
    /// edge that already exists, deleting one that does not) is
    /// [`StoreError::Wal`] — the log and the snapshot disagree.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let state = Store::open(dir)?;
        let n = state.csr.node_count();
        let graph = state.csr.forward_edges().map(|(_, a, b)| (a.0, b.0));
        let spanner =
            DynamicSpanner::from_state(n, state.meta.k, graph, state.spanner.iter().copied())
                .map_err(|detail| StoreError::Corrupt { detail })?;
        let mut store = DynamicStore {
            dir: dir.to_path_buf(),
            spanner,
            meta: state.meta,
            generation: state.generation,
            wal_len: 0,
        };
        for (index, edit) in state.edits.iter().enumerate() {
            let (u, v) = edit.endpoints();
            if v as usize >= n {
                return Err(StoreError::Wal {
                    detail: format!("record {index}: endpoint {v} out of range for n = {n}"),
                });
            }
            let applied = match edit {
                Edit::Insert(..) => store.spanner.insert(NodeId(u), NodeId(v)),
                Edit::Delete(..) => store.spanner.delete(NodeId(u), NodeId(v)),
            };
            if !applied {
                return Err(StoreError::Wal {
                    detail: format!("record {index}: edit {u}-{v} does not apply to the graph"),
                });
            }
            store.wal_len += 1;
        }
        Ok(store)
    }

    /// Inserts the undirected edge `{u, v}`: logged to the WAL, then
    /// applied incrementally. Returns `false` (and logs nothing) when the
    /// edge is already present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the WAL append fails; the in-memory state is
    /// untouched in that case.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or out-of-range endpoint, matching
    /// [`DynamicSpanner::insert`].
    pub fn insert(&mut self, u: u32, v: u32) -> Result<bool, StoreError> {
        if self.spanner.contains(NodeId(u), NodeId(v)) {
            return Ok(false);
        }
        self.log(Edit::Insert(u, v))?;
        let applied = self.spanner.insert(NodeId(u), NodeId(v));
        debug_assert!(applied);
        Ok(true)
    }

    /// Deletes the undirected edge `{u, v}`: logged to the WAL, then
    /// applied incrementally (with cover repair if a spanner edge went
    /// away). Returns `false` (and logs nothing) when the edge is absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the WAL append fails; the in-memory state is
    /// untouched in that case.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or out-of-range endpoint, matching
    /// [`DynamicSpanner::delete`].
    pub fn delete(&mut self, u: u32, v: u32) -> Result<bool, StoreError> {
        if !self.spanner.contains(NodeId(u), NodeId(v)) {
            return Ok(false);
        }
        self.log(Edit::Delete(u, v))?;
        let applied = self.spanner.delete(NodeId(u), NodeId(v));
        debug_assert!(applied);
        Ok(true)
    }

    fn log(&mut self, edit: Edit) -> Result<(), StoreError> {
        let record = encode_record(edit, self.generation, self.wal_len);
        let path = Store::wal_path(&self.dir, self.generation);
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io("append", &path, e))?;
        file.write_all(&record)
            .map_err(|e| StoreError::io("append", &path, e))?;
        self.wal_len += 1;
        Ok(())
    }

    /// Compacts: re-clusters the dirty region with Baswana–Sen (at the
    /// snapshot's own `k` and `seed`), writes graph + repaired spanner as
    /// a new snapshot generation, and resets the WAL. Returns the
    /// compaction statistics.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the save. On error the in-memory spanner
    /// keeps the compacted (still valid) state but the directory keeps
    /// the old generation; the next checkpoint retries the save.
    pub fn checkpoint(&mut self) -> Result<CompactStats, StoreError> {
        self.checkpoint_with_budget(None)
    }

    /// [`DynamicStore::checkpoint`] through the crash simulator of
    /// [`Store::save_with_budget`] — the crash-recovery tests sweep
    /// `budget` over every filesystem operation index.
    ///
    /// # Errors
    ///
    /// As [`DynamicStore::checkpoint`], plus [`StoreError::Injected`].
    pub fn checkpoint_with_budget(
        &mut self,
        budget: Option<usize>,
    ) -> Result<CompactStats, StoreError> {
        let params = BaswanaSenParams::new(self.meta.k).expect("k validated at load");
        let seed = self.meta.seed;
        let stats = self
            .spanner
            .compact(|g, region| recluster_region(g, region, &params, seed));
        let n = self.spanner.node_count();
        let graph: Vec<(u32, u32)> = self
            .spanner
            .graph_edges()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        let csr = CsrAdjacency::from_edges(n, graph);
        let pairs: Vec<(u32, u32)> = self
            .spanner
            .spanner_edges()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        let generation = Store::save_with_budget(&self.dir, &csr, &pairs, self.meta, budget)?;
        self.generation = generation;
        self.wal_len = 0;
        Ok(stats)
    }

    /// The in-memory incremental spanner.
    pub fn spanner(&self) -> &DynamicSpanner {
        &self.spanner
    }

    /// The snapshot's construction metadata.
    pub fn meta(&self) -> SnapshotMeta {
        self.meta
    }

    /// The live snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of WAL records in the live generation.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;
    use spanner_graph::distance::{verify_stretch_exact, StretchBound};
    use spanner_graph::generators;

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            k: 2,
            seed: 7,
            routing: false,
        }
    }

    fn check(store: &DynamicStore) {
        let g = store.spanner().to_graph();
        let s = store.spanner().spanner_edge_set(&g);
        let bound = StretchBound::multiplicative(f64::from(store.spanner().stretch()));
        verify_stretch_exact(&g, &s, bound).expect("stretch bound must hold");
    }

    #[test]
    fn edits_survive_reopen() {
        let dir = scratch_dir("dynreopen");
        let csr = generators::grid_csr(6, 6);
        let spanner: Vec<(u32, u32)> = csr.forward_edges().map(|(_, a, b)| (a.0, b.0)).collect();
        let mut store = DynamicStore::create(&dir, &csr, &spanner, meta()).unwrap();
        assert!(store.insert(0, 35).unwrap());
        assert!(store.delete(0, 1).unwrap());
        assert!(!store.insert(0, 35).unwrap(), "duplicate insert is a no-op");
        assert!(!store.delete(0, 1).unwrap(), "absent delete is a no-op");
        assert_eq!(store.wal_len(), 2);
        check(&store);

        let reopened = DynamicStore::open(&dir).unwrap();
        assert_eq!(reopened.wal_len(), 2);
        assert_eq!(reopened.generation(), 1);
        assert!(reopened.spanner().contains(NodeId(0), NodeId(35)));
        assert!(!reopened.spanner().contains(NodeId(0), NodeId(1)));
        assert_eq!(
            reopened.spanner().spanner_edges().collect::<Vec<_>>(),
            store.spanner().spanner_edges().collect::<Vec<_>>()
        );
        check(&reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_folds_wal_and_bumps_generation() {
        let dir = scratch_dir("dyncheckpoint");
        let csr = generators::connected_gnm_csr(80, 200, 5);
        let spanner: Vec<(u32, u32)> = csr.forward_edges().map(|(_, a, b)| (a.0, b.0)).collect();
        let mut store = DynamicStore::create(&dir, &csr, &spanner, meta()).unwrap();
        for i in 0..20u32 {
            let (u, v) = (i, 40 + i);
            if !store.spanner().contains(NodeId(u), NodeId(v)) {
                store.insert(u, v).unwrap();
            }
        }
        assert!(store.wal_len() > 0);
        store.checkpoint().unwrap();
        assert_eq!(store.generation(), 2);
        assert_eq!(store.wal_len(), 0);
        assert_eq!(store.spanner().dirty_len(), 0);
        check(&store);

        let reopened = DynamicStore::open(&dir).unwrap();
        assert_eq!(reopened.generation(), 2);
        assert_eq!(reopened.wal_len(), 0);
        assert_eq!(
            reopened.spanner().graph_edges().collect::<Vec<_>>(),
            store.spanner().graph_edges().collect::<Vec<_>>()
        );
        assert_eq!(
            reopened.spanner().spanner_edges().collect::<Vec<_>>(),
            store.spanner().spanner_edges().collect::<Vec<_>>()
        );
        check(&reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_wal_fails_closed() {
        let dir = scratch_dir("dynmismatch");
        let csr = generators::grid_csr(3, 3);
        let spanner: Vec<(u32, u32)> = csr.forward_edges().map(|(_, a, b)| (a.0, b.0)).collect();
        let mut store = DynamicStore::create(&dir, &csr, &spanner, meta()).unwrap();
        // Hand-append a WAL record deleting an edge the graph lacks.
        let record = encode_record(Edit::Delete(0, 8), store.generation(), store.wal_len());
        let path = Store::wal_path(&dir, store.generation());
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&record).unwrap();
        drop(file);
        store.wal_len += 1;
        let err = DynamicStore::open(&dir).unwrap_err();
        assert!(
            matches!(&err, StoreError::Wal { detail } if detail.contains("does not apply")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
