//! Salted 64-bit content checksums, splitmix64-based.
//!
//! The same pure-hash discipline as the fault engine in
//! `spanner-netsim::faults`: every protected byte range is hashed under a
//! *salt* naming its role (manifest vs block vs WAL record) xor'd with
//! its position (generation, block index, record index). A block copied
//! to another slot, a WAL tail written twice, or a data file paired with
//! the wrong manifest therefore fails verification even though every
//! individual byte is "valid". Not cryptographic — the adversary is
//! bit-rot and torn writes, not forgery.

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output. The standard constants.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salted checksum of `bytes`: the payload is folded in as little-endian
/// 64-bit words (zero-padded tail) through the splitmix64 mixer, with the
/// length folded in last so trailing zero bytes change the sum.
pub fn checksum(salt: u64, bytes: &[u8]) -> u64 {
    let mut state = salt ^ 0x5370_616E_5374_6F72; // "SpanStor"
    let mut acc = splitmix64(&mut state);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(word);
        acc ^= splitmix64(&mut state);
    }
    state ^= bytes.len() as u64;
    acc ^ splitmix64(&mut state)
}

/// Pure seed-salted index pick in `0..bound`: the corruption-injection
/// tests use this to choose *which* byte to flip / where to truncate, so
/// a failing case reproduces byte-identically from its seed alone.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn salted_pick(seed: u64, salt: u64, bound: usize) -> usize {
    assert!(bound > 0, "salted_pick needs a non-empty range");
    let mut state = seed ^ salt;
    (splitmix64(&mut state) % bound as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_salt_sensitive() {
        let a = checksum(1, b"hello snapshot");
        assert_eq!(a, checksum(1, b"hello snapshot"));
        assert_ne!(a, checksum(2, b"hello snapshot"));
        assert_ne!(a, checksum(1, b"hello snapshoT"));
    }

    #[test]
    fn checksum_distinguishes_trailing_zeros_and_lengths() {
        assert_ne!(checksum(7, b""), checksum(7, b"\0"));
        assert_ne!(checksum(7, b"\0"), checksum(7, b"\0\0"));
        assert_ne!(checksum(7, b"abc"), checksum(7, b"abc\0"));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = vec![0xA5u8; 100];
        let want = checksum(3, &base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum(3, &flipped), want, "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn salted_pick_is_pure_and_in_range() {
        for seed in 0..50u64 {
            let a = salted_pick(seed, 0xABCD, 17);
            assert_eq!(a, salted_pick(seed, 0xABCD, 17));
            assert!(a < 17);
        }
        // Different salts decorrelate the picks.
        let picks_a: Vec<usize> = (0..20).map(|s| salted_pick(s, 1, 1000)).collect();
        let picks_b: Vec<usize> = (0..20).map(|s| salted_pick(s, 2, 1000)).collect();
        assert_ne!(picks_a, picks_b);
    }
}
