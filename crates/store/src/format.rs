//! Little-endian encode/decode primitives shared by every on-disk
//! structure: a growing byte-vector writer and a cursor reader whose
//! every read is bounds-checked into [`StoreError::Truncated`].

use crate::StoreError;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked cursor over a decoded byte slice. `what` names the
/// structure being decoded in the truncation errors.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Reader { bytes, at: 0, what }
    }

    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Truncated { what: self.what })?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bytes consumed so far.
    pub(crate) fn position(&self) -> usize {
        self.at
    }

    /// Fails unless the cursor consumed the slice exactly.
    pub(crate) fn finish(self) -> Result<(), StoreError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt {
                detail: format!(
                    "{}: {} trailing bytes after the declared content",
                    self.what,
                    self.bytes.len() - self.at
                ),
            })
        }
    }
}
