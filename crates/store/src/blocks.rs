//! The data-file codec: a header plus fixed-size checksummed blocks.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     8 bytes   "USSBLK1\n"
//! version   u32       FORMAT_VERSION
//! blocksize u32       BLOCK_SIZE
//! length    u64       payload length in bytes
//! headsum   u64       checksum(HEADER_SALT ^ generation, bytes above)
//! blocks    ⌈length/BLOCK_SIZE⌉ ×:
//!   blocksum  u64     checksum(BLOCK_SALT ^ generation ^ index, chunk)
//!   chunk     BLOCK_SIZE bytes (zero-padded tail in the final block)
//! ```
//!
//! The per-block salt folds in the *generation and the block index*: a
//! block transplanted from another generation or another slot fails its
//! checksum even when its bytes are internally intact. Decoding verifies
//! the magic, version, declared geometry, header checksum, file length,
//! and every block checksum before any payload byte is trusted.

use crate::checksum::checksum;
use crate::format::{put_u32, put_u64, Reader};
use crate::{StoreError, FORMAT_VERSION};

/// Magic bytes opening every data file.
pub const BLOCKS_MAGIC: [u8; 8] = *b"USSBLK1\n";

/// Fixed payload bytes per block.
pub const BLOCK_SIZE: usize = 4096;

/// Salt of the header checksum (xor-folded with the generation). Public
/// so corruption tests can craft valid-checksum files that fail a later,
/// typed check.
pub const HEADER_SALT: u64 = 0xB10C_4EAD_0000_0001;
/// Salt of each block checksum (xor-folded with generation and index).
pub const BLOCK_SALT: u64 = 0xB10C_DA7A_0000_0002;

/// Encodes `payload` into the checksummed block-file representation for
/// the given snapshot generation.
pub fn encode_blocks(payload: &[u8], generation: u64) -> Vec<u8> {
    let blocks = payload.len().div_ceil(BLOCK_SIZE);
    let mut out = Vec::with_capacity(32 + blocks * (8 + BLOCK_SIZE));
    out.extend_from_slice(&BLOCKS_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, BLOCK_SIZE as u32);
    put_u64(&mut out, payload.len() as u64);
    let headsum = checksum(HEADER_SALT ^ generation, &out);
    put_u64(&mut out, headsum);
    let mut chunk = [0u8; BLOCK_SIZE];
    for (index, part) in payload.chunks(BLOCK_SIZE).enumerate() {
        chunk[..part.len()].copy_from_slice(part);
        chunk[part.len()..].fill(0);
        let salt = BLOCK_SALT ^ generation ^ index as u64;
        put_u64(&mut out, checksum(salt, &chunk));
        out.extend_from_slice(&chunk);
    }
    out
}

/// Decodes and fully verifies a block file, returning the payload.
///
/// # Errors
///
/// [`StoreError::BadMagic`] / [`StoreError::Version`] /
/// [`StoreError::Truncated`] / [`StoreError::Checksum`] /
/// [`StoreError::Corrupt`] on the first violated property.
pub fn decode_blocks(bytes: &[u8], generation: u64) -> Result<Vec<u8>, StoreError> {
    let mut r = Reader::new(bytes, "block file header");
    if r.take(8)? != BLOCKS_MAGIC {
        return Err(StoreError::BadMagic { what: "blocks" });
    }
    let version = r.u32()?;
    let block_size = r.u32()?;
    let length = r.u64()?;
    let headsum_at = r.position();
    let headsum = r.u64()?;
    if checksum(HEADER_SALT ^ generation, &bytes[..headsum_at]) != headsum {
        return Err(StoreError::Checksum {
            what: "block file header".to_string(),
        });
    }
    if version != FORMAT_VERSION {
        return Err(StoreError::Version {
            what: "blocks",
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if block_size as usize != BLOCK_SIZE {
        return Err(StoreError::Corrupt {
            detail: format!("block size {block_size} (this build writes {BLOCK_SIZE})"),
        });
    }
    let blocks = (length as usize).div_ceil(BLOCK_SIZE);
    let mut payload = Vec::with_capacity(length as usize);
    for index in 0..blocks {
        let mut br = Reader::new(
            r.take(8 + BLOCK_SIZE).map_err(|_| StoreError::Truncated {
                what: "block file body",
            })?,
            "block",
        );
        let blocksum = br.u64()?;
        let chunk = br.take(BLOCK_SIZE)?;
        let salt = BLOCK_SALT ^ generation ^ index as u64;
        if checksum(salt, chunk) != blocksum {
            return Err(StoreError::Checksum {
                what: format!("block {index}"),
            });
        }
        let want = (length as usize - payload.len()).min(BLOCK_SIZE);
        payload.extend_from_slice(&chunk[..want]);
        // Padding past the payload must be zero (a flipped pad byte is
        // caught by the block checksum already; this guards the encoder).
        debug_assert!(chunk[want..].iter().all(|&b| b == 0));
    }
    r.finish()?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_sizes() {
        for len in [
            0usize,
            1,
            BLOCK_SIZE - 1,
            BLOCK_SIZE,
            BLOCK_SIZE + 1,
            3 * BLOCK_SIZE + 17,
        ] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let file = encode_blocks(&payload, 5);
            assert_eq!(decode_blocks(&file, 5).unwrap(), payload, "len {len}");
        }
    }

    #[test]
    fn generation_mismatch_fails_closed() {
        let file = encode_blocks(b"payload", 1);
        assert!(matches!(
            decode_blocks(&file, 2),
            Err(StoreError::Checksum { .. })
        ));
    }

    #[test]
    fn swapped_blocks_fail_closed() {
        let payload: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| i as u8).collect();
        let mut file = encode_blocks(&payload, 1);
        let header = 32;
        let rec = 8 + BLOCK_SIZE;
        let (a, b) = (header, header + rec);
        let first: Vec<u8> = file[a..a + rec].to_vec();
        let second: Vec<u8> = file[b..b + rec].to_vec();
        file[a..a + rec].copy_from_slice(&second);
        file[b..b + rec].copy_from_slice(&first);
        assert!(matches!(
            decode_blocks(&file, 1),
            Err(StoreError::Checksum { what }) if what == "block 0"
        ));
    }

    #[test]
    fn version_bump_is_rejected_after_checksum_passes() {
        // Craft a file claiming version 2 with a *valid* header checksum,
        // so the typed rejection is the version check, not the checksum.
        let mut file = encode_blocks(b"x", 1);
        file[8..12].copy_from_slice(&2u32.to_le_bytes());
        let sum = checksum(HEADER_SALT ^ 1, &file[..24]);
        file[24..32].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_blocks(&file, 1).unwrap_err(),
            StoreError::Version {
                what: "blocks",
                found: 2,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn truncation_fails_closed() {
        let file = encode_blocks(&vec![9u8; BLOCK_SIZE + 5], 1);
        for cut in [0, 7, 31, 40, file.len() - 1] {
            assert!(decode_blocks(&file[..cut], 1).is_err(), "cut {cut}");
        }
    }
}
