//! Snapshot directories: save/open of a CSR graph + built spanner.
//!
//! A snapshot is a directory:
//!
//! ```text
//! MANIFEST          44 bytes, self-checksummed, names generation g
//! blocks-g.dat      checksummed block file (see [`crate::blocks`])
//! wal-g.log         edit log of generation g (see [`crate::wal`])
//! ```
//!
//! The payload inside the block file (little-endian):
//!
//! ```text
//! n             u64          node count
//! half          u64          half-edge count (CSR targets length)
//! offsets       (n+1) × u32  CSR offsets
//! targets       half × u32   CSR targets
//! spanner_len   u64          number of spanner edges
//! spanner       len × (u32, u32)  canonical (min, max) pairs, ascending
//! k             u32          clustering parameter of the build
//! seed          u64          seed of the build
//! flags         u32          bit 0: routing scheme requested
//! ```
//!
//! Saves follow write-then-rename for every file and only then replace
//! `MANIFEST` (also by rename), so at every intermediate crash point the
//! directory still opens to the previous snapshot; the crash-recovery
//! test drives [`Store::save_with_budget`] through every operation index
//! to prove it. Loads re-validate everything: checksums at three layers
//! (manifest, whole data file, per block), then the CSR structural
//! invariants via
//! [`CsrAdjacency::try_from_parts`](spanner_graph::CsrAdjacency::try_from_parts),
//! then that every spanner edge is a graph edge.

use std::fs;
use std::path::{Path, PathBuf};

use spanner_graph::{CsrAdjacency, NodeId};

use crate::blocks::{decode_blocks, encode_blocks};
use crate::checksum::checksum;
use crate::format::{put_u32, put_u64, Reader};
use crate::manifest::{Manifest, DATA_SALT};
use crate::wal::{decode_wal, Edit};
use crate::StoreError;

/// Construction metadata carried inside a snapshot, so a loader (e.g.
/// `spanner-serve`) rebuilds exactly the artifact that was saved without
/// the caller restating parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Clustering parameter k (stretch 2k−1).
    pub k: u32,
    /// Seed of the randomized construction.
    pub seed: u64,
    /// Whether a routing scheme should be rebuilt on load.
    pub routing: bool,
}

/// Everything a snapshot directory decodes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotState {
    /// The persisted graph, structurally re-validated.
    pub csr: CsrAdjacency,
    /// The persisted spanner edges, canonical ascending pairs, each
    /// verified to be a graph edge.
    pub spanner: Vec<(u32, u32)>,
    /// Construction metadata.
    pub meta: SnapshotMeta,
    /// The live generation.
    pub generation: u64,
    /// WAL edits of this generation not yet folded into the block file
    /// (empty right after a save or checkpoint).
    pub edits: Vec<Edit>,
}

/// Filesystem layer counting mutating operations, with an optional
/// injection budget: operation number `budget` (0-based) and everything
/// after it fail with [`StoreError::Injected`] — the crash simulator.
/// Reads are not counted (they cannot tear state).
pub(crate) struct Fs {
    budget: Option<usize>,
    ops: usize,
}

impl Fs {
    pub(crate) fn new(budget: Option<usize>) -> Self {
        Fs { budget, ops: 0 }
    }

    /// Total mutating operations performed (used by the crash tests to
    /// size their budget sweep).
    pub(crate) fn ops(&self) -> usize {
        self.ops
    }

    fn step(&mut self, op: &'static str) -> Result<(), StoreError> {
        if let Some(b) = self.budget {
            if self.ops >= b {
                return Err(StoreError::Injected {
                    op,
                    index: self.ops,
                });
            }
        }
        self.ops += 1;
        Ok(())
    }

    fn create_dir_all(&mut self, dir: &Path) -> Result<(), StoreError> {
        self.step("create_dir")?;
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir, e))
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        self.step("write")?;
        fs::write(path, bytes).map_err(|e| StoreError::io("write", path, e))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), StoreError> {
        self.step("rename")?;
        fs::rename(from, to).map_err(|e| StoreError::io("rename", from, e))
    }

    /// Best-effort removal: injection still fires (it is an op), but an
    /// OS-level failure to unlink a stale file is not an error — the
    /// commit has already happened when cleanup runs.
    fn remove_best_effort(&mut self, path: &Path) -> Result<(), StoreError> {
        self.step("remove")?;
        let _ = fs::remove_file(path);
        Ok(())
    }
}

/// The snapshot store: free functions over a snapshot directory.
#[derive(Debug, Clone, Copy)]
pub struct Store;

impl Store {
    /// Saves `(csr, spanner, meta)` as a new generation of `dir`
    /// (creating the directory for generation 1), returns the generation
    /// written. Atomic in the write-then-rename sense: a reader — or a
    /// crash — at any point sees the previous snapshot or the new one.
    /// Stale generations are unlinked after the commit.
    ///
    /// `spanner` pairs may come in any order or orientation; they are
    /// normalized and sorted before encoding (the on-disk form is
    /// canonical, which is what the golden-byte test pins).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// if a spanner pair is not an edge of `csr`.
    pub fn save(
        dir: &Path,
        csr: &CsrAdjacency,
        spanner: &[(u32, u32)],
        meta: SnapshotMeta,
    ) -> Result<u64, StoreError> {
        Self::save_with_budget(dir, csr, spanner, meta, None)
    }

    /// [`Store::save`] through the crash simulator: filesystem operation
    /// number `budget` (0-based) and everything after it fail with
    /// [`StoreError::Injected`], leaving whatever earlier operations
    /// wrote. `budget = None` disables injection. Returns
    /// `(generation, total_ops)` so the crash sweep knows when the save
    /// ran to completion.
    ///
    /// # Errors
    ///
    /// As [`Store::save`], plus [`StoreError::Injected`].
    pub fn save_with_budget(
        dir: &Path,
        csr: &CsrAdjacency,
        spanner: &[(u32, u32)],
        meta: SnapshotMeta,
        budget: Option<usize>,
    ) -> Result<u64, StoreError> {
        let mut io = Fs::new(budget);
        let generation = Self::save_inner(&mut io, dir, csr, spanner, meta)?;
        Ok(generation)
    }

    /// As [`Store::save_with_budget`] but also reports the total count of
    /// mutating filesystem operations a full save performs — the bound of
    /// the crash sweep.
    ///
    /// # Errors
    ///
    /// As [`Store::save_with_budget`]; the op count is reported either way.
    pub fn save_counting_ops(
        dir: &Path,
        csr: &CsrAdjacency,
        spanner: &[(u32, u32)],
        meta: SnapshotMeta,
        budget: Option<usize>,
    ) -> (Result<u64, StoreError>, usize) {
        let mut io = Fs::new(budget);
        let out = Self::save_inner(&mut io, dir, csr, spanner, meta);
        (out, io.ops())
    }

    fn save_inner(
        io: &mut Fs,
        dir: &Path,
        csr: &CsrAdjacency,
        spanner: &[(u32, u32)],
        meta: SnapshotMeta,
    ) -> Result<u64, StoreError> {
        let payload = encode_payload(csr, spanner, meta)?;
        io.create_dir_all(dir)?;
        let generation = next_generation(dir);
        let data = encode_blocks(&payload, generation);
        let data_sum = checksum(DATA_SALT ^ generation, &data);

        let blocks_path = dir.join(format!("blocks-{generation}.dat"));
        let blocks_tmp = dir.join(format!("blocks-{generation}.dat.tmp"));
        io.write(&blocks_tmp, &data)?;
        io.rename(&blocks_tmp, &blocks_path)?;

        let wal_path = dir.join(format!("wal-{generation}.log"));
        let wal_tmp = dir.join(format!("wal-{generation}.log.tmp"));
        io.write(&wal_tmp, &[])?;
        io.rename(&wal_tmp, &wal_path)?;

        let manifest = Manifest {
            generation,
            data_len: data.len() as u64,
            data_sum,
        };
        let manifest_path = dir.join("MANIFEST");
        let manifest_tmp = dir.join("MANIFEST.tmp");
        io.write(&manifest_tmp, &manifest.encode())?;
        // The commit point: everything before this rename leaves the old
        // snapshot live, everything after leaves the new one.
        io.rename(&manifest_tmp, &manifest_path)?;

        for stale in stale_files(dir, generation) {
            io.remove_best_effort(&stale)?;
        }
        Ok(generation)
    }

    /// Opens and fully verifies the live snapshot of `dir`.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; never panics and never returns a structurally
    /// invalid graph.
    pub fn open(dir: &Path) -> Result<SnapshotState, StoreError> {
        let manifest_path = dir.join("MANIFEST");
        let mbytes =
            fs::read(&manifest_path).map_err(|e| StoreError::io("read", &manifest_path, e))?;
        let manifest = Manifest::decode(&mbytes)?;
        let generation = manifest.generation;

        let blocks_path = dir.join(format!("blocks-{generation}.dat"));
        let data = fs::read(&blocks_path).map_err(|e| StoreError::io("read", &blocks_path, e))?;
        if data.len() as u64 != manifest.data_len {
            return Err(StoreError::Truncated { what: "data file" });
        }
        if checksum(DATA_SALT ^ generation, &data) != manifest.data_sum {
            return Err(StoreError::Checksum {
                what: "data file".to_string(),
            });
        }
        let payload = decode_blocks(&data, generation)?;
        let (csr, spanner, meta) = decode_payload(&payload)?;

        let wal_path = dir.join(format!("wal-{generation}.log"));
        let wal_bytes = fs::read(&wal_path).map_err(|e| StoreError::io("read", &wal_path, e))?;
        let edits = decode_wal(&wal_bytes, generation)?;

        Ok(SnapshotState {
            csr,
            spanner,
            meta,
            generation,
            edits,
        })
    }

    /// The WAL path of a generation — where [`crate::DynamicStore`]
    /// appends.
    pub(crate) fn wal_path(dir: &Path, generation: u64) -> PathBuf {
        dir.join(format!("wal-{generation}.log"))
    }
}

/// The next generation to write: one past the live manifest's (or, when
/// the manifest is missing/corrupt, one past the largest generation any
/// block file on disk names — a save can therefore always overwrite a
/// damaged directory without colliding with its remnants).
fn next_generation(dir: &Path) -> u64 {
    let mut max = fs::read(dir.join("MANIFEST"))
        .ok()
        .and_then(|b| Manifest::decode(&b).ok())
        .map_or(0, |m| m.generation);
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(g) = parse_generation(&entry.file_name().to_string_lossy()) {
                max = max.max(g);
            }
        }
    }
    max + 1
}

/// Parses `blocks-<g>.dat` / `wal-<g>.log` (and their `.tmp` spill)
/// names.
fn parse_generation(name: &str) -> Option<u64> {
    let rest = name
        .strip_prefix("blocks-")
        .or_else(|| name.strip_prefix("wal-"))?;
    let digits = rest.split('.').next()?;
    digits.parse().ok()
}

/// Every store file in `dir` not belonging to `live` generation or the
/// manifest, sorted for a deterministic cleanup order.
fn stale_files(dir: &Path, live: u64) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            match parse_generation(&name) {
                Some(g) if g != live || name.ends_with(".tmp") => out.push(entry.path()),
                _ => {}
            }
        }
    }
    out.sort();
    out
}

fn encode_payload(
    csr: &CsrAdjacency,
    spanner: &[(u32, u32)],
    meta: SnapshotMeta,
) -> Result<Vec<u8>, StoreError> {
    let (offsets, targets) = csr.parts();
    let mut pairs: Vec<(u32, u32)> = spanner.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    pairs.sort_unstable();
    pairs.dedup();
    for &(u, v) in &pairs {
        let ok = u != v
            && (u as usize) < csr.node_count()
            && csr.neighbors(NodeId(u)).binary_search(&NodeId(v)).is_ok();
        if !ok {
            return Err(StoreError::Corrupt {
                detail: format!("spanner edge {u}-{v} is not a graph edge"),
            });
        }
    }
    let mut out = Vec::with_capacity(40 + 4 * offsets.len() + 4 * targets.len() + 8 * pairs.len());
    put_u64(&mut out, csr.node_count() as u64);
    put_u64(&mut out, targets.len() as u64);
    for &o in offsets {
        put_u32(&mut out, o);
    }
    for &t in targets {
        put_u32(&mut out, t.0);
    }
    put_u64(&mut out, pairs.len() as u64);
    for &(u, v) in &pairs {
        put_u32(&mut out, u);
        put_u32(&mut out, v);
    }
    put_u32(&mut out, meta.k);
    put_u64(&mut out, meta.seed);
    put_u32(&mut out, if meta.routing { 1 } else { 0 });
    Ok(out)
}

/// What [`decode_payload`] yields: the CSR, the spanner pairs, and the
/// metadata.
type DecodedPayload = (CsrAdjacency, Vec<(u32, u32)>, SnapshotMeta);

fn decode_payload(bytes: &[u8]) -> Result<DecodedPayload, StoreError> {
    let mut r = Reader::new(bytes, "snapshot payload");
    let n = r.u64()?;
    let half = r.u64()?;
    if n > u32::MAX as u64 || half > u32::MAX as u64 {
        return Err(StoreError::Corrupt {
            detail: format!("declared sizes n = {n}, half-edges = {half} exceed the id space"),
        });
    }
    let (n, half) = (n as usize, half as usize);
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..n + 1 {
        offsets.push(r.u32()?);
    }
    let mut targets = Vec::with_capacity(half);
    for _ in 0..half {
        targets.push(NodeId(r.u32()?));
    }
    let csr = CsrAdjacency::try_from_parts(offsets, targets).map_err(|e| StoreError::Corrupt {
        detail: e.to_string(),
    })?;
    let spanner_len = r.u64()?;
    if spanner_len > csr.edge_count() as u64 {
        return Err(StoreError::Corrupt {
            detail: format!(
                "spanner declares {spanner_len} edges, graph has {}",
                csr.edge_count()
            ),
        });
    }
    let mut spanner = Vec::with_capacity(spanner_len as usize);
    let mut prev: Option<(u32, u32)> = None;
    for _ in 0..spanner_len {
        let u = r.u32()?;
        let v = r.u32()?;
        if u >= v || prev.is_some_and(|p| p >= (u, v)) {
            return Err(StoreError::Corrupt {
                detail: format!("spanner pair {u}-{v} breaks canonical ascending order"),
            });
        }
        if (u as usize) >= csr.node_count()
            || csr.neighbors(NodeId(u)).binary_search(&NodeId(v)).is_err()
        {
            return Err(StoreError::Corrupt {
                detail: format!("spanner edge {u}-{v} is not a graph edge"),
            });
        }
        prev = Some((u, v));
        spanner.push((u, v));
    }
    let k = r.u32()?;
    let seed = r.u64()?;
    let flags = r.u32()?;
    if k == 0 {
        return Err(StoreError::Corrupt {
            detail: "k = 0 in snapshot meta".to_string(),
        });
    }
    if flags & !1 != 0 {
        return Err(StoreError::Corrupt {
            detail: format!("unknown meta flags {flags:#x}"),
        });
    }
    r.finish()?;
    Ok((
        csr,
        spanner,
        SnapshotMeta {
            k,
            seed,
            routing: flags & 1 == 1,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;
    use spanner_graph::generators;

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            k: 2,
            seed: 42,
            routing: false,
        }
    }

    #[test]
    fn save_open_round_trip_is_lossless() {
        let dir = scratch_dir("roundtrip");
        let csr = generators::connected_gnm_csr(200, 700, 9);
        let spanner: Vec<(u32, u32)> = csr
            .forward_edges()
            .filter(|(e, _, _)| e.0 % 3 != 0)
            .map(|(_, a, b)| (a.0, b.0))
            .collect();
        let generation = Store::save(&dir, &csr, &spanner, meta()).unwrap();
        assert_eq!(generation, 1);
        let loaded = Store::open(&dir).unwrap();
        assert_eq!(loaded.csr, csr);
        assert_eq!(loaded.spanner, spanner);
        assert_eq!(loaded.meta, meta());
        assert_eq!(loaded.generation, 1);
        assert!(loaded.edits.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resave_rotates_generations_and_cleans_up() {
        let dir = scratch_dir("rotate");
        let csr1 = generators::connected_gnm_csr(50, 120, 1);
        let csr2 = generators::connected_gnm_csr(60, 150, 2);
        assert_eq!(Store::save(&dir, &csr1, &[], meta()).unwrap(), 1);
        assert_eq!(Store::save(&dir, &csr2, &[], meta()).unwrap(), 2);
        let loaded = Store::open(&dir).unwrap();
        assert_eq!(loaded.csr, csr2);
        assert_eq!(loaded.generation, 2);
        // Generation 1 files are gone.
        assert!(!dir.join("blocks-1.dat").exists());
        assert!(!dir.join("wal-1.log").exists());
        assert!(dir.join("blocks-2.dat").exists());
        assert!(dir.join("wal-2.log").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_rejects_non_graph_spanner_edge() {
        let dir = scratch_dir("badspan");
        let csr = CsrAdjacency::from_edges(4, [(0u32, 1), (1, 2)]);
        let err = Store::save(&dir, &csr, &[(0, 3)], meta()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        // Nothing was created.
        assert!(Store::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_directory_is_typed_io() {
        let dir = scratch_dir("missing");
        let err = Store::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Io { op: "read", .. }), "{err}");
    }

    #[test]
    fn payload_decode_rejects_meta_garbage() {
        let csr = CsrAdjacency::from_edges(3, [(0u32, 1), (1, 2)]);
        let good = encode_payload(&csr, &[(0, 1)], meta()).unwrap();
        // k = 0.
        let mut bad = good.clone();
        let k_at = good.len() - 16;
        bad[k_at..k_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_payload(&bad),
            Err(StoreError::Corrupt { .. })
        ));
        // Unknown flag bit.
        let mut bad = good.clone();
        let flags_at = good.len() - 4;
        bad[flags_at..].copy_from_slice(&4u32.to_le_bytes());
        assert!(matches!(
            decode_payload(&bad),
            Err(StoreError::Corrupt { .. })
        ));
        // Trailing junk.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            decode_payload(&bad),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
