//! The write-ahead log codec: fixed 17-byte edit records.
//!
//! Each snapshot generation `g` owns `wal-g.log`, created empty by the
//! save and appended to by [`DynamicStore`](crate::DynamicStore). Record
//! layout (little-endian):
//!
//! ```text
//! kind   u8    0 = insert, 1 = delete
//! u      u32   smaller endpoint
//! v      u32   larger endpoint
//! sum    u64   checksum(WAL_SALT ^ generation ^ index, bytes above)
//! ```
//!
//! The salt folds in the record *index*, so the classic torn-tail failure
//! modes fail closed: a half-written final record is a length error, and
//! a double-written tail (the same 17 bytes appended twice — a retried
//! write) makes the duplicate verify against the wrong index. Replay is
//! strict: the first bad record poisons the whole log with
//! [`StoreError::Wal`] rather than silently truncating to the valid
//! prefix — an LSM would truncate, but our WAL is the *only* carrier of
//! the edits, so dropping a suffix would silently diverge from the
//! in-memory spanner it is supposed to reconstruct.

use crate::checksum::checksum;
use crate::StoreError;

/// Exact encoded size of one record.
pub const RECORD_LEN: usize = 17;

/// Salt of each WAL record checksum (xor-folded with generation and
/// record index). Public so the corruption tests can place otherwise
/// valid records at the wrong index.
pub const WAL_SALT: u64 = 0x3A17_10C4_0000_0005;

/// One logged edge edit. Endpoints are stored canonically (`u < v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Insert the undirected edge `{u, v}`.
    Insert(u32, u32),
    /// Delete the undirected edge `{u, v}`.
    Delete(u32, u32),
}

impl Edit {
    /// The canonical `(min, max)` endpoint pair.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            Edit::Insert(u, v) | Edit::Delete(u, v) => (u.min(v), u.max(v)),
        }
    }
}

/// Encodes the record at position `index` of generation `generation`.
pub fn encode_record(edit: Edit, generation: u64, index: u64) -> [u8; RECORD_LEN] {
    let (kind, (u, v)) = match edit {
        Edit::Insert(..) => (0u8, edit.endpoints()),
        Edit::Delete(..) => (1u8, edit.endpoints()),
    };
    let mut out = [0u8; RECORD_LEN];
    out[0] = kind;
    out[1..5].copy_from_slice(&u.to_le_bytes());
    out[5..9].copy_from_slice(&v.to_le_bytes());
    let sum = checksum(WAL_SALT ^ generation ^ index, &out[..9]);
    out[9..].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and verifies a whole WAL file for its generation.
///
/// # Errors
///
/// [`StoreError::Wal`] naming the first bad record: torn tail (length not
/// a multiple of [`RECORD_LEN`]), unknown kind byte, non-canonical or
/// degenerate endpoints, or a checksum mismatch (flipped bytes *or* a
/// record at the wrong index, which is how a double-written tail
/// surfaces).
pub fn decode_wal(bytes: &[u8], generation: u64) -> Result<Vec<Edit>, StoreError> {
    if !bytes.len().is_multiple_of(RECORD_LEN) {
        return Err(StoreError::Wal {
            detail: format!(
                "torn tail: {} bytes is not a multiple of the {RECORD_LEN}-byte record",
                bytes.len()
            ),
        });
    }
    let mut edits = Vec::with_capacity(bytes.len() / RECORD_LEN);
    for (index, rec) in bytes.chunks_exact(RECORD_LEN).enumerate() {
        let sum = u64::from_le_bytes(rec[9..].try_into().unwrap());
        if checksum(WAL_SALT ^ generation ^ index as u64, &rec[..9]) != sum {
            return Err(StoreError::Wal {
                detail: format!("record {index}: checksum mismatch (corrupt or misplaced)"),
            });
        }
        let u = u32::from_le_bytes(rec[1..5].try_into().unwrap());
        let v = u32::from_le_bytes(rec[5..9].try_into().unwrap());
        if u >= v {
            return Err(StoreError::Wal {
                detail: format!("record {index}: endpoints {u}-{v} not canonical"),
            });
        }
        let edit = match rec[0] {
            0 => Edit::Insert(u, v),
            1 => Edit::Delete(u, v),
            kind => {
                return Err(StoreError::Wal {
                    detail: format!("record {index}: unknown kind {kind}"),
                })
            }
        };
        edits.push(edit);
    }
    Ok(edits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Edit> {
        vec![
            Edit::Insert(0, 1),
            Edit::Insert(1, 2),
            Edit::Delete(0, 1),
            Edit::Insert(2, 9),
        ]
    }

    fn encode_all(edits: &[Edit], generation: u64) -> Vec<u8> {
        edits
            .iter()
            .enumerate()
            .flat_map(|(i, &e)| encode_record(e, generation, i as u64))
            .collect()
    }

    #[test]
    fn round_trip() {
        let edits = sample();
        let bytes = encode_all(&edits, 3);
        assert_eq!(decode_wal(&bytes, 3).unwrap(), edits);
        assert_eq!(decode_wal(&[], 3).unwrap(), vec![]);
    }

    #[test]
    fn endpoints_normalize() {
        assert_eq!(Edit::Insert(5, 2).endpoints(), (2, 5));
        let rec = encode_record(Edit::Delete(7, 3), 1, 0);
        assert_eq!(decode_wal(&rec, 1).unwrap(), vec![Edit::Delete(3, 7)]);
    }

    #[test]
    fn double_written_tail_fails_closed() {
        let edits = sample();
        let mut bytes = encode_all(&edits, 3);
        let tail: Vec<u8> = bytes[bytes.len() - RECORD_LEN..].to_vec();
        bytes.extend_from_slice(&tail);
        let err = decode_wal(&bytes, 3).unwrap_err();
        assert!(
            matches!(&err, StoreError::Wal { detail } if detail.starts_with("record 4")),
            "{err}"
        );
    }

    #[test]
    fn torn_tail_fails_closed() {
        let bytes = encode_all(&sample(), 3);
        for cut in 1..RECORD_LEN {
            let err = decode_wal(&bytes[..bytes.len() - cut], 3).unwrap_err();
            assert!(matches!(err, StoreError::Wal { .. }), "cut {cut}");
        }
    }

    #[test]
    fn wrong_generation_fails_closed() {
        let bytes = encode_all(&sample(), 3);
        assert!(decode_wal(&bytes, 4).is_err());
    }

    #[test]
    fn unknown_kind_fails_closed() {
        // Flip the kind byte and re-checksum, so the kind check itself
        // is what fires.
        let mut rec = encode_record(Edit::Insert(0, 1), 1, 0);
        rec[0] = 9;
        let sum = checksum(WAL_SALT ^ 1, &rec[..9]);
        rec[9..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_wal(&rec, 1).unwrap_err();
        assert!(
            matches!(&err, StoreError::Wal { detail } if detail.contains("unknown kind 9")),
            "{err}"
        );
    }
}
