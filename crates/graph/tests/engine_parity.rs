//! Engine ↔ reference parity suite (property-based).
//!
//! The distance engine re-implements every traversal it serves — flat
//! single-source BFS, 64-way bit-parallel batches, pruned girth search,
//! attributed multi-source BFS — so each entry point is pinned
//! **byte-identical** to the original `traversal`/`distance`/`girth`
//! reference implementations on random graphs: connected, disconnected,
//! and self-loop-free multigraph edge lists (the builder collapses the
//! duplicates), at every thread count from 1 to 8.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spanner_graph::distance::{
    diameter_exact, eccentricity, verify_stretch_exact_reference, verify_stretch_exact_threads,
    Apsp, StretchBound, UNREACHABLE,
};
use spanner_graph::girth::girth_reference;
use spanner_graph::traversal::{bfs_distances, multi_source_bfs};
use spanner_graph::weighted::{dijkstra, WeightedGraph, W_UNREACHABLE};
use spanner_graph::{generators, DistanceEngine, EdgeSet, Graph, NodeId, Strategy, NO_SOURCE};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A random graph in one of three shapes: connected, a sparse (usually
/// disconnected) G(n, m), or a raw multigraph edge list with duplicate
/// edges (never self-loops; `Graph::from_edges` discards the duplicates).
fn random_graph(n: usize, m: usize, shape: u8, seed: u64) -> Graph {
    let m = m.min(n * (n - 1) / 2); // the generators reject overfull graphs
    match shape % 3 {
        0 => generators::connected_gnm(n, m.max(n - 1), seed),
        1 => generators::erdos_renyi_gnm(n, m / 2, seed),
        _ => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| {
                    let u = rng.gen_range(0..n as u32);
                    let mut v = rng.gen_range(0..n as u32 - 1);
                    if v >= u {
                        v += 1; // self-loop-free by construction
                    }
                    (u, v)
                })
                .flat_map(|e| [e, e]) // duplicate every edge: multigraph input
                .collect();
            Graph::from_edges(n, edges)
        }
    }
}

fn flat(reference: &[Option<u32>]) -> Vec<u32> {
    reference.iter().map(|d| d.unwrap_or(UNREACHABLE)).collect()
}

const STRATEGIES: [Strategy; 3] = [
    Strategy::Auto,
    Strategy::BitParallel,
    Strategy::DirectionOptimizing,
];

/// A structured graph in one of six shapes: the high-diameter families the
/// direction-optimizing path exists for (path, cycle, grid, torus) and the
/// adversarial low-diameter ones (star, caveman).
fn structured_graph(shape: u8, a: usize, b: usize) -> Graph {
    match shape % 6 {
        0 => generators::path(a * b),
        1 => generators::cycle((a * b).max(3)),
        2 => generators::grid(a, b),
        3 => generators::torus(a.max(3), b.max(3)),
        4 => generators::star(a * b),
        _ => generators::caveman(a.clamp(1, 6), b.clamp(2, 12), a, 7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_distances_match_single_source_reference(
        n in 2usize..=60,
        m in 0usize..=180,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, m, shape, seed);
        let sources: Vec<NodeId> = g.nodes().collect();
        let expect: Vec<u32> = sources
            .iter()
            .flat_map(|&s| flat(&bfs_distances(&g, s)))
            .collect();
        for threads in THREAD_COUNTS {
            let eng = DistanceEngine::new(&g).with_threads(threads);
            prop_assert_eq!(&eng.many_distances(&sources), &expect, "threads={}", threads);
            prop_assert_eq!(&eng.distances(sources[n / 2]), &expect[(n / 2) * n..(n / 2 + 1) * n]);
        }
    }

    #[test]
    fn apsp_diameter_girth_match_references(
        n in 2usize..=60,
        m in 0usize..=180,
        shape in 0u8..3,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, m, shape, seed);
        let reference = Apsp::new_reference(&g);
        let ref_diameter = g.nodes().map(|v| eccentricity(&g, v)).max();
        let ref_girth = girth_reference(&g);
        for threads in THREAD_COUNTS {
            let apsp = Apsp::with_threads(&g, threads);
            for u in g.nodes() {
                for v in g.nodes() {
                    prop_assert_eq!(apsp.dist(u, v), reference.dist(u, v), "{}->{}", u, v);
                }
            }
            let eng = DistanceEngine::new(&g).with_threads(threads);
            prop_assert_eq!(eng.diameter(), ref_diameter, "threads={}", threads);
            prop_assert_eq!(diameter_exact(&g), ref_diameter);
            prop_assert_eq!(eng.girth(), ref_girth, "threads={}", threads);
        }
    }

    #[test]
    fn verify_stretch_witness_matches_reference(
        n in 2usize..=50,
        m in 0usize..=150,
        shape in 0u8..3,
        drop in 0usize..6,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, m, shape, seed);
        // A subgraph missing a few edges so both verdicts occur; the bound
        // is tight enough that violations are common.
        let mut span = EdgeSet::new(&g);
        for (e, _, _) in g.edges() {
            if g.edge_count() == 0 || e.index() % 6 >= drop {
                span.insert(e);
            }
        }
        let bound = StretchBound::multiplicative(2.0);
        let expect = verify_stretch_exact_reference(&g, &span, bound);
        for threads in THREAD_COUNTS {
            let got = verify_stretch_exact_threads(&g, &span, bound, threads);
            prop_assert_eq!(got, expect, "threads={}", threads);
        }
    }

    #[test]
    fn strategies_and_picker_match_reference_on_structured_shapes(
        shape in 0u8..6,
        a in 2usize..=12,
        b in 3usize..=12,
    ) {
        let g = structured_graph(shape, a, b);
        let sources: Vec<NodeId> = g.nodes().collect();
        let expect: Vec<u32> = sources
            .iter()
            .flat_map(|&s| flat(&bfs_distances(&g, s)))
            .collect();
        // Both forced strategies AND the Auto picker (whatever it probes
        // to) must be byte-identical to the reference at every thread
        // count — paths/cycles up to n=144 cross the probe's depth bound,
        // so Auto resolves both ways across the case set.
        for strategy in STRATEGIES {
            for threads in THREAD_COUNTS {
                let eng = DistanceEngine::new(&g)
                    .with_threads(threads)
                    .with_strategy(strategy);
                prop_assert_eq!(
                    &eng.many_distances(&sources),
                    &expect,
                    "strategy={} threads={}",
                    strategy,
                    threads
                );
                prop_assert_eq!(eng.diameter(), g.nodes().map(|v| eccentricity(&g, v)).max());
            }
        }
    }

    #[test]
    fn nearest_sources_matches_multi_source_reference(
        n in 1usize..=60,
        m in 0usize..=180,
        shape in 0u8..3,
        nsources in 0usize..8,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n.max(2), m, shape, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
        // Duplicates allowed: both implementations must collapse them.
        let sources: Vec<NodeId> = (0..nsources)
            .map(|_| NodeId(rng.gen_range(0..g.node_count() as u32)))
            .collect();
        let got = DistanceEngine::new(&g).nearest_sources(&sources);
        let want = multi_source_bfs(&g, &sources);
        prop_assert_eq!(&got.dist, &flat(&want.dist));
        let want_src: Vec<u32> = want
            .source
            .iter()
            .map(|s| s.map_or(u32::MAX, |x| x.0))
            .collect();
        prop_assert_eq!(&got.source, &want_src);
    }
}

/// The one-sentinel contract on disconnected and single-node graphs:
/// unreachable hop distances are [`UNREACHABLE`] everywhere (engine, APSP,
/// multi-source), unattributed nodes are [`NO_SOURCE`], and weighted
/// distances use [`W_UNREACHABLE`] — under every strategy.
#[test]
fn sentinel_regression_disconnected_graph() {
    // Two components plus an isolated node.
    let g = Graph::from_edges(5, [(0u32, 1), (2, 3)]);
    for strategy in STRATEGIES {
        let eng = DistanceEngine::new(&g).with_strategy(strategy);
        assert_eq!(
            eng.distances(NodeId(0)),
            vec![0, 1, UNREACHABLE, UNREACHABLE, UNREACHABLE],
            "strategy={strategy}"
        );
        let rows = eng.many_distances(&[NodeId(2), NodeId(4)]);
        assert_eq!(rows[0..5], [UNREACHABLE, UNREACHABLE, 0, 1, UNREACHABLE]);
        assert_eq!(
            rows[5..10],
            [UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE, 0]
        );
    }
    let apsp = Apsp::new(&g);
    assert_eq!(apsp.dist(NodeId(0), NodeId(4)), UNREACHABLE);
    assert_eq!(apsp.dist(NodeId(1), NodeId(2)), UNREACHABLE);
    let ms = DistanceEngine::new(&g).nearest_sources(&[NodeId(0)]);
    assert_eq!(ms.dist, vec![0, 1, UNREACHABLE, UNREACHABLE, UNREACHABLE]);
    assert_eq!(ms.source[2], NO_SOURCE);
    assert_eq!(ms.source[4], NO_SOURCE);
    // The weighted sentinel is distinct (u64) but plays the same role.
    let wg = WeightedGraph::new(g.clone(), vec![2; g.edge_count()]);
    let wd = dijkstra(&wg, NodeId(0));
    assert_eq!(wd[1], 2);
    assert_eq!(wd[2], W_UNREACHABLE);
    assert_eq!(wd[4], W_UNREACHABLE);
}

#[test]
fn sentinel_regression_single_node_graph() {
    let one = Graph::empty(1);
    for strategy in STRATEGIES {
        let eng = DistanceEngine::new(&one).with_strategy(strategy);
        assert_eq!(eng.distances(NodeId(0)), vec![0]);
        assert_eq!(eng.many_distances(&[NodeId(0)]), vec![0]);
        assert_eq!(eng.diameter(), None, "single node has no diameter");
    }
    assert_eq!(diameter_exact(&one), None);
    assert_eq!(Apsp::new(&one).dist(NodeId(0), NodeId(0)), 0);
    let ms = DistanceEngine::new(&one).nearest_sources(&[]);
    assert_eq!(ms.dist, vec![UNREACHABLE]);
    assert_eq!(ms.source, vec![NO_SOURCE]);
}
