//! Weighted graphs and shortest paths.
//!
//! The paper's Fig. 1 opens with Baswana–Sen's (2k−1)-spanner *"in
//! weighted graphs"* being optimal in all respects; reproducing that row
//! faithfully needs a weighted substrate: [`WeightedGraph`] attaches a
//! positive integer weight to every edge of a [`Graph`] (sharing its edge
//! ids, so [`EdgeSet`] spanners work unchanged) and
//! [`dijkstra`] provides exact weighted distances.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edgeset::EdgeSet;
use crate::graph::{EdgeId, Graph, NodeId};

/// A positively weighted undirected simple graph: a [`Graph`] plus a
/// weight per edge (shared edge ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<u32>,
}

/// Sentinel for unreachable weighted distances.
pub const W_UNREACHABLE: u64 = u64::MAX;

impl WeightedGraph {
    /// Attaches weights (by edge id) to a graph.
    ///
    /// # Panics
    ///
    /// Panics if the weight vector length differs from the edge count or
    /// any weight is zero.
    pub fn new(graph: Graph, weights: Vec<u32>) -> Self {
        assert_eq!(
            weights.len(),
            graph.edge_count(),
            "one weight per edge required"
        );
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        WeightedGraph { graph, weights }
    }

    /// Uniform random integer weights in `1..=max_weight`.
    ///
    /// # Panics
    ///
    /// Panics if `max_weight == 0`.
    pub fn random_weights(graph: Graph, max_weight: u32, seed: u64) -> Self {
        assert!(max_weight >= 1, "max_weight must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights = (0..graph.edge_count())
            .map(|_| rng.gen_range(1..=max_weight))
            .collect();
        WeightedGraph::new(graph, weights)
    }

    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u32 {
        self.weights[e.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Total weight of an edge subset.
    pub fn total_weight(&self, edges: &EdgeSet) -> u64 {
        edges.iter().map(|e| u64::from(self.weight(e))).sum()
    }
}

/// Single-source weighted distances by Dijkstra; `W_UNREACHABLE` where
/// disconnected. O((n + m) log n).
pub fn dijkstra(g: &WeightedGraph, src: NodeId) -> Vec<u64> {
    let mut dist = vec![W_UNREACHABLE; g.node_count()];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &(v, e) in g.graph().neighbors(u) {
            let nd = d + u64::from(g.weight(e));
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Weighted adjacency of the subgraph induced by an edge subset:
/// `adj[u]` lists `(v, w)` for every selected edge `{u, v}` of weight `w`.
///
/// Build this **once** per spanner and feed it to
/// [`dijkstra_in_adjacency`]; rebuilding (or filtering the host adjacency)
/// inside a per-source loop is O(n·m) of redundant work.
pub fn subgraph_adjacency(g: &WeightedGraph, span: &EdgeSet) -> Vec<Vec<(NodeId, u32)>> {
    let mut adj: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); g.node_count()];
    for e in span.iter() {
        let (a, b) = g.graph().endpoints(e);
        let w = g.weight(e);
        adj[a.index()].push((b, w));
        adj[b.index()].push((a, w));
    }
    adj
}

/// Dijkstra over a prebuilt weighted adjacency (see
/// [`subgraph_adjacency`]).
pub fn dijkstra_in_adjacency(adj: &[Vec<(NodeId, u32)>], src: NodeId) -> Vec<u64> {
    let mut dist = vec![W_UNREACHABLE; adj.len()];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &(v, w) in &adj[u.index()] {
            let nd = d + u64::from(w);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Dijkstra restricted to an edge subset (for evaluating weighted
/// spanners). One-shot convenience; for many sources over the same
/// subset, build [`subgraph_adjacency`] once instead.
pub fn dijkstra_in_subgraph(g: &WeightedGraph, span: &EdgeSet, src: NodeId) -> Vec<u64> {
    dijkstra_in_adjacency(&subgraph_adjacency(g, span), src)
}

/// Worst multiplicative stretch of `span` over all connected pairs of `g`
/// (runs n Dijkstras in both graphs — verification-sized inputs only).
/// Returns `f64::INFINITY` if the spanner disconnects a connected pair.
pub fn weighted_stretch(g: &WeightedGraph, span: &EdgeSet) -> f64 {
    let adj = subgraph_adjacency(g, span);
    let mut worst: f64 = 1.0;
    for u in g.graph().nodes() {
        let host = dijkstra(g, u);
        let sub = dijkstra_in_adjacency(&adj, u);
        for v in g.graph().nodes() {
            if u == v || host[v.index()] == W_UNREACHABLE {
                continue;
            }
            if sub[v.index()] == W_UNREACHABLE {
                return f64::INFINITY;
            }
            worst = worst.max(sub[v.index()] as f64 / host[v.index()] as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn diamond() -> WeightedGraph {
        // 0-1 (1), 1-3 (1), 0-2 (5), 2-3 (1): shortest 0-3 is 2 via 1.
        let g = Graph::from_edges(4, [(0u32, 1), (1, 3), (0, 2), (2, 3)]);
        let mut w = vec![0u32; 4];
        w[g.find_edge(NodeId(0), NodeId(1)).unwrap().index()] = 1;
        w[g.find_edge(NodeId(1), NodeId(3)).unwrap().index()] = 1;
        w[g.find_edge(NodeId(0), NodeId(2)).unwrap().index()] = 5;
        w[g.find_edge(NodeId(2), NodeId(3)).unwrap().index()] = 1;
        WeightedGraph::new(g, w)
    }

    #[test]
    fn dijkstra_picks_light_paths() {
        let g = diamond();
        let d = dijkstra(&g, NodeId(0));
        assert_eq!(d[3], 2);
        assert_eq!(d[2], 3); // via 1,3 (1+1+1), not the weight-5 edge
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = WeightedGraph::new(Graph::from_edges(3, [(0u32, 1)]), vec![2]);
        let d = dijkstra(&g, NodeId(0));
        assert_eq!(d[1], 2);
        assert_eq!(d[2], W_UNREACHABLE);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g0 = generators::connected_gnm(150, 600, 3);
        let g = WeightedGraph::new(g0.clone(), vec![1; g0.edge_count()]);
        for src in [NodeId(0), NodeId(77)] {
            let d = dijkstra(&g, src);
            let b = crate::traversal::bfs_distances(&g0, src);
            for v in g0.nodes() {
                assert_eq!(d[v.index()], u64::from(b[v.index()].unwrap()));
            }
        }
    }

    #[test]
    fn subgraph_dijkstra_respects_span() {
        let g = diamond();
        let mut span = EdgeSet::new(g.graph());
        // keep only 0-2 and 2-3
        span.insert(g.graph().find_edge(NodeId(0), NodeId(2)).unwrap());
        span.insert(g.graph().find_edge(NodeId(2), NodeId(3)).unwrap());
        let d = dijkstra_in_subgraph(&g, &span, NodeId(0));
        assert_eq!(d[3], 6);
        assert_eq!(d[1], W_UNREACHABLE);
    }

    #[test]
    fn stretch_of_full_graph_is_one() {
        let g = WeightedGraph::random_weights(generators::connected_gnm(60, 200, 2), 10, 5);
        let full = EdgeSet::full(g.graph());
        assert_eq!(weighted_stretch(&g, &full), 1.0);
    }

    #[test]
    fn stretch_infinite_when_disconnecting() {
        let g = diamond();
        let span = EdgeSet::new(g.graph());
        assert_eq!(weighted_stretch(&g, &span), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_zero_weight() {
        WeightedGraph::new(Graph::from_edges(2, [(0u32, 1)]), vec![0]);
    }

    #[test]
    fn random_weights_in_range() {
        let g = WeightedGraph::random_weights(generators::cycle(30), 7, 9);
        for (e, _, _) in g.graph().edges() {
            assert!((1..=7).contains(&g.weight(e)));
        }
        // Deterministic.
        let h = WeightedGraph::random_weights(generators::cycle(30), 7, 9);
        assert_eq!(g, h);
    }
}
