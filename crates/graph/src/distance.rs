//! Exact and sampled distance computations.
//!
//! The experiments compare distances in a spanner against distances in the
//! host graph for many pairs; this module provides the machinery: exact APSP,
//! seeded pair sampling for larger graphs, eccentricities and diameter
//! (exact and the classic two-sweep lower bound). The heavy lifting routes
//! through the [`DistanceEngine`] (flat CSR; 64-way bit-parallel or
//! direction-optimizing per-source BFS, picked per graph by the engine's
//! [`Strategy`](crate::engine::Strategy) probe; optionally threaded); the
//! original one-BFS-per-source code paths are kept as `*_reference`
//! functions for the parity suite.

use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edgeset::EdgeSet;
use crate::engine::{BfsScratch, DistanceEngine, RowsScratch};
use crate::graph::{Graph, NodeId};
use crate::pool::{chunk_range, run_workers};
use crate::traversal::{bfs_distances, bfs_distances_in_subgraph};
use crate::weighted::{
    dijkstra, dijkstra_in_adjacency, subgraph_adjacency, WeightedGraph, W_UNREACHABLE,
};

/// All-pairs shortest path distances, `u32::MAX` for unreachable pairs.
///
/// O(n(n+m)/64) traversal work via the bit-parallel engine, O(n²) space.
/// The quadratic matrix is what bounds the feasible size; use
/// [`DistanceEngine`] directly (e.g. [`DistanceEngine::eccentricities`])
/// when full rows are not needed.
#[derive(Debug, Clone)]
pub struct Apsp {
    n: usize,
    dist: Vec<u32>,
}

/// The one unreachable-distance sentinel for unweighted (hop-count)
/// distances: `u32::MAX`, used identically by the engine entry points and
/// every `*_reference` path. The weighted counterpart is
/// [`W_UNREACHABLE`] (`u64::MAX`), and
/// unattributed nodes in multi-source results use
/// [`NO_SOURCE`](crate::engine::NO_SOURCE).
pub const UNREACHABLE: u32 = u32::MAX;

impl Apsp {
    /// Computes APSP on `g` via the single-threaded distance engine.
    pub fn new(g: &Graph) -> Self {
        Apsp::with_threads(g, 1)
    }

    /// Computes APSP with the engine fanned out over `threads` workers.
    /// The matrix is identical at every thread count.
    pub fn with_threads(g: &Graph, threads: usize) -> Self {
        let engine = DistanceEngine::new(g).with_threads(threads);
        Apsp {
            n: g.node_count(),
            dist: engine.apsp_matrix(),
        }
    }

    /// The original one-BFS-per-source construction, kept as the reference
    /// implementation for the engine parity suite.
    pub fn new_reference(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = vec![UNREACHABLE; n * n];
        for s in g.nodes() {
            let d = bfs_distances(g, s);
            let row = &mut dist[s.index() * n..(s.index() + 1) * n];
            for (v, dv) in d.iter().enumerate() {
                if let Some(x) = dv {
                    row[v] = *x;
                }
            }
        }
        Apsp { n, dist }
    }

    /// Distance between `u` and `v` (`UNREACHABLE` if disconnected).
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u32 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Maximum finite distance (the diameter of the largest component by
    /// distance, i.e. the graph diameter if connected). `None` if there are
    /// no finite distances between distinct nodes.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = None;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let d = self.dist[i * self.n + j];
                if d != UNREACHABLE {
                    best = Some(best.map_or(d, |b: u32| b.max(d)));
                }
            }
        }
        best
    }
}

/// A stretch guarantee of the form `d_S(u, v) ≤ α · d_G(u, v) + β`.
///
/// Multiplicative-only and additive-only guarantees are the two special
/// cases (β = 0 resp. α = 1); mixed (α, β)-spanners use both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchBound {
    /// Multiplicative factor α (≥ 1).
    pub alpha: f64,
    /// Additive surplus β (in hops, or weight for weighted graphs).
    pub beta: u64,
}

impl StretchBound {
    /// A purely multiplicative bound `d_S ≤ t · d_G`.
    pub fn multiplicative(t: f64) -> Self {
        assert!(t >= 1.0, "stretch factor below 1");
        StretchBound { alpha: t, beta: 0 }
    }

    /// A purely additive bound `d_S ≤ d_G + b`.
    pub fn additive(b: u64) -> Self {
        StretchBound {
            alpha: 1.0,
            beta: b,
        }
    }

    /// A mixed bound `d_S ≤ α · d_G + β`.
    pub fn mixed(alpha: f64, beta: u64) -> Self {
        assert!(alpha >= 1.0, "stretch factor below 1");
        StretchBound { alpha, beta }
    }

    /// Whether spanner distance `in_spanner` satisfies the bound for base
    /// distance `d`.
    ///
    /// When α is integral or a small rational p/q (q ≤ 64 — covers every
    /// (2k−1)- and (α, β)-bound the suite checks), the comparison is exact
    /// integer arithmetic in `u128`: `in_spanner · q ≤ p · d + β · q`.
    /// Distances near 2⁵³ are not representable in `f64`, so the float path
    /// would silently accept violations there. The 1e-9 slack survives only
    /// as the fractional-α fallback.
    fn allows(&self, d: u64, in_spanner: u64) -> bool {
        if let Some((num, den)) = rational_alpha(self.alpha) {
            return (in_spanner as u128) * (den as u128)
                <= (num as u128) * (d as u128) + (self.beta as u128) * (den as u128);
        }
        in_spanner as f64 <= self.alpha * d as f64 + self.beta as f64 + 1e-9
    }
}

/// Recovers α as an exactly-representable rational `num / den` with
/// `den ≤ 64`, if possible. The round-trip check guarantees the rational
/// equals α bit-for-bit, so the exact path never changes a verdict the
/// real-valued bound would give.
fn rational_alpha(alpha: f64) -> Option<(u64, u64)> {
    if !alpha.is_finite() || alpha < 1.0 {
        return None;
    }
    for den in 1..=64u64 {
        let scaled = alpha * den as f64;
        if scaled.fract() == 0.0 && scaled <= u64::MAX as f64 {
            let num = scaled as u64;
            if num as f64 / den as f64 == alpha {
                return Some((num, den));
            }
        }
    }
    None
}

/// The witness returned when a spanner violates its claimed stretch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchViolation {
    /// First endpoint of the offending pair.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Exact distance in the host graph.
    pub base: u64,
    /// Exact distance inside the spanner; `None` if the spanner
    /// disconnects the pair.
    pub in_spanner: Option<u64>,
}

impl std::fmt::Display for StretchViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.in_spanner {
            Some(s) => write!(
                f,
                "stretch violated for ({}, {}): {} in spanner vs {} in graph",
                self.u, self.v, s, self.base
            ),
            None => write!(
                f,
                "spanner disconnects ({}, {}) at graph distance {}",
                self.u, self.v, self.base
            ),
        }
    }
}

/// Verifies the exact stretch guarantee of `spanner` against every
/// connected pair of `g`: `d_S(u, v) ≤ α · d_G(u, v) + β`.
///
/// Routes through the bit-parallel distance engine (64 sources per
/// traversal in both the host graph and the spanner subgraph) — the shared
/// replacement for the per-test ad-hoc distance loops in the integration
/// suites. Returns the first violating pair (lowest `u`, then `v`) as a
/// witness, `Ok(())` if the guarantee holds everywhere. Pairs disconnected
/// in `g` impose no requirement; pairs connected in `g` but not in the
/// spanner are violations.
pub fn verify_stretch_exact(
    g: &Graph,
    spanner: &EdgeSet,
    bound: StretchBound,
) -> Result<(), StretchViolation> {
    verify_stretch_exact_threads(g, spanner, bound, 1)
}

/// [`verify_stretch_exact`] with the source batches fanned out over
/// `threads` workers. Each worker scans a contiguous ascending range of
/// sources and records its own first violation; the global answer is the
/// first across workers in range order, so the witness — like the verdict —
/// is identical at every thread count.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn verify_stretch_exact_threads(
    g: &Graph,
    spanner: &EdgeSet,
    bound: StretchBound,
    threads: usize,
) -> Result<(), StretchViolation> {
    assert!(threads >= 1, "need at least one worker thread");
    let n = g.node_count();
    if n < 2 {
        return Ok(());
    }
    let host = DistanceEngine::new(g);
    let sub = DistanceEngine::for_subgraph(g, spanner);
    let nbatches = n.div_ceil(64).max(threads.min(n));
    let t = threads.min(nbatches);
    let batch_cap = chunk_range(n, nbatches, 0).len();
    let mut firsts: Vec<Option<StretchViolation>> = vec![None; t];
    {
        let slots: Vec<Mutex<&mut Option<StretchViolation>>> =
            firsts.iter_mut().map(Mutex::new).collect();
        run_workers(t, |w| {
            let mut slot = slots[w].lock().expect("worker slot");
            let mut host_scratch = RowsScratch::new(n);
            let mut sub_scratch = RowsScratch::new(n);
            let mut host_rows = vec![UNREACHABLE; batch_cap * n];
            let mut sub_rows = vec![UNREACHABLE; batch_cap * n];
            'batches: for b in chunk_range(nbatches, t, w) {
                let r = chunk_range(n, nbatches, b);
                let sources: Vec<NodeId> = (r.start as u32..r.end as u32).map(NodeId).collect();
                let rows = sources.len() * n;
                // The host and the spanner subgraph resolve their
                // strategies independently (a sparse spanner of a dense
                // graph may well want the per-source path).
                host.rows_into(&sources, &mut host_scratch, &mut host_rows[..rows]);
                sub.rows_into(&sources, &mut sub_scratch, &mut sub_rows[..rows]);
                for (i, &u) in sources.iter().enumerate() {
                    let dg = &host_rows[i * n..(i + 1) * n];
                    let ds = &sub_rows[i * n..(i + 1) * n];
                    for v in (u.index() + 1)..n {
                        let base = dg[v];
                        if base == UNREACHABLE {
                            continue;
                        }
                        let witness = |in_spanner| StretchViolation {
                            u,
                            v: NodeId(v as u32),
                            base: base as u64,
                            in_spanner,
                        };
                        match ds[v] {
                            s if s != UNREACHABLE && bound.allows(base as u64, s as u64) => {}
                            s if s != UNREACHABLE => {
                                **slot = Some(witness(Some(s as u64)));
                                break 'batches;
                            }
                            _ => {
                                **slot = Some(witness(None));
                                break 'batches;
                            }
                        }
                    }
                }
            }
        });
    }
    match firsts.into_iter().flatten().next() {
        Some(violation) => Err(violation),
        None => Ok(()),
    }
}

/// The original one-BFS-per-source verifier over `Vec<Vec<NodeId>>`
/// adjacency, kept as the reference implementation for the parity suite.
pub fn verify_stretch_exact_reference(
    g: &Graph,
    spanner: &EdgeSet,
    bound: StretchBound,
) -> Result<(), StretchViolation> {
    let adj = spanner.adjacency(g);
    for u in g.nodes() {
        let dg = bfs_distances(g, u);
        let ds = bfs_distances_in_subgraph(&adj, u, u32::MAX);
        for v in (u.index() + 1)..g.node_count() {
            let Some(base) = dg[v] else { continue };
            let witness = |in_spanner| StretchViolation {
                u,
                v: NodeId(v as u32),
                base: base as u64,
                in_spanner,
            };
            match ds[v] {
                Some(s) if bound.allows(base as u64, s as u64) => {}
                Some(s) => return Err(witness(Some(s as u64))),
                None => return Err(witness(None)),
            }
        }
    }
    Ok(())
}

/// Weighted counterpart of [`verify_stretch_exact`]: one Dijkstra per node
/// in the host graph and in the spanner subgraph, distances in total edge
/// weight. The subgraph adjacency is built once, not per source.
pub fn verify_stretch_exact_weighted(
    g: &WeightedGraph,
    spanner: &EdgeSet,
    bound: StretchBound,
) -> Result<(), StretchViolation> {
    let sub_adj = subgraph_adjacency(g, spanner);
    for u in g.graph().nodes() {
        let dg = dijkstra(g, u);
        let ds = dijkstra_in_adjacency(&sub_adj, u);
        for v in (u.index() + 1)..g.node_count() {
            let base = dg[v];
            if base == W_UNREACHABLE {
                continue;
            }
            let witness = |in_spanner| StretchViolation {
                u,
                v: NodeId(v as u32),
                base,
                in_spanner,
            };
            match ds[v] {
                W_UNREACHABLE => return Err(witness(None)),
                s if bound.allows(base, s) => {}
                s => return Err(witness(Some(s))),
            }
        }
    }
    Ok(())
}

/// Eccentricity of `v`: max distance from `v` to any reachable node.
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

/// Exact diameter via the bit-parallel engine (64 sources per traversal,
/// no distance matrix); `None` for graphs with < 2 nodes. For disconnected
/// graphs, returns the max eccentricity over components.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    DistanceEngine::new(g).diameter()
}

/// Two-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest node found. Exact on trees, a good estimate in general.
pub fn diameter_two_sweep(g: &Graph, start: NodeId) -> u32 {
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|x| (x, v)))
        .max()
        .map(|(_, v)| NodeId(v as u32));
    match far {
        Some(f) => eccentricity(g, f),
        None => 0,
    }
}

/// [`diameter_two_sweep`] over a bare CSR adjacency — identical result to
/// the [`Graph`] version on the equivalent topology: BFS distances are
/// neighbor-order-independent and the farthest-node tiebreak (max distance,
/// then max node id) is reproduced exactly.
pub fn diameter_two_sweep_csr(csr: &crate::csr::CsrAdjacency, start: NodeId) -> u32 {
    let d1 = crate::traversal::bfs_distances_csr(csr, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|x| (x, v)))
        .max()
        .map(|(_, v)| NodeId(v as u32));
    match far {
        Some(f) => crate::traversal::bfs_distances_csr(csr, f)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0),
        None => 0,
    }
}

/// A sampled pair of distinct nodes together with its exact host-graph
/// distance (finite; disconnected pairs are skipped during sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledPair {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Exact distance in the host graph.
    pub dist: u32,
}

/// Samples up to `count` connected node pairs uniformly at random (with a
/// deterministic seed) and records their exact host distances.
///
/// Pairs in tiny or heavily disconnected graphs may be fewer than `count`:
/// sampling stops after `16 * count` failed attempts.
pub fn sample_pairs(g: &Graph, count: usize, seed: u64) -> Vec<SampledPair> {
    let n = g.node_count();
    if n < 2 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut budget = 16 * count.max(1);
    // Group samples by source to amortize BFS runs.
    let mut by_source: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut picks: Vec<(NodeId, NodeId)> = Vec::new();
    while picks.len() < count && budget > 0 {
        budget -= 1;
        let a = NodeId(rng.gen_range(0..n as u32));
        let b = NodeId(rng.gen_range(0..n as u32));
        if a != b {
            picks.push((a, b));
        }
    }
    picks.sort_unstable();
    for (a, b) in picks {
        match by_source.last_mut() {
            Some((s, targets)) if *s == a => targets.push(b),
            _ => by_source.push((a, vec![b])),
        }
    }
    let engine = DistanceEngine::new(g);
    let mut scratch = BfsScratch::new(n);
    let mut d = vec![UNREACHABLE; n];
    for (s, targets) in by_source {
        engine.distances_into(s, &mut scratch, &mut d);
        for t in targets {
            if d[t.index()] != UNREACHABLE {
                out.push(SampledPair {
                    u: s,
                    v: t,
                    dist: d[t.index()],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn apsp_on_cycle() {
        let g = cycle(8);
        let a = Apsp::new(&g);
        assert_eq!(a.dist(NodeId(0), NodeId(4)), 4);
        assert_eq!(a.dist(NodeId(0), NodeId(7)), 1);
        assert_eq!(a.dist(NodeId(3), NodeId(3)), 0);
        assert_eq!(a.diameter(), Some(4));
    }

    #[test]
    fn apsp_symmetric() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4)]);
        let a = Apsp::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.dist(u, v), a.dist(v, u));
            }
        }
    }

    #[test]
    fn apsp_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let a = Apsp::new(&g);
        assert_eq!(a.dist(NodeId(0), NodeId(2)), UNREACHABLE);
        assert_eq!(a.diameter(), Some(1));
    }

    #[test]
    fn diameter_exact_and_two_sweep_on_path() {
        let g = Graph::from_edges(7, (0..6u32).map(|i| (i, i + 1)));
        assert_eq!(diameter_exact(&g), Some(6));
        // two-sweep is exact on trees, from any start
        for v in g.nodes() {
            assert_eq!(diameter_two_sweep(&g, v), 6);
        }
    }

    #[test]
    fn diameter_tiny() {
        assert_eq!(diameter_exact(&Graph::empty(1)), None);
        assert_eq!(diameter_exact(&Graph::empty(0)), None);
    }

    #[test]
    fn eccentricity_center_of_path() {
        let g = Graph::from_edges(5, (0..4u32).map(|i| (i, i + 1)));
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
    }

    #[test]
    fn sample_pairs_deterministic_and_exact() {
        let g = cycle(20);
        let s1 = sample_pairs(&g, 50, 7);
        let s2 = sample_pairs(&g, 50, 7);
        assert_eq!(s1, s2);
        assert!(!s1.is_empty());
        let a = Apsp::new(&g);
        for p in &s1 {
            assert_eq!(p.dist, a.dist(p.u, p.v));
            assert_ne!(p.u, p.v);
        }
    }

    #[test]
    fn sample_pairs_skips_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        for p in sample_pairs(&g, 100, 3) {
            assert!(p.dist <= 1);
        }
    }

    #[test]
    fn sample_pairs_tiny_graph() {
        assert!(sample_pairs(&Graph::empty(1), 10, 1).is_empty());
        assert!(sample_pairs(&Graph::empty(0), 10, 1).is_empty());
    }

    #[test]
    fn verify_stretch_accepts_full_graph_and_spanning_subsets() {
        let g = cycle(9);
        assert!(
            verify_stretch_exact(&g, &EdgeSet::full(&g), StretchBound::multiplicative(1.0)).is_ok()
        );
        // Removing one cycle edge forces the long way around: stretch n-1.
        let mut span = EdgeSet::full(&g);
        span.remove(g.find_edge(NodeId(0), NodeId(1)).unwrap());
        assert!(verify_stretch_exact(&g, &span, StretchBound::multiplicative(8.0)).is_ok());
        let err = verify_stretch_exact(&g, &span, StretchBound::multiplicative(7.0)).unwrap_err();
        assert_eq!((err.u, err.v), (NodeId(0), NodeId(1)));
        assert_eq!((err.base, err.in_spanner), (1, Some(8)));
        // The same gap expressed additively.
        assert!(verify_stretch_exact(&g, &span, StretchBound::additive(7)).is_ok());
        assert!(verify_stretch_exact(&g, &span, StretchBound::additive(6)).is_err());
    }

    #[test]
    fn apsp_matches_reference() {
        let g = crate::generators::erdos_renyi_gnm(80, 160, 5);
        let a = Apsp::new(&g);
        let r = Apsp::new_reference(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.dist(u, v), r.dist(u, v));
            }
        }
        assert_eq!(a.diameter(), r.diameter());
        let t = Apsp::with_threads(&g, 4);
        assert_eq!(
            t.dist(NodeId(17), NodeId(63)),
            a.dist(NodeId(17), NodeId(63))
        );
    }

    #[test]
    fn verify_stretch_threads_identical_witness() {
        let g = cycle(9);
        let mut span = EdgeSet::full(&g);
        span.remove(g.find_edge(NodeId(0), NodeId(1)).unwrap());
        for threads in 1..=8usize {
            let bound = StretchBound::multiplicative(7.0);
            let err = verify_stretch_exact_threads(&g, &span, bound, threads).unwrap_err();
            assert_eq!(
                (err.u, err.v, err.base, err.in_spanner),
                (NodeId(0), NodeId(1), 1, Some(8)),
                "threads={threads}"
            );
            let ok = StretchBound::multiplicative(8.0);
            assert!(verify_stretch_exact_threads(&g, &span, ok, threads).is_ok());
        }
    }

    #[test]
    fn allows_is_exact_for_integral_alpha_near_2_pow_53() {
        let b = StretchBound::multiplicative(3.0);
        let d = 1u64 << 53;
        assert!(b.allows(d, 3 * d));
        // One hop over the bound rounds back to 3·2^53 in f64, so the old
        // float comparison accepted it; only exact integers catch it.
        assert!(!b.allows(d, 3 * d + 1));
        assert!(!b.allows(d, 3 * d + 5));
        let add = StretchBound::additive(2);
        assert!(add.allows(d, d + 2));
        assert!(!add.allows(d, d + 3));
    }

    #[test]
    fn allows_handles_small_rationals_exactly() {
        let b = StretchBound::mixed(2.5, 1);
        assert!(b.allows(2, 6)); // 2.5 · 2 + 1 = 6 exactly
        assert!(!b.allows(2, 7));
        assert_eq!(rational_alpha(2.5), Some((5, 2)));
        assert_eq!(rational_alpha(1.0), Some((1, 1)));
        assert_eq!(rational_alpha(7.0), Some((7, 1)));
        assert!(rational_alpha(std::f64::consts::PI).is_none());
        // The fractional fallback still works.
        assert!(StretchBound::multiplicative(std::f64::consts::PI).allows(3, 9));
    }

    #[test]
    fn verify_stretch_flags_disconnection() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut span = EdgeSet::new(&g);
        span.insert(g.find_edge(NodeId(0), NodeId(1)).unwrap());
        let err = verify_stretch_exact(&g, &span, StretchBound::multiplicative(100.0)).unwrap_err();
        assert_eq!(err.in_spanner, None);
        assert!(err.to_string().contains("disconnects"));
    }

    #[test]
    fn verify_stretch_ignores_pairs_disconnected_in_host() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(
            verify_stretch_exact(&g, &EdgeSet::full(&g), StretchBound::multiplicative(1.0)).is_ok()
        );
    }

    #[test]
    fn verify_stretch_weighted_uses_weights() {
        // Triangle with a heavy shortcut: dropping the light edge (0,1)
        // leaves the 0→2→1 route of weight 7 against a base of 1.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let w: Vec<u32> = g
            .edges()
            .map(|(_, a, b)| {
                if (a, b) == (NodeId(0), NodeId(1)) || (a, b) == (NodeId(1), NodeId(0)) {
                    1
                } else {
                    4
                }
            })
            .collect();
        let wg = WeightedGraph::new(g, w);
        let mut span = EdgeSet::full(wg.graph());
        span.remove(wg.graph().find_edge(NodeId(0), NodeId(1)).unwrap());
        assert!(
            verify_stretch_exact_weighted(&wg, &span, StretchBound::multiplicative(8.0)).is_ok()
        );
        let err = verify_stretch_exact_weighted(&wg, &span, StretchBound::multiplicative(7.0))
            .unwrap_err();
        assert_eq!((err.base, err.in_spanner), (1, Some(8)));
    }
}
