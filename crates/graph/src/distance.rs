//! Exact and sampled distance computations.
//!
//! The experiments compare distances in a spanner against distances in the
//! host graph for many pairs; this module provides the machinery: exact APSP
//! via repeated BFS (fine up to a few thousand nodes), seeded pair sampling
//! for larger graphs, eccentricities and diameter (exact and the classic
//! two-sweep lower bound).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, NodeId};
use crate::traversal::bfs_distances;

/// All-pairs shortest path distances, `u32::MAX` for unreachable pairs.
///
/// Runs `n` BFS passes: O(n(n+m)) time, O(n²) space. Intended for
/// verification on graphs up to a few thousand nodes.
#[derive(Debug, Clone)]
pub struct Apsp {
    n: usize,
    dist: Vec<u32>,
}

/// Sentinel distance for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

impl Apsp {
    /// Computes APSP on `g` by repeated BFS.
    pub fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = vec![UNREACHABLE; n * n];
        for s in g.nodes() {
            let d = bfs_distances(g, s);
            let row = &mut dist[s.index() * n..(s.index() + 1) * n];
            for (v, dv) in d.iter().enumerate() {
                if let Some(x) = dv {
                    row[v] = *x;
                }
            }
        }
        Apsp { n, dist }
    }

    /// Distance between `u` and `v` (`UNREACHABLE` if disconnected).
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u32 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Maximum finite distance (the diameter of the largest component by
    /// distance, i.e. the graph diameter if connected). `None` if there are
    /// no finite distances between distinct nodes.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = None;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let d = self.dist[i * self.n + j];
                if d != UNREACHABLE {
                    best = Some(best.map_or(d, |b: u32| b.max(d)));
                }
            }
        }
        best
    }
}

/// Eccentricity of `v`: max distance from `v` to any reachable node.
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

/// Exact diameter by n BFS runs; `None` for graphs with < 2 nodes.
/// For disconnected graphs, returns the max eccentricity over components.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    if g.node_count() < 2 {
        return None;
    }
    g.nodes().map(|v| eccentricity(g, v)).max()
}

/// Two-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest node found. Exact on trees, a good estimate in general.
pub fn diameter_two_sweep(g: &Graph, start: NodeId) -> u32 {
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|x| (x, v)))
        .max()
        .map(|(_, v)| NodeId(v as u32));
    match far {
        Some(f) => eccentricity(g, f),
        None => 0,
    }
}

/// A sampled pair of distinct nodes together with its exact host-graph
/// distance (finite; disconnected pairs are skipped during sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledPair {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Exact distance in the host graph.
    pub dist: u32,
}

/// Samples up to `count` connected node pairs uniformly at random (with a
/// deterministic seed) and records their exact host distances.
///
/// Pairs in tiny or heavily disconnected graphs may be fewer than `count`:
/// sampling stops after `16 * count` failed attempts.
pub fn sample_pairs(g: &Graph, count: usize, seed: u64) -> Vec<SampledPair> {
    let n = g.node_count();
    if n < 2 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut budget = 16 * count.max(1);
    // Group samples by source to amortize BFS runs.
    let mut by_source: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut picks: Vec<(NodeId, NodeId)> = Vec::new();
    while picks.len() < count && budget > 0 {
        budget -= 1;
        let a = NodeId(rng.gen_range(0..n as u32));
        let b = NodeId(rng.gen_range(0..n as u32));
        if a != b {
            picks.push((a, b));
        }
    }
    picks.sort_unstable();
    for (a, b) in picks {
        match by_source.last_mut() {
            Some((s, targets)) if *s == a => targets.push(b),
            _ => by_source.push((a, vec![b])),
        }
    }
    for (s, targets) in by_source {
        let d = bfs_distances(g, s);
        for t in targets {
            if let Some(x) = d[t.index()] {
                out.push(SampledPair {
                    u: s,
                    v: t,
                    dist: x,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn apsp_on_cycle() {
        let g = cycle(8);
        let a = Apsp::new(&g);
        assert_eq!(a.dist(NodeId(0), NodeId(4)), 4);
        assert_eq!(a.dist(NodeId(0), NodeId(7)), 1);
        assert_eq!(a.dist(NodeId(3), NodeId(3)), 0);
        assert_eq!(a.diameter(), Some(4));
    }

    #[test]
    fn apsp_symmetric() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4)]);
        let a = Apsp::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.dist(u, v), a.dist(v, u));
            }
        }
    }

    #[test]
    fn apsp_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let a = Apsp::new(&g);
        assert_eq!(a.dist(NodeId(0), NodeId(2)), UNREACHABLE);
        assert_eq!(a.diameter(), Some(1));
    }

    #[test]
    fn diameter_exact_and_two_sweep_on_path() {
        let g = Graph::from_edges(7, (0..6u32).map(|i| (i, i + 1)));
        assert_eq!(diameter_exact(&g), Some(6));
        // two-sweep is exact on trees, from any start
        for v in g.nodes() {
            assert_eq!(diameter_two_sweep(&g, v), 6);
        }
    }

    #[test]
    fn diameter_tiny() {
        assert_eq!(diameter_exact(&Graph::empty(1)), None);
        assert_eq!(diameter_exact(&Graph::empty(0)), None);
    }

    #[test]
    fn eccentricity_center_of_path() {
        let g = Graph::from_edges(5, (0..4u32).map(|i| (i, i + 1)));
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
    }

    #[test]
    fn sample_pairs_deterministic_and_exact() {
        let g = cycle(20);
        let s1 = sample_pairs(&g, 50, 7);
        let s2 = sample_pairs(&g, 50, 7);
        assert_eq!(s1, s2);
        assert!(!s1.is_empty());
        let a = Apsp::new(&g);
        for p in &s1 {
            assert_eq!(p.dist, a.dist(p.u, p.v));
            assert_ne!(p.u, p.v);
        }
    }

    #[test]
    fn sample_pairs_skips_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        for p in sample_pairs(&g, 100, 3) {
            assert!(p.dist <= 1);
        }
    }

    #[test]
    fn sample_pairs_tiny_graph() {
        assert!(sample_pairs(&Graph::empty(1), 10, 1).is_empty());
        assert!(sample_pairs(&Graph::empty(0), 10, 1).is_empty());
    }
}
