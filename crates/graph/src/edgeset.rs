//! Subgraphs as edge subsets.
//!
//! A spanner of `G` is a subgraph on the same vertex set, i.e. a subset of
//! `G`'s edges. [`EdgeSet`] stores such a subset as a bitset over
//! [`EdgeId`]s, which keeps spanners cheap to build incrementally (the
//! algorithms select one edge at a time) and cheap to query during stretch
//! evaluation.

use crate::graph::{EdgeId, Graph, NodeId};

/// A set of edges of a fixed host graph, stored as a bitset over edge ids.
///
/// # Example
///
/// ```
/// use spanner_graph::{EdgeSet, Graph, EdgeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let mut s = EdgeSet::new(&g);
/// s.insert(EdgeId(0));
/// s.insert(EdgeId(2));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(EdgeId(0)));
/// assert!(!s.contains(EdgeId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSet {
    bits: Vec<u64>,
    universe: usize,
    len: usize,
}

impl EdgeSet {
    /// An empty edge set over the edges of `g`.
    pub fn new(g: &Graph) -> Self {
        Self::with_universe(g.edge_count())
    }

    /// An empty edge set over a universe of `m` edge ids.
    pub fn with_universe(m: usize) -> Self {
        EdgeSet {
            bits: vec![0u64; m.div_ceil(64)],
            universe: m,
            len: 0,
        }
    }

    /// An edge set containing every edge of `g`.
    pub fn full(g: &Graph) -> Self {
        let mut s = Self::new(g);
        for (e, _, _) in g.edges() {
            s.insert(e);
        }
        s
    }

    /// Size of the edge-id universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of edges currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts edge `e`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the universe.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        assert!(e.index() < self.universe, "edge id out of universe");
        let (w, b) = (e.index() / 64, e.index() % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes edge `e`; returns `true` if it was present.
    pub fn remove(&mut self, e: EdgeId) -> bool {
        if e.index() >= self.universe {
            return false;
        }
        let (w, b) = (e.index() / 64, e.index() % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask != 0 {
            self.bits[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Whether edge `e` is in the set.
    pub fn contains(&self, e: EdgeId) -> bool {
        if e.index() >= self.universe {
            return false;
        }
        let (w, b) = (e.index() / 64, e.index() % 64);
        self.bits[w] & (1u64 << b) != 0
    }

    /// Iterator over the edge ids in the set, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            cur: self.bits.first().copied().unwrap_or(0),
        }
    }

    /// In-place union with another edge set over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &EdgeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0usize;
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Materializes the subgraph of `g` containing exactly these edges.
    ///
    /// The vertex set is unchanged; edge ids in the result are renumbered.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s edge count differs from this set's universe.
    pub fn to_graph(&self, g: &Graph) -> Graph {
        assert_eq!(
            g.edge_count(),
            self.universe,
            "edge set does not match graph"
        );
        g.edge_subgraph(|e| self.contains(e))
    }

    /// Builds the adjacency lists of the subgraph *without* renumbering:
    /// `adj[v]` lists neighbors of `v` through edges in the set.
    pub fn adjacency(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        assert_eq!(
            g.edge_count(),
            self.universe,
            "edge set does not match graph"
        );
        let mut adj = vec![Vec::new(); g.node_count()];
        for e in self.iter() {
            let (u, v) = g.endpoints(e);
            adj[u.index()].push(v);
            adj[v.index()].push(u);
        }
        adj
    }
}

/// Iterator over the edge ids in an [`EdgeSet`], created by [`EdgeSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a EdgeSet,
    word: usize,
    cur: u64,
}

impl Iterator for Iter<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(EdgeId((self.word * 64 + b) as u32));
            }
            self.word += 1;
            if self.word >= self.set.bits.len() {
                return None;
            }
            self.cur = self.set.bits[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = EdgeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<EdgeId> for EdgeSet {
    fn extend<T: IntoIterator<Item = EdgeId>>(&mut self, iter: T) {
        for e in iter {
            self.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn insert_remove_contains() {
        let g = path5();
        let mut s = EdgeSet::new(&g);
        assert!(s.is_empty());
        assert!(s.insert(EdgeId(1)));
        assert!(!s.insert(EdgeId(1)));
        assert!(s.contains(EdgeId(1)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(EdgeId(1)));
        assert!(!s.remove(EdgeId(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_in_order() {
        let g = path5();
        let mut s = EdgeSet::new(&g);
        s.insert(EdgeId(3));
        s.insert(EdgeId(0));
        s.insert(EdgeId(2));
        let ids: Vec<u32> = s.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 2, 3]);
    }

    #[test]
    fn full_and_to_graph() {
        let g = path5();
        let s = EdgeSet::full(&g);
        assert_eq!(s.len(), 4);
        let h = s.to_graph(&g);
        assert_eq!(h.edge_count(), 4);
    }

    #[test]
    fn union_with_counts() {
        let g = path5();
        let mut a = EdgeSet::new(&g);
        a.insert(EdgeId(0));
        a.insert(EdgeId(1));
        let mut b = EdgeSet::new(&g);
        b.insert(EdgeId(1));
        b.insert(EdgeId(3));
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(EdgeId(3)));
    }

    #[test]
    fn adjacency_lists() {
        let g = path5();
        let mut s = EdgeSet::new(&g);
        s.insert(EdgeId(0));
        s.insert(EdgeId(3));
        let adj = s.adjacency(&g);
        assert_eq!(adj[0], vec![NodeId(1)]);
        assert_eq!(adj[2], Vec::<NodeId>::new());
        assert_eq!(adj[4], vec![NodeId(3)]);
    }

    #[test]
    fn extend_from_iter() {
        let g = path5();
        let mut s = EdgeSet::new(&g);
        s.extend([EdgeId(0), EdgeId(2)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_universe() {
        let s = EdgeSet::with_universe(0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(EdgeId(0)));
    }

    #[test]
    fn word_boundary() {
        let mut s = EdgeSet::with_universe(130);
        for i in [0u32, 63, 64, 127, 128, 129] {
            s.insert(EdgeId(i));
        }
        let ids: Vec<u32> = s.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 63, 64, 127, 128, 129]);
    }
}
