//! The adaptive flat-frontier distance engine.
//!
//! Every experiment and conformance check ultimately reduces to "many BFS
//! passes over the same graph (or spanner subgraph)". The naive shape — one
//! `VecDeque` BFS over `Vec<Option<u32>>` per source, rebuilding the
//! subgraph adjacency each time — is what capped verification at a few
//! thousand nodes. [`DistanceEngine`] replaces it with:
//!
//! 1. a [`CsrAdjacency`] built **once** per graph or subgraph,
//! 2. **direction-optimizing** single-source BFS (Beamer-style): top-down
//!    frontier pushes over flat `u32` distance arrays with a reusable
//!    visited bitmap, switching to bottom-up unvisited-node sweeps when the
//!    frontier becomes edge-heavy (no `Option`, no `VecDeque`, no
//!    per-source allocation),
//! 3. 64-way **bit-parallel multi-source BFS**: one `u64` seen/frontier
//!    word per node lets a single traversal serve 64 sources at once, so
//!    APSP and stretch verification touch each edge once per 64 sources
//!    instead of once per source,
//! 4. a per-graph [`Strategy`] picker: bit-parallelism pays only when the
//!    64 BFS waves overlap (low-diameter graphs); on high-diameter shapes
//!    (grids, paths, tori) one direction-optimizing BFS per source is
//!    strictly faster. A cheap bounded-BFS probe chooses per graph, with an
//!    explicit override for benches and tests,
//! 5. fan-out of source batches across a [`pool`](crate::pool) worker team,
//!    with **thread-count-independent results**: every output cell is a
//!    pure function of (graph, source index), and workers write disjoint
//!    regions determined by arithmetic, never by timing.
//!
//! The original single-source functions in [`traversal`](crate::traversal)
//! remain as the reference implementations; `tests/engine_parity.rs` keeps
//! the engine byte-identical to them under every strategy and thread count.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::csr::CsrAdjacency;
use crate::distance::UNREACHABLE;
use crate::edgeset::EdgeSet;
use crate::graph::{Graph, NodeId};
use crate::pool::{chunk_range, run_workers};

/// Sentinel source id in [`MultiSourceFlat::source`] for nodes no source
/// reaches (companion to [`UNREACHABLE`] distances).
pub const NO_SOURCE: u32 = u32::MAX;

/// How the batched row entry points ([`DistanceEngine::many_distances`],
/// [`DistanceEngine::rows_into`], [`DistanceEngine::eccentricities`])
/// traverse the graph.
///
/// Bit-parallel multi-source BFS touches each edge once per 64 sources,
/// but a node re-enters the frontier every time a new source's wave
/// reaches it — on high-diameter graphs (grids, paths, tori) the waves
/// never overlap and the 64-way batch degrades to 64 sequential
/// traversals with extra word traffic. Direction-optimizing per-source
/// BFS is the right tool there. The choice never affects results, only
/// wall-clock: every entry point is byte-identical under every strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Probe the graph once (bounded BFS, see
    /// [`DistanceEngine::resolved_strategy`]) and pick per graph. The
    /// default.
    Auto,
    /// Always use 64-way bit-parallel multi-source batches.
    BitParallel,
    /// Always run one direction-optimizing BFS per source.
    DirectionOptimizing,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::Auto => "auto",
            Strategy::BitParallel => "bit-parallel",
            Strategy::DirectionOptimizing => "direction-optimizing",
        })
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Strategy::Auto),
            "bit-parallel" => Ok(Strategy::BitParallel),
            "direction-optimizing" => Ok(Strategy::DirectionOptimizing),
            other => Err(format!(
                "unknown strategy {other:?} (expected auto, bit-parallel, \
                 or direction-optimizing)"
            )),
        }
    }
}

/// Beamer switch: go bottom-up when the frontier's out-edges exceed
/// 1/ALPHA of the edges still incident to unvisited nodes. Gated behind
/// two cheaper preconditions — the frontier must be growing AND cover at
/// least half the undiscovered nodes — because a bottom-up sweep costs a
/// pass over the whole unvisited set: it only pays when most unvisited
/// nodes find a parent within their first few edges, i.e. when the wave
/// about to land covers most of what remains. On lattices the wave peaks
/// at ~√n nodes, the preconditions never hold, and the traversal stays
/// top-down throughout — which is exactly right there.
const ALPHA: usize = 14;
/// Beamer switch: return top-down when the frontier shrinks below n/BETA
/// nodes.
const BETA: usize = 24;
/// [`Strategy::Auto`] probe: a component that a bounded BFS does not
/// exhaust within this many levels counts as high-diameter, and the
/// engine batches per-source instead of bit-parallel. 64 consecutive
/// sources whose waves stay more than ~half a word apart never overlap
/// enough to amortize the word traffic.
const PROBE_DEPTH: u32 = 32;

/// Outcome of a [`DistanceEngine::bottom_up_phase`]: the traversal either
/// drained (the frontier emptied at the contained depth) or thinned below
/// `n / BETA` and hands control back to the top-down loop with its resume
/// state.
enum BuOutcome {
    Done(u32),
    Resume {
        d: u32,
        head: usize,
        level_end: usize,
        prev_len: usize,
        /// Net bottom-up discoveries left unlisted in the visit queue
        /// (discoveries minus the relisted final frontier).
        bu_seen: usize,
    },
}

/// Loop state of [`DistanceEngine::top_down_phase`], carried across the
/// bottom-up excursions: `order[head..]` is the unexpanded frontier, nodes
/// before `level_end` sit at level `d`, `prev_len` is the previous level's
/// width, `bu_seen` counts bottom-up discoveries not listed in `order`,
/// and `unvisited_edges` bounds the half-edges incident to nodes not yet
/// expanded top-down.
struct TdState {
    head: usize,
    level_end: usize,
    d: u32,
    prev_len: usize,
    bu_seen: usize,
    unvisited_edges: usize,
}

/// A reusable distance-computation engine over a fixed adjacency.
///
/// Build once per graph (or per spanner subgraph via
/// [`DistanceEngine::for_subgraph`]), then run as many traversals as
/// needed; the engine itself is immutable (cloning shares nothing but the
/// CSR data and the cached probe verdict), so one instance can be shared
/// across worker threads.
#[derive(Debug, Clone)]
pub struct DistanceEngine {
    csr: CsrAdjacency,
    threads: usize,
    strategy: Strategy,
    /// Cached [`Strategy::Auto`] probe verdict (pure function of the CSR,
    /// so sharing or cloning the cache is always sound).
    resolved: OnceLock<Strategy>,
}

/// Reusable scratch for single-source direction-optimizing BFS: the flat
/// top-down visit queue (`cur`; `next` serves the strategy probe), plus
/// the visited and frontier bitmaps the bottom-up phase works over —
/// `front`/`front_next` sized lazily on the first bottom-up switch, since
/// purely top-down traversals never touch a bitmap.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    seen: Vec<u64>,
    cur: Vec<NodeId>,
    next: Vec<NodeId>,
    front: Vec<u64>,
    front_next: Vec<u64>,
}

impl BfsScratch {
    /// Scratch for an `n`-node engine.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            seen: vec![0u64; n.div_ceil(64)],
            cur: Vec::new(),
            next: Vec::new(),
            front: Vec::new(),
            front_next: Vec::new(),
        }
    }
}

/// Reusable scratch for the strategy-dispatching row entry point
/// [`DistanceEngine::rows_into`]: holds both the bit-parallel and the
/// per-source scratch so either strategy can serve a batch.
#[derive(Debug, Clone)]
pub struct RowsScratch {
    ms: MsBfsScratch,
    ss: BfsScratch,
}

impl RowsScratch {
    /// Scratch for an `n`-node engine.
    pub fn new(n: usize) -> Self {
        RowsScratch {
            ms: MsBfsScratch::new(n),
            ss: BfsScratch::new(n),
        }
    }
}

/// Reusable scratch for 64-way bit-parallel multi-source BFS: one seen /
/// current / next `u64` word per node plus the frontier node lists.
#[derive(Debug, Clone)]
pub struct MsBfsScratch {
    seen: Vec<u64>,
    cur: Vec<u64>,
    next: Vec<u64>,
    frontier: Vec<NodeId>,
    next_frontier: Vec<NodeId>,
    /// Node-major level buffer (`64 * n`, lazily sized) for the batched
    /// row entry points: levels land here contiguously per node during the
    /// traversal, then a cache-tiled transpose streams them into the
    /// row-major output — much cheaper than scattering 64 stride-`n`
    /// writes per node while the BFS runs.
    levels: Vec<u32>,
}

impl MsBfsScratch {
    /// Scratch for an `n`-node engine.
    pub fn new(n: usize) -> Self {
        MsBfsScratch {
            seen: vec![0u64; n],
            cur: vec![0u64; n],
            next: vec![0u64; n],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            levels: Vec::new(),
        }
    }
}

/// Result of [`DistanceEngine::nearest_sources`]: flat-array counterpart of
/// [`MultiSourceBfs`](crate::traversal::MultiSourceBfs).
#[derive(Debug, Clone)]
pub struct MultiSourceFlat {
    /// `dist[v]` is the distance from `v` to its nearest source;
    /// [`UNREACHABLE`] if no source reaches `v`.
    pub dist: Vec<u32>,
    /// `source[v]` is the attributed nearest source id (minimum id among
    /// equidistant sources); [`NO_SOURCE`] if unreached.
    pub source: Vec<u32>,
}

impl DistanceEngine {
    /// An engine over the full adjacency of `g` (single-threaded until
    /// [`DistanceEngine::with_threads`]).
    pub fn new(g: &Graph) -> Self {
        DistanceEngine::from_csr(CsrAdjacency::from_graph(g))
    }

    /// An engine over the subgraph of `g` induced by the edges in `span`.
    pub fn for_subgraph(g: &Graph, span: &EdgeSet) -> Self {
        DistanceEngine::from_csr(CsrAdjacency::from_edge_set(g, span))
    }

    /// An engine over an already-built adjacency.
    pub fn from_csr(csr: CsrAdjacency) -> Self {
        DistanceEngine {
            csr,
            threads: 1,
            strategy: Strategy::Auto,
            resolved: OnceLock::new(),
        }
    }

    /// Sets the worker count for the batched entry points. Results are
    /// identical at every thread count; only wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the batching [`Strategy`] (default [`Strategy::Auto`]).
    /// Results are identical under every strategy; only wall-clock
    /// changes. The override exists for benches and tests.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured strategy (possibly [`Strategy::Auto`]).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The strategy the batched entry points actually use — the
    /// configured one, or for [`Strategy::Auto`] the verdict of a cheap
    /// one-shot probe: a single BFS from the first non-isolated node,
    /// bounded to `PROBE_DEPTH` levels. A component exhausted within
    /// the bound is low-diameter (64-source waves overlap, bit-parallel
    /// wins); a frontier still alive past it marks a high-diameter shape
    /// (per-source direction-optimizing wins). The probe runs at most
    /// once per engine and is a pure function of the adjacency.
    pub fn resolved_strategy(&self) -> Strategy {
        match self.strategy {
            Strategy::Auto => *self.resolved.get_or_init(|| self.probe_strategy()),
            s => s,
        }
    }

    /// The bounded-BFS probe behind [`Strategy::Auto`].
    fn probe_strategy(&self) -> Strategy {
        let n = self.node_count();
        let Some(src) = (0..n).find(|&v| self.csr.degree(NodeId(v as u32)) > 0) else {
            return Strategy::BitParallel; // edgeless: nothing to traverse
        };
        let mut scratch = BfsScratch::new(n);
        scratch.seen[src / 64] |= 1u64 << (src % 64);
        scratch.cur.push(NodeId(src as u32));
        let mut depth = 0u32;
        while !scratch.cur.is_empty() {
            if depth == PROBE_DEPTH {
                return Strategy::DirectionOptimizing;
            }
            depth += 1;
            for &u in &scratch.cur {
                for &v in self.csr.neighbors(u) {
                    let (w, b) = (v.index() / 64, v.index() % 64);
                    if scratch.seen[w] & (1u64 << b) == 0 {
                        scratch.seen[w] |= 1u64 << b;
                        scratch.next.push(v);
                    }
                }
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            scratch.next.clear();
        }
        Strategy::BitParallel
    }

    /// Worker count actually used for `work_items` independent pieces:
    /// never more than the configured threads, the items, or the machine's
    /// available cores — oversubscribing CPU-bound workers only adds
    /// scratch-allocation and scheduling overhead, and results do not
    /// depend on the fan-out.
    fn fanout(&self, work_items: usize) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        self.threads.min(work_items).min(cores).max(1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// The underlying sorted CSR adjacency.
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Single-source distances from `src` ([`UNREACHABLE`] where
    /// disconnected). Allocates its own scratch; for repeated calls use
    /// [`DistanceEngine::distances_into`].
    pub fn distances(&self, src: NodeId) -> Vec<u32> {
        let mut out = vec![UNREACHABLE; self.node_count()];
        let mut scratch = BfsScratch::new(self.node_count());
        self.distances_into(src, &mut scratch, &mut out);
        out
    }

    /// Single-source direction-optimizing BFS from `src` into `out`
    /// (length `n`, overwritten entirely), reusing `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `out` or `scratch` were sized for a different engine.
    pub fn distances_into(&self, src: NodeId, scratch: &mut BfsScratch, out: &mut [u32]) {
        assert_eq!(
            out.len(),
            self.node_count(),
            "output sized for a different engine"
        );
        self.dir_opt_from(src, scratch, out);
    }

    /// The direction-optimizing (Beamer-style) single-source BFS core:
    /// overwrites `dist` entirely ([`UNREACHABLE`] where disconnected)
    /// and returns the eccentricity of `src` within its component.
    ///
    /// The `dist` row doubles as the visited structure: the top-down scan
    /// tests and writes distance cells directly — one load and one store
    /// per discovery, exactly what the queue-based reference pays — and
    /// the visited/frontier *bitmaps* are built only at the moment a
    /// traversal first goes bottom-up. High-diameter shapes, the ones the
    /// picker routes here, stay top-down throughout and never touch a
    /// bitmap.
    ///
    /// Levels expand **top-down** (scan the frontier's out-edges) until the
    /// frontier is *still growing* and edge-heavy — more than `1/ALPHA` of
    /// the half-edges still incident to unvisited nodes — then
    /// **bottom-up**: sweep the unvisited nodes via the seen-bitmap words
    /// and stop at each node's first parent found in the frontier bitmap,
    /// which on dense levels examines a small fraction of the edges a
    /// top-down scan would. The mode is sticky until the frontier shrinks
    /// below `n/BETA` nodes, after which it returns to top-down for the
    /// tail of the traversal. The growing requirement is load-bearing on
    /// lattices: near the end of a grid traversal the edge-heaviness test
    /// stays true on its own, and without it the engine would re-enter
    /// bottom-up on every tail level and re-sweep all unseen nodes each
    /// time. The visit order differs between modes but the level
    /// assignment — and hence everything recorded — does not.
    fn dir_opt_from(&self, src: NodeId, scratch: &mut BfsScratch, dist: &mut [u32]) -> u32 {
        let n = self.node_count();
        let BfsScratch {
            seen,
            cur,
            next,
            front,
            front_next,
        } = scratch;
        assert_eq!(dist.len(), n, "dist row sized for a different engine");
        let order = cur; // flat visit queue: discoveries append, `head` consumes
        order.clear();
        let _ = next; // only the probe uses the second list
        dist.fill(UNREACHABLE);
        dist[src.index()] = 0;
        order.push(src);
        let mut st = TdState {
            head: 0,
            level_end: 1,
            d: 0,
            prev_len: 1,
            bu_seen: 0,
            // Kept from the neighbor-slice lengths the scan loads anyway;
            // nodes expanded bottom-up are never debited, which only
            // overstates the count and so errs toward staying top-down —
            // the cheap side.
            unvisited_edges: self.csr.half_edge_count(),
        };
        loop {
            if !self.top_down_phase(dist, order, &mut st) {
                return st.d;
            }
            match self.bottom_up_phase(dist, order, st.head, seen, front, front_next, st.d) {
                BuOutcome::Done(depth) => return depth,
                BuOutcome::Resume {
                    d,
                    head,
                    level_end,
                    prev_len,
                    bu_seen: delta,
                } => {
                    st.d = d;
                    st.head = head;
                    st.level_end = level_end;
                    st.prev_len = prev_len;
                    st.bu_seen += delta;
                }
            }
        }
    }

    /// The top-down scan of [`Self::dir_opt_from`]: expands `order[head..]`
    /// level by level until the traversal drains (returns `false`) or the
    /// switch gate fires (returns `true`, frontier still listed at
    /// `order[st.head..]`). The two-pointer layout makes the per-node cost
    /// of a level boundary a single index comparison — essential on
    /// high-diameter shapes, where a path of 600 nodes has 599 one-node
    /// levels and any per-level clear/swap dominates. Out-of-line with a
    /// minimal state footprint deliberately: this loop is the whole cost
    /// of the engine on the shapes the picker routes here, and compiling
    /// it as its own small function keeps every loop variable in a
    /// register (folded into `dir_opt_from`, the surrounding phase
    /// machinery forces per-edge stack spills — a measured ~25% slowdown
    /// on mid-size grids).
    #[inline(never)]
    fn top_down_phase(&self, dist: &mut [u32], order: &mut Vec<NodeId>, st: &mut TdState) -> bool {
        let n = dist.len();
        let TdState {
            mut head,
            mut level_end,
            mut d,
            mut prev_len,
            bu_seen,
            mut unvisited_edges,
        } = *st;
        let mut switch = false;
        while head < order.len() {
            if head == level_end {
                // A new (nonempty) level begins.
                d += 1;
                let flen = order.len() - head;
                // Evaluate the switch only on a *growing* frontier that
                // covers at least half the undiscovered nodes: flat
                // traversals (paths, cycles, lattice waves) pay one
                // comparison per level and never the degree sum, and the
                // shrinking tail of a traversal can never re-enter
                // bottom-up and re-sweep the unseen nodes.
                if flen > prev_len
                    && 2 * flen >= n - (order.len() + bu_seen)
                    && self.frontier_is_edge_heavy(&order[head..], unvisited_edges)
                {
                    switch = true;
                    break;
                }
                prev_len = flen;
                level_end = order.len();
            }
            let u = order[head];
            head += 1;
            let nbrs = self.csr.neighbors(u);
            unvisited_edges -= nbrs.len();
            let lvl = d + 1;
            for &v in nbrs {
                let dv = &mut dist[v.index()];
                if *dv == UNREACHABLE {
                    *dv = lvl;
                    order.push(v);
                }
            }
        }
        *st = TdState {
            head,
            level_end,
            d,
            prev_len,
            bu_seen,
            unvisited_edges,
        };
        switch
    }

    /// The edge-heaviness half of the switch gate: is the frontier
    /// incident to more than `unvisited_edges / ALPHA` half-edges?
    /// Out-of-line so the top-down loop never carries the degree-sum code.
    #[inline(never)]
    fn frontier_is_edge_heavy(&self, frontier: &[NodeId], unvisited_edges: usize) -> bool {
        let frontier_edges: usize = frontier.iter().map(|&u| self.csr.degree(u)).sum();
        frontier_edges * ALPHA > unvisited_edges
    }

    /// Bottom-up sweeps for [`Self::dir_opt_from`], entered with the
    /// current frontier listed in `order[head..]` at level `d`. Builds the
    /// visited bitmap from the dist row and the frontier bitmap (lazily —
    /// purely top-down traversals never touch them), then sweeps the
    /// unseen nodes level by level until the traversal drains or the
    /// frontier thins below `n / BETA` and is relisted into `order` for
    /// the top-down tail. Out-of-line (`inline(never)`) deliberately: the
    /// top-down loop is the hot path on high-diameter shapes, and keeping
    /// the sweep's bitmap state out of `dir_opt_from` measurably tightens
    /// its codegen.
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn bottom_up_phase(
        &self,
        dist: &mut [u32],
        order: &mut Vec<NodeId>,
        head: usize,
        seen: &mut [u64],
        front: &mut Vec<u64>,
        front_next: &mut Vec<u64>,
        mut d: u32,
    ) -> BuOutcome {
        let n = dist.len();
        let words = n.div_ceil(64);
        if front.len() != words {
            front.resize(words, 0);
            front_next.resize(words, 0);
        }
        for (w, word) in seen.iter_mut().enumerate() {
            let base = w * 64;
            let mut bits = 0u64;
            for (b, &dv) in dist[base..(base + 64).min(n)].iter().enumerate() {
                bits |= u64::from(dv != UNREACHABLE) << b;
            }
            *word = bits;
        }
        front.fill(0);
        for &u in &order[head..] {
            front[u.index() / 64] |= 1u64 << (u.index() % 64);
        }
        // Nonexistent tail bits of the last seen-word must never read as
        // unvisited nodes.
        let tail_mask = if n.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (n % 64)) - 1
        };
        let mut bu_seen = 0usize;
        loop {
            let lvl = d + 1;
            front_next.fill(0);
            let mut flen = 0usize;
            for w in 0..words {
                let mut unseen = !seen[w];
                if w == words - 1 {
                    unseen &= tail_mask;
                }
                while unseen != 0 {
                    let v = w * 64 + unseen.trailing_zeros() as usize;
                    unseen &= unseen - 1;
                    for &u in self.csr.neighbors(NodeId(v as u32)) {
                        if front[u.index() / 64] >> (u.index() % 64) & 1 == 1 {
                            seen[w] |= 1u64 << (v % 64);
                            front_next[w] |= 1u64 << (v % 64);
                            dist[v] = lvl;
                            bu_seen += 1;
                            flen += 1;
                            break;
                        }
                    }
                }
            }
            std::mem::swap(front, front_next);
            if flen == 0 {
                return BuOutcome::Done(d);
            }
            d = lvl;
            if flen * BETA < n {
                // Thin again: list the frontier back into `order` for the
                // top-down tail. Its nodes are at level `d`, so
                // `level_end` covers the whole relisted region; they move
                // from the `bu_seen` tally into `order.len()`.
                bu_seen -= flen;
                let head = order.len();
                for (w, &word) in front.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let v = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        order.push(NodeId(v as u32));
                    }
                }
                return BuOutcome::Resume {
                    d,
                    head,
                    level_end: order.len(),
                    prev_len: flen,
                    bu_seen,
                };
            }
        }
    }

    /// Distance rows for up to 64 `sources` into `out` (row-major
    /// `sources.len() * n`, overwritten entirely), dispatched through the
    /// resolved [`Strategy`]: one bit-parallel traversal for the whole
    /// batch, or one direction-optimizing BFS per source. The rows are
    /// byte-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() > 64` or the buffer sizes do not match.
    pub fn rows_into(&self, sources: &[NodeId], scratch: &mut RowsScratch, out: &mut [u32]) {
        match self.resolved_strategy() {
            Strategy::DirectionOptimizing => {
                let n = self.node_count();
                assert!(sources.len() <= 64, "at most 64 sources per batch");
                assert_eq!(out.len(), sources.len() * n, "row buffer size mismatch");
                for (&s, row) in sources.iter().zip(out.chunks_exact_mut(n)) {
                    self.distances_into(s, &mut scratch.ss, row);
                }
            }
            _ => self.batch_distances_into(sources, &mut scratch.ms, out),
        }
    }

    /// Core 64-way bit-parallel BFS: source `i` of `sources` owns bit `i`
    /// of every word. `visit(v, bits, level)` fires once per node per level
    /// with the set of sources that first reach `v` at that level.
    fn ms_bfs<F>(&self, sources: &[NodeId], scratch: &mut MsBfsScratch, mut visit: F)
    where
        F: FnMut(usize, u64, u32),
    {
        assert!(sources.len() <= 64, "at most 64 sources per batch");
        let MsBfsScratch {
            seen,
            cur,
            next,
            frontier,
            next_frontier,
            ..
        } = scratch;
        assert_eq!(seen.len(), self.node_count(), "scratch sized for engine");
        seen.fill(0);
        cur.fill(0);
        next.fill(0);
        frontier.clear();
        next_frontier.clear();
        for (i, s) in sources.iter().enumerate() {
            if seen[s.index()] == 0 {
                frontier.push(*s);
            }
            seen[s.index()] |= 1u64 << i;
            cur[s.index()] |= 1u64 << i;
        }
        for &s in frontier.iter() {
            visit(s.index(), cur[s.index()], 0);
        }
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            for &u in frontier.iter() {
                let w = cur[u.index()];
                cur[u.index()] = 0; // consumed; commit refills next level's words
                for &v in self.csr.neighbors(u) {
                    let t = w & !seen[v.index()];
                    if t != 0 {
                        if next[v.index()] == 0 {
                            next_frontier.push(v);
                        }
                        next[v.index()] |= t;
                    }
                }
            }
            // Commit: the accumulate pass masked bits routed through
            // already-seen nodes, but a node can collect the same new bit
            // from several parents — the word is already the union. Nodes
            // whose accumulated bits all went stale stay off the frontier.
            frontier.clear();
            for &v in next_frontier.iter() {
                let new = next[v.index()] & !seen[v.index()];
                next[v.index()] = 0;
                if new != 0 {
                    seen[v.index()] |= new;
                    cur[v.index()] = new;
                    visit(v.index(), new, level);
                    frontier.push(v);
                }
            }
            next_frontier.clear();
        }
    }

    /// Distances from up to 64 `sources` at once into `out` (row-major:
    /// `out[i * n + v]` is the distance from `sources[i]` to `v`;
    /// overwritten entirely), reusing `scratch`. One bit-parallel traversal
    /// serves the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() > 64` or the buffer sizes do not match.
    pub fn batch_distances_into(
        &self,
        sources: &[NodeId],
        scratch: &mut MsBfsScratch,
        out: &mut [u32],
    ) {
        let n = self.node_count();
        let k = sources.len();
        assert_eq!(out.len(), k * n, "row buffer size mismatch");
        // Record levels node-major (64 contiguous slots per node) so the
        // traversal's writes stay local; stale slots are masked by `seen`
        // below, so the buffer needs no clearing between batches.
        let mut levels = std::mem::take(&mut scratch.levels);
        if levels.len() != 64 * n {
            // Zeroed (lazily mapped) allocation — stale values are fine.
            levels = vec![0u32; 64 * n];
        }
        self.ms_bfs(sources, scratch, |v, mut bits, level| {
            let row = &mut levels[v * 64..v * 64 + 64];
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                row[i] = level;
            }
        });
        // Tiled transpose to the row-major output: the level tile stays in
        // cache across the `k` row passes and every output write is part of
        // a short contiguous run. `seen` still holds the final reachability
        // words, masking slots this batch never wrote.
        const TILE: usize = 256;
        let mut v0 = 0;
        while v0 < n {
            let v1 = (v0 + TILE).min(n);
            let seen_tile = &scratch.seen[v0..v1];
            let levels_tile = &levels[v0 * 64..v1 * 64];
            for (i, row) in out.chunks_exact_mut(n).enumerate() {
                for ((dst, &s), lv) in row[v0..v1]
                    .iter_mut()
                    .zip(seen_tile)
                    .zip(levels_tile.chunks_exact(64))
                {
                    *dst = if s >> i & 1 == 1 { lv[i] } else { UNREACHABLE };
                }
            }
            v0 = v1;
        }
        scratch.levels = levels;
    }

    /// Distance rows for arbitrarily many `sources` (row-major,
    /// `sources.len() * n`), batched 64 ways and fanned out across the
    /// engine's worker threads. Row `i` depends only on `sources[i]`, so
    /// the result is identical at every thread count.
    pub fn many_distances(&self, sources: &[NodeId]) -> Vec<u32> {
        let n = self.node_count();
        let len = sources.len();
        // Zeroed (lazily mapped) allocation: every cell is overwritten by
        // its batch's transpose, so no sentinel pre-fill is needed.
        let mut out = vec![0u32; len * n];
        if len == 0 || n == 0 {
            return out;
        }
        if self.resolved_strategy() == Strategy::DirectionOptimizing {
            // One direction-optimizing BFS per source; workers own
            // contiguous source ranges, so every cell is written exactly
            // once by the worker arithmetic assigns it to.
            let t = self.fanout(len);
            if t <= 1 {
                let mut scratch = BfsScratch::new(n);
                for (i, &s) in sources.iter().enumerate() {
                    self.distances_into(s, &mut scratch, &mut out[i * n..(i + 1) * n]);
                }
                return out;
            }
            let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [u32])>> = Vec::with_capacity(t);
            let mut rest: &mut [u32] = &mut out;
            let mut consumed = 0usize;
            for w in 0..t {
                let r = chunk_range(len, t, w);
                let (region, tail) = rest.split_at_mut((r.end - consumed) * n);
                consumed = r.end;
                rest = tail;
                slots.push(Mutex::new((r, region)));
            }
            run_workers(t, |w| {
                let mut guard = slots[w].lock().expect("worker slot");
                let (r, region) = &mut *guard;
                let mut scratch = BfsScratch::new(n);
                for (off, i) in r.clone().enumerate() {
                    self.distances_into(
                        sources[i],
                        &mut scratch,
                        &mut region[off * n..(off + 1) * n],
                    );
                }
            });
            return out;
        }
        // Full-width batches: 64 sources each, so every traversal carries a
        // full word of bit-parallel work. Parallelism comes from spreading
        // whole batches across workers; threads beyond ⌈len/64⌉ idle rather
        // than paying for narrower (more numerous) traversals.
        let nbatches = len.div_ceil(64);
        let t = self.fanout(nbatches);
        if t <= 1 {
            let mut scratch = MsBfsScratch::new(n);
            for b in 0..nbatches {
                let r = chunk_range(len, nbatches, b);
                self.batch_distances_into(
                    &sources[r.clone()],
                    &mut scratch,
                    &mut out[r.start * n..r.end * n],
                );
            }
            return out;
        }
        // Carve the output into one contiguous region per worker, split at
        // batch boundaries; each slot is locked exactly once by its worker.
        let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [u32])>> = Vec::with_capacity(t);
        let mut rest: &mut [u32] = &mut out;
        let mut consumed = 0usize;
        for w in 0..t {
            let batches = chunk_range(nbatches, t, w);
            let hi = chunk_range(len, nbatches, batches.end - 1).end;
            let (region, tail) = rest.split_at_mut((hi - consumed) * n);
            consumed = hi;
            rest = tail;
            slots.push(Mutex::new((batches, region)));
        }
        run_workers(t, |w| {
            let mut guard = slots[w].lock().expect("worker slot");
            let (batches, region) = &mut *guard;
            let base = chunk_range(len, nbatches, batches.start).start;
            let mut scratch = MsBfsScratch::new(n);
            for b in batches.clone() {
                let r = chunk_range(len, nbatches, b);
                self.batch_distances_into(
                    &sources[r.clone()],
                    &mut scratch,
                    &mut region[(r.start - base) * n..(r.end - base) * n],
                );
            }
        });
        out
    }

    /// The full APSP matrix (row-major `n * n`), equivalent to
    /// [`Apsp::new`](crate::distance::Apsp::new) but 64 sources per
    /// traversal and fanned out across the worker threads.
    pub fn apsp_matrix(&self) -> Vec<u32> {
        let sources: Vec<NodeId> = (0..self.node_count() as u32).map(NodeId).collect();
        self.many_distances(&sources)
    }

    /// Eccentricity of every node — the per-source **maximum** BFS level —
    /// without materializing any distance rows, so exact diameters stay
    /// feasible far beyond APSP's O(n²) memory.
    pub fn eccentricities(&self) -> Vec<u32> {
        let n = self.node_count();
        let mut out = vec![0u32; n];
        if n == 0 {
            return out;
        }
        if self.resolved_strategy() == Strategy::DirectionOptimizing {
            // The per-source BFS already returns the max level; one
            // scratch dist row per worker is the only buffer, so exact
            // diameters stay O(n) in memory.
            let t = self.fanout(n);
            let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [u32])>> = Vec::with_capacity(t);
            let mut rest: &mut [u32] = &mut out;
            let mut consumed = 0usize;
            for w in 0..t {
                let r = chunk_range(n, t, w);
                let (region, tail) = rest.split_at_mut(r.end - consumed);
                consumed = r.end;
                rest = tail;
                slots.push(Mutex::new((r, region)));
            }
            run_workers(t, |w| {
                let mut guard = slots[w].lock().expect("worker slot");
                let (r, region) = &mut *guard;
                let mut scratch = BfsScratch::new(n);
                let mut row = vec![0u32; n];
                for (off, s) in r.clone().enumerate() {
                    region[off] = self.dir_opt_from(NodeId(s as u32), &mut scratch, &mut row);
                }
            });
            return out;
        }
        let nbatches = n.div_ceil(64);
        let t = self.fanout(nbatches);
        let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [u32])>> = Vec::with_capacity(t);
        let mut rest: &mut [u32] = &mut out;
        let mut consumed = 0usize;
        for w in 0..t {
            let batches = chunk_range(nbatches, t, w);
            let hi = chunk_range(n, nbatches, batches.end - 1).end;
            let (region, tail) = rest.split_at_mut(hi - consumed);
            consumed = hi;
            rest = tail;
            slots.push(Mutex::new((batches, region)));
        }
        run_workers(t, |w| {
            let mut guard = slots[w].lock().expect("worker slot");
            let (batches, region) = &mut *guard;
            let base = chunk_range(n, nbatches, batches.start).start;
            let mut scratch = MsBfsScratch::new(n);
            for b in batches.clone() {
                let r = chunk_range(n, nbatches, b);
                let sources: Vec<NodeId> = (r.start as u32..r.end as u32).map(NodeId).collect();
                let ecc = &mut region[r.start - base..r.end - base];
                // Levels only grow, so the last write per bit is the max.
                self.ms_bfs(&sources, &mut scratch, |_, mut bits, level| {
                    while bits != 0 {
                        let i = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        ecc[i] = level;
                    }
                });
            }
        });
        out
    }

    /// Exact diameter (max eccentricity over all nodes; for disconnected
    /// graphs, over all components). `None` for graphs with < 2 nodes,
    /// matching [`diameter_exact`](crate::distance::diameter_exact).
    pub fn diameter(&self) -> Option<u32> {
        if self.node_count() < 2 {
            return None;
        }
        self.eccentricities().into_iter().max()
    }

    /// Length of the shortest cycle, or `None` for a forest — the engine
    /// counterpart of [`girth`](crate::girth::girth): one pruned flat BFS
    /// per source, fanned out across the worker threads.
    ///
    /// Workers share the current best cycle length (an upper bound) purely
    /// for pruning; pruning with any valid upper bound never changes the
    /// final minimum, so the result is thread-count-independent.
    pub fn girth(&self) -> Option<u32> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let best = AtomicU32::new(u32::MAX);
        let t = self.fanout(n);
        run_workers(t, |w| {
            let mut dist = vec![UNREACHABLE; n];
            let mut parent = vec![u32::MAX; n];
            let mut cur: Vec<NodeId> = Vec::new();
            let mut next: Vec<NodeId> = Vec::new();
            let mut touched: Vec<u32> = Vec::new();
            for s in chunk_range(n, t, w) {
                debug_assert!(touched.is_empty());
                let s = NodeId(s as u32);
                dist[s.index()] = 0;
                parent[s.index()] = u32::MAX;
                touched.push(s.0);
                cur.clear();
                cur.push(s);
                let mut d = 0u32;
                while !cur.is_empty() {
                    // Cycles through s found at depth >= best/2 cannot
                    // improve on the shared bound.
                    if 2 * d + 1 >= best.load(Ordering::Relaxed) {
                        break;
                    }
                    for &u in &cur {
                        for &v in self.csr.neighbors(u) {
                            if v.0 == parent[u.index()] {
                                continue; // the tree edge (simple graph)
                            }
                            if dist[v.index()] == UNREACHABLE {
                                dist[v.index()] = d + 1;
                                parent[v.index()] = u.0;
                                touched.push(v.0);
                                next.push(v);
                            } else {
                                let len = d + dist[v.index()] + 1;
                                best.fetch_min(len, Ordering::Relaxed);
                            }
                        }
                    }
                    d += 1;
                    std::mem::swap(&mut cur, &mut next);
                    next.clear();
                }
                for &v in &touched {
                    dist[v as usize] = UNREACHABLE;
                }
                touched.clear();
            }
        });
        let g = best.into_inner();
        (g != u32::MAX).then_some(g)
    }

    /// Multi-source BFS with the paper's minimum-id attribution rule —
    /// the flat-array counterpart of
    /// [`multi_source_bfs`](crate::traversal::multi_source_bfs), producing
    /// identical distances and attributions.
    pub fn nearest_sources(&self, sources: &[NodeId]) -> MultiSourceFlat {
        let n = self.node_count();
        let mut dist = vec![UNREACHABLE; n];
        let mut source = vec![NO_SOURCE; n];
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut sorted: Vec<NodeId> = sources.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut frontier_edges = 0usize;
        for &s in &sorted {
            dist[s.index()] = 0;
            source[s.index()] = s.0;
            frontier.push(s);
            frontier_edges += self.csr.degree(s);
        }
        let mut unvisited_edges = self.csr.half_edge_count() - frontier_edges;
        let mut next: Vec<NodeId> = Vec::new();
        let mut d = 0u32;
        while !frontier.is_empty() {
            d += 1;
            // Direction choice, fresh per level (the oracle seeds dense
            // source sets whose first levels swallow most of the graph):
            // bottom-up pays when the frontier is edge-heavy AND wide — a
            // narrow frontier with huge degrees (a star hub, a lollipop
            // head) would make the full unvisited sweep scan nearly every
            // node for a handful of discoveries. The distance array itself
            // is the frontier membership test (`dist == d - 1`), so no
            // bitmap is needed, and the min-over-parents scan below *is*
            // the reference attribution rule — results stay identical to
            // the top-down branch.
            let dense = frontier_edges > unvisited_edges / ALPHA && frontier.len() >= n / BETA;
            if dense {
                for v in 0..n {
                    if dist[v] != UNREACHABLE {
                        continue;
                    }
                    let mut bst = NO_SOURCE;
                    for &u in self.csr.neighbors(NodeId(v as u32)) {
                        if dist[u.index()] == d - 1 && source[u.index()] < bst {
                            bst = source[u.index()];
                        }
                    }
                    if bst != NO_SOURCE {
                        dist[v] = d;
                        source[v] = bst;
                        next.push(NodeId(v as u32));
                    }
                }
            } else {
                // First pass: discover; keep the min-id source among
                // frontier parents seen so far.
                for &u in &frontier {
                    let su = source[u.index()];
                    for &v in self.csr.neighbors(u) {
                        if dist[v.index()] == UNREACHABLE {
                            dist[v.index()] = d;
                            source[v.index()] = su;
                            next.push(v);
                        } else if dist[v.index()] == d && su < source[v.index()] {
                            source[v.index()] = su;
                        }
                    }
                }
                // Second pass: fix attribution against *all* parents,
                // exactly like the reference (a node's best source may
                // arrive via a parent that scanned it after a worse one).
                for &v in &next {
                    let mut bst = source[v.index()];
                    for &u in self.csr.neighbors(v) {
                        if dist[u.index()] == d - 1 && source[u.index()] < bst {
                            bst = source[u.index()];
                        }
                    }
                    source[v.index()] = bst;
                }
            }
            frontier_edges = next.iter().map(|&v| self.csr.degree(v)).sum();
            unvisited_edges -= frontier_edges;
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        MultiSourceFlat { dist, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::{bfs_distances, multi_source_bfs};

    fn flat(expected: &[Option<u32>]) -> Vec<u32> {
        expected.iter().map(|d| d.unwrap_or(UNREACHABLE)).collect()
    }

    #[test]
    fn single_source_matches_reference() {
        let g = generators::erdos_renyi_gnm(80, 200, 7);
        let eng = DistanceEngine::new(&g);
        for s in [NodeId(0), NodeId(41), NodeId(79)] {
            assert_eq!(eng.distances(s), flat(&bfs_distances(&g, s)));
        }
    }

    #[test]
    fn batch_matches_single_source_rows() {
        let g = generators::connected_gnm(70, 210, 3);
        let eng = DistanceEngine::new(&g);
        let sources: Vec<NodeId> = (0..70).map(NodeId).collect();
        let rows = eng.many_distances(&sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows[i * 70..(i + 1) * 70], eng.distances(s), "source {s}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = generators::erdos_renyi_gnm(90, 180, 11); // disconnected bits too
        let sources: Vec<NodeId> = (0..90).map(NodeId).collect();
        let base = DistanceEngine::new(&g).many_distances(&sources);
        let ecc1 = DistanceEngine::new(&g).eccentricities();
        for threads in [2usize, 3, 8] {
            let eng = DistanceEngine::new(&g).with_threads(threads);
            assert_eq!(eng.many_distances(&sources), base, "threads={threads}");
            assert_eq!(eng.eccentricities(), ecc1, "threads={threads}");
            assert_eq!(eng.girth(), DistanceEngine::new(&g).girth());
        }
    }

    #[test]
    fn duplicate_sources_share_a_row() {
        let g = generators::cycle(12);
        let eng = DistanceEngine::new(&g);
        let rows = eng.many_distances(&[NodeId(3), NodeId(3), NodeId(7)]);
        assert_eq!(rows[0..12], rows[12..24]);
        assert_eq!(rows[12..24], eng.distances(NodeId(3))[..]);
        assert_eq!(rows[24..36], eng.distances(NodeId(7))[..]);
    }

    #[test]
    fn subgraph_engine_respects_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut s = EdgeSet::new(&g);
        for (e, u, v) in g.edges() {
            if !(u == NodeId(0) && v == NodeId(3)) {
                s.insert(e);
            }
        }
        let eng = DistanceEngine::for_subgraph(&g, &s);
        assert_eq!(eng.distances(NodeId(0))[3], 3);
        assert_eq!(DistanceEngine::new(&g).distances(NodeId(0))[3], 1);
    }

    #[test]
    fn eccentricities_and_diameter() {
        let g = generators::path(7);
        let eng = DistanceEngine::new(&g);
        assert_eq!(eng.eccentricities(), vec![6, 5, 4, 3, 4, 5, 6]);
        assert_eq!(eng.diameter(), Some(6));
        assert_eq!(DistanceEngine::new(&Graph::empty(1)).diameter(), None);
        assert_eq!(DistanceEngine::new(&Graph::empty(0)).diameter(), None);
    }

    #[test]
    fn girth_basics() {
        assert_eq!(DistanceEngine::new(&generators::path(5)).girth(), None);
        assert_eq!(DistanceEngine::new(&generators::cycle(9)).girth(), Some(9));
        // Petersen graph: girth 5.
        let outer = (0u32..5).map(|i| (i, (i + 1) % 5));
        let inner = (0u32..5).map(|i| (5 + i, 5 + (i + 2) % 5));
        let spokes = (0u32..5).map(|i| (i, i + 5));
        let g = Graph::from_edges(10, outer.chain(inner).chain(spokes));
        assert_eq!(DistanceEngine::new(&g).girth(), Some(5));
    }

    #[test]
    fn nearest_sources_matches_reference() {
        let g = generators::erdos_renyi_gnm(60, 150, 9);
        let eng = DistanceEngine::new(&g);
        let sources = [NodeId(50), NodeId(3), NodeId(17), NodeId(3)];
        let got = eng.nearest_sources(&sources);
        let want = multi_source_bfs(&g, &sources);
        for v in g.nodes() {
            assert_eq!(got.dist[v.index()], flat(&want.dist)[v.index()], "{v}");
            assert_eq!(
                got.source[v.index()],
                want.source[v.index()].map_or(u32::MAX, |s| s.0),
                "{v}"
            );
        }
    }

    #[test]
    fn probe_picks_expected_strategies() {
        // High-diameter shapes: the bounded probe runs out of depth.
        for g in [
            generators::path(200),
            generators::cycle(100),
            generators::grid(40, 40),
            generators::torus(40, 40), // ecc 40 > PROBE_DEPTH (a 30×30 torus, ecc 30, stays bit-parallel)
        ] {
            assert_eq!(
                DistanceEngine::new(&g).resolved_strategy(),
                Strategy::DirectionOptimizing
            );
        }
        // Low-diameter shapes: the probe exhausts the component early.
        for g in [
            generators::star(500),
            generators::erdos_renyi_gnm(200, 800, 1),
            generators::caveman(4, 12, 3, 2),
            Graph::empty(5),
        ] {
            assert_eq!(
                DistanceEngine::new(&g).resolved_strategy(),
                Strategy::BitParallel
            );
        }
        // An explicit override always wins over the probe.
        let eng = DistanceEngine::new(&generators::path(200)).with_strategy(Strategy::BitParallel);
        assert_eq!(eng.strategy(), Strategy::BitParallel);
        assert_eq!(eng.resolved_strategy(), Strategy::BitParallel);
    }

    #[test]
    fn strategy_round_trips_strings() {
        for s in [
            Strategy::Auto,
            Strategy::BitParallel,
            Strategy::DirectionOptimizing,
        ] {
            assert_eq!(s.to_string().parse::<Strategy>(), Ok(s));
        }
        assert!("garbage".parse::<Strategy>().is_err());
    }

    #[test]
    fn strategies_agree_on_all_entry_points() {
        for g in [
            generators::grid(9, 7),
            generators::erdos_renyi_gnm(90, 180, 3), // disconnected bits too
            generators::star(40),
        ] {
            let sources: Vec<NodeId> = g.nodes().collect();
            let auto = DistanceEngine::new(&g);
            let bp = DistanceEngine::new(&g).with_strategy(Strategy::BitParallel);
            let dopt = DistanceEngine::new(&g).with_strategy(Strategy::DirectionOptimizing);
            let want = auto.many_distances(&sources);
            assert_eq!(bp.many_distances(&sources), want);
            assert_eq!(dopt.many_distances(&sources), want);
            assert_eq!(bp.eccentricities(), dopt.eccentricities());
            assert_eq!(bp.diameter(), dopt.diameter());
            // rows_into under both forced strategies.
            let n = g.node_count();
            let batch: Vec<NodeId> = sources.iter().take(64).copied().collect();
            let mut scratch = RowsScratch::new(n);
            let mut rows = vec![0u32; batch.len() * n];
            for eng in [&bp, &dopt] {
                rows.fill(0);
                eng.rows_into(&batch, &mut scratch, &mut rows);
                assert_eq!(rows, want[..batch.len() * n]);
            }
        }
    }

    #[test]
    fn dir_opt_bottom_up_matches_reference_on_dense_levels() {
        // Wide mid-BFS waves push the traversal through the bottom-up
        // branch (including the tail-word masking: 600 % 64 != 0); the
        // distances must not depend on the mode.
        for g in [
            generators::erdos_renyi_gnm(600, 2400, 17),
            generators::caveman(4, 20, 6, 5),
        ] {
            let eng = DistanceEngine::new(&g).with_strategy(Strategy::DirectionOptimizing);
            for s in [NodeId(0), NodeId(17), NodeId(g.node_count() as u32 - 1)] {
                assert_eq!(eng.distances(s), flat(&bfs_distances(&g, s)), "{s}");
            }
        }
    }

    #[test]
    fn nearest_sources_dense_source_sets_match_reference() {
        // Half the nodes as sources triggers the bottom-up level choice.
        let g = generators::erdos_renyi_gnm(150, 600, 21);
        let eng = DistanceEngine::new(&g);
        let sources: Vec<NodeId> = (0..75u32).map(|i| NodeId(i * 2)).collect();
        let got = eng.nearest_sources(&sources);
        let want = multi_source_bfs(&g, &sources);
        assert_eq!(got.dist, flat(&want.dist));
        let want_src: Vec<u32> = want
            .source
            .iter()
            .map(|s| s.map_or(NO_SOURCE, |x| x.0))
            .collect();
        assert_eq!(got.source, want_src);
    }

    #[test]
    fn empty_inputs() {
        let g = generators::cycle(5);
        let eng = DistanceEngine::new(&g);
        assert!(eng.many_distances(&[]).is_empty());
        let none = eng.nearest_sources(&[]);
        assert!(none.dist.iter().all(|&d| d == UNREACHABLE));
        let empty = DistanceEngine::new(&Graph::empty(0));
        assert!(empty.apsp_matrix().is_empty());
        assert_eq!(empty.girth(), None);
    }
}
