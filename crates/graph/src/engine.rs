//! The flat-frontier distance engine.
//!
//! Every experiment and conformance check ultimately reduces to "many BFS
//! passes over the same graph (or spanner subgraph)". The naive shape — one
//! `VecDeque` BFS over `Vec<Option<u32>>` per source, rebuilding the
//! subgraph adjacency each time — is what capped verification at a few
//! thousand nodes. [`DistanceEngine`] replaces it with:
//!
//! 1. a [`CsrAdjacency`] built **once** per graph or subgraph,
//! 2. level-synchronous frontier BFS over flat `u32` distance arrays with a
//!    reusable visited bitmap (no `Option`, no `VecDeque`, no per-source
//!    allocation),
//! 3. 64-way **bit-parallel multi-source BFS**: one `u64` seen/frontier
//!    word per node lets a single traversal serve 64 sources at once, so
//!    APSP and stretch verification touch each edge once per 64 sources
//!    instead of once per source,
//! 4. fan-out of source batches across a [`pool`](crate::pool) worker team,
//!    with **thread-count-independent results**: every output cell is a
//!    pure function of (graph, source index), and workers write disjoint
//!    regions determined by arithmetic, never by timing.
//!
//! The original single-source functions in [`traversal`](crate::traversal)
//! remain as the reference implementations; `tests/engine_parity.rs` keeps
//! the engine byte-identical to them.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::csr::CsrAdjacency;
use crate::distance::UNREACHABLE;
use crate::edgeset::EdgeSet;
use crate::graph::{Graph, NodeId};
use crate::pool::{chunk_range, run_workers};

/// A reusable distance-computation engine over a fixed adjacency.
///
/// Build once per graph (or per spanner subgraph via
/// [`DistanceEngine::for_subgraph`]), then run as many traversals as
/// needed; the engine itself is immutable, so one instance can be shared
/// across worker threads.
#[derive(Debug, Clone)]
pub struct DistanceEngine {
    csr: CsrAdjacency,
    threads: usize,
}

/// Reusable scratch for single-source flat BFS: a visited bitmap plus the
/// current and next frontier lists.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    seen: Vec<u64>,
    cur: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl BfsScratch {
    /// Scratch for an `n`-node engine.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            seen: vec![0u64; n.div_ceil(64)],
            cur: Vec::new(),
            next: Vec::new(),
        }
    }
}

/// Reusable scratch for 64-way bit-parallel multi-source BFS: one seen /
/// current / next `u64` word per node plus the frontier node lists.
#[derive(Debug, Clone)]
pub struct MsBfsScratch {
    seen: Vec<u64>,
    cur: Vec<u64>,
    next: Vec<u64>,
    frontier: Vec<NodeId>,
    next_frontier: Vec<NodeId>,
    /// Node-major level buffer (`64 * n`, lazily sized) for the batched
    /// row entry points: levels land here contiguously per node during the
    /// traversal, then a cache-tiled transpose streams them into the
    /// row-major output — much cheaper than scattering 64 stride-`n`
    /// writes per node while the BFS runs.
    levels: Vec<u32>,
}

impl MsBfsScratch {
    /// Scratch for an `n`-node engine.
    pub fn new(n: usize) -> Self {
        MsBfsScratch {
            seen: vec![0u64; n],
            cur: vec![0u64; n],
            next: vec![0u64; n],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            levels: Vec::new(),
        }
    }
}

/// Result of [`DistanceEngine::nearest_sources`]: flat-array counterpart of
/// [`MultiSourceBfs`](crate::traversal::MultiSourceBfs).
#[derive(Debug, Clone)]
pub struct MultiSourceFlat {
    /// `dist[v]` is the distance from `v` to its nearest source;
    /// [`UNREACHABLE`] if no source reaches `v`.
    pub dist: Vec<u32>,
    /// `source[v]` is the attributed nearest source id (minimum id among
    /// equidistant sources); `u32::MAX` if unreached.
    pub source: Vec<u32>,
}

impl DistanceEngine {
    /// An engine over the full adjacency of `g` (single-threaded until
    /// [`DistanceEngine::with_threads`]).
    pub fn new(g: &Graph) -> Self {
        DistanceEngine::from_csr(CsrAdjacency::from_graph(g))
    }

    /// An engine over the subgraph of `g` induced by the edges in `span`.
    pub fn for_subgraph(g: &Graph, span: &EdgeSet) -> Self {
        DistanceEngine::from_csr(CsrAdjacency::from_edge_set(g, span))
    }

    /// An engine over an already-built adjacency.
    pub fn from_csr(csr: CsrAdjacency) -> Self {
        DistanceEngine { csr, threads: 1 }
    }

    /// Sets the worker count for the batched entry points. Results are
    /// identical at every thread count; only wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker count actually used for `work_items` independent pieces:
    /// never more than the configured threads, the items, or the machine's
    /// available cores — oversubscribing CPU-bound workers only adds
    /// scratch-allocation and scheduling overhead, and results do not
    /// depend on the fan-out.
    fn fanout(&self, work_items: usize) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        self.threads.min(work_items).min(cores).max(1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// The underlying sorted CSR adjacency.
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Single-source distances from `src` ([`UNREACHABLE`] where
    /// disconnected). Allocates its own scratch; for repeated calls use
    /// [`DistanceEngine::distances_into`].
    pub fn distances(&self, src: NodeId) -> Vec<u32> {
        let mut out = vec![UNREACHABLE; self.node_count()];
        let mut scratch = BfsScratch::new(self.node_count());
        self.distances_into(src, &mut scratch, &mut out);
        out
    }

    /// Single-source flat-frontier BFS from `src` into `out`
    /// (length `n`, overwritten entirely), reusing `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `out` or `scratch` were sized for a different engine.
    pub fn distances_into(&self, src: NodeId, scratch: &mut BfsScratch, out: &mut [u32]) {
        let n = self.node_count();
        assert_eq!(out.len(), n, "output sized for a different engine");
        out.fill(UNREACHABLE);
        scratch.seen.fill(0);
        scratch.cur.clear();
        scratch.next.clear();
        scratch.seen[src.index() / 64] |= 1u64 << (src.index() % 64);
        out[src.index()] = 0;
        scratch.cur.push(src);
        let mut d = 0u32;
        while !scratch.cur.is_empty() {
            d += 1;
            for &u in &scratch.cur {
                for &v in self.csr.neighbors(u) {
                    let (w, b) = (v.index() / 64, v.index() % 64);
                    if scratch.seen[w] & (1u64 << b) == 0 {
                        scratch.seen[w] |= 1u64 << b;
                        out[v.index()] = d;
                        scratch.next.push(v);
                    }
                }
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            scratch.next.clear();
        }
    }

    /// Core 64-way bit-parallel BFS: source `i` of `sources` owns bit `i`
    /// of every word. `visit(v, bits, level)` fires once per node per level
    /// with the set of sources that first reach `v` at that level.
    fn ms_bfs<F>(&self, sources: &[NodeId], scratch: &mut MsBfsScratch, mut visit: F)
    where
        F: FnMut(usize, u64, u32),
    {
        assert!(sources.len() <= 64, "at most 64 sources per batch");
        let MsBfsScratch {
            seen,
            cur,
            next,
            frontier,
            next_frontier,
            ..
        } = scratch;
        assert_eq!(seen.len(), self.node_count(), "scratch sized for engine");
        seen.fill(0);
        cur.fill(0);
        next.fill(0);
        frontier.clear();
        next_frontier.clear();
        for (i, s) in sources.iter().enumerate() {
            if seen[s.index()] == 0 {
                frontier.push(*s);
            }
            seen[s.index()] |= 1u64 << i;
            cur[s.index()] |= 1u64 << i;
        }
        for &s in frontier.iter() {
            visit(s.index(), cur[s.index()], 0);
        }
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            for &u in frontier.iter() {
                let w = cur[u.index()];
                cur[u.index()] = 0; // consumed; commit refills next level's words
                for &v in self.csr.neighbors(u) {
                    let t = w & !seen[v.index()];
                    if t != 0 {
                        if next[v.index()] == 0 {
                            next_frontier.push(v);
                        }
                        next[v.index()] |= t;
                    }
                }
            }
            // Commit: the accumulate pass masked bits routed through
            // already-seen nodes, but a node can collect the same new bit
            // from several parents — the word is already the union. Nodes
            // whose accumulated bits all went stale stay off the frontier.
            frontier.clear();
            for &v in next_frontier.iter() {
                let new = next[v.index()] & !seen[v.index()];
                next[v.index()] = 0;
                if new != 0 {
                    seen[v.index()] |= new;
                    cur[v.index()] = new;
                    visit(v.index(), new, level);
                    frontier.push(v);
                }
            }
            next_frontier.clear();
        }
    }

    /// Distances from up to 64 `sources` at once into `out` (row-major:
    /// `out[i * n + v]` is the distance from `sources[i]` to `v`;
    /// overwritten entirely), reusing `scratch`. One bit-parallel traversal
    /// serves the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() > 64` or the buffer sizes do not match.
    pub fn batch_distances_into(
        &self,
        sources: &[NodeId],
        scratch: &mut MsBfsScratch,
        out: &mut [u32],
    ) {
        let n = self.node_count();
        let k = sources.len();
        assert_eq!(out.len(), k * n, "row buffer size mismatch");
        // Record levels node-major (64 contiguous slots per node) so the
        // traversal's writes stay local; stale slots are masked by `seen`
        // below, so the buffer needs no clearing between batches.
        let mut levels = std::mem::take(&mut scratch.levels);
        if levels.len() != 64 * n {
            // Zeroed (lazily mapped) allocation — stale values are fine.
            levels = vec![0u32; 64 * n];
        }
        self.ms_bfs(sources, scratch, |v, mut bits, level| {
            let row = &mut levels[v * 64..v * 64 + 64];
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                row[i] = level;
            }
        });
        // Tiled transpose to the row-major output: the level tile stays in
        // cache across the `k` row passes and every output write is part of
        // a short contiguous run. `seen` still holds the final reachability
        // words, masking slots this batch never wrote.
        const TILE: usize = 256;
        let mut v0 = 0;
        while v0 < n {
            let v1 = (v0 + TILE).min(n);
            let seen_tile = &scratch.seen[v0..v1];
            let levels_tile = &levels[v0 * 64..v1 * 64];
            for (i, row) in out.chunks_exact_mut(n).enumerate() {
                for ((dst, &s), lv) in row[v0..v1]
                    .iter_mut()
                    .zip(seen_tile)
                    .zip(levels_tile.chunks_exact(64))
                {
                    *dst = if s >> i & 1 == 1 { lv[i] } else { UNREACHABLE };
                }
            }
            v0 = v1;
        }
        scratch.levels = levels;
    }

    /// Distance rows for arbitrarily many `sources` (row-major,
    /// `sources.len() * n`), batched 64 ways and fanned out across the
    /// engine's worker threads. Row `i` depends only on `sources[i]`, so
    /// the result is identical at every thread count.
    pub fn many_distances(&self, sources: &[NodeId]) -> Vec<u32> {
        let n = self.node_count();
        let len = sources.len();
        // Zeroed (lazily mapped) allocation: every cell is overwritten by
        // its batch's transpose, so no sentinel pre-fill is needed.
        let mut out = vec![0u32; len * n];
        if len == 0 || n == 0 {
            return out;
        }
        // Full-width batches: 64 sources each, so every traversal carries a
        // full word of bit-parallel work. Parallelism comes from spreading
        // whole batches across workers; threads beyond ⌈len/64⌉ idle rather
        // than paying for narrower (more numerous) traversals.
        let nbatches = len.div_ceil(64);
        let t = self.fanout(nbatches);
        if t <= 1 {
            let mut scratch = MsBfsScratch::new(n);
            for b in 0..nbatches {
                let r = chunk_range(len, nbatches, b);
                self.batch_distances_into(
                    &sources[r.clone()],
                    &mut scratch,
                    &mut out[r.start * n..r.end * n],
                );
            }
            return out;
        }
        // Carve the output into one contiguous region per worker, split at
        // batch boundaries; each slot is locked exactly once by its worker.
        let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [u32])>> = Vec::with_capacity(t);
        let mut rest: &mut [u32] = &mut out;
        let mut consumed = 0usize;
        for w in 0..t {
            let batches = chunk_range(nbatches, t, w);
            let hi = chunk_range(len, nbatches, batches.end - 1).end;
            let (region, tail) = rest.split_at_mut((hi - consumed) * n);
            consumed = hi;
            rest = tail;
            slots.push(Mutex::new((batches, region)));
        }
        run_workers(t, |w| {
            let mut guard = slots[w].lock().expect("worker slot");
            let (batches, region) = &mut *guard;
            let base = chunk_range(len, nbatches, batches.start).start;
            let mut scratch = MsBfsScratch::new(n);
            for b in batches.clone() {
                let r = chunk_range(len, nbatches, b);
                self.batch_distances_into(
                    &sources[r.clone()],
                    &mut scratch,
                    &mut region[(r.start - base) * n..(r.end - base) * n],
                );
            }
        });
        out
    }

    /// The full APSP matrix (row-major `n * n`), equivalent to
    /// [`Apsp::new`](crate::distance::Apsp::new) but 64 sources per
    /// traversal and fanned out across the worker threads.
    pub fn apsp_matrix(&self) -> Vec<u32> {
        let sources: Vec<NodeId> = (0..self.node_count() as u32).map(NodeId).collect();
        self.many_distances(&sources)
    }

    /// Eccentricity of every node — the per-source **maximum** BFS level —
    /// without materializing any distance rows, so exact diameters stay
    /// feasible far beyond APSP's O(n²) memory.
    pub fn eccentricities(&self) -> Vec<u32> {
        let n = self.node_count();
        let mut out = vec![0u32; n];
        if n == 0 {
            return out;
        }
        let nbatches = n.div_ceil(64);
        let t = self.fanout(nbatches);
        let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [u32])>> = Vec::with_capacity(t);
        let mut rest: &mut [u32] = &mut out;
        let mut consumed = 0usize;
        for w in 0..t {
            let batches = chunk_range(nbatches, t, w);
            let hi = chunk_range(n, nbatches, batches.end - 1).end;
            let (region, tail) = rest.split_at_mut(hi - consumed);
            consumed = hi;
            rest = tail;
            slots.push(Mutex::new((batches, region)));
        }
        run_workers(t, |w| {
            let mut guard = slots[w].lock().expect("worker slot");
            let (batches, region) = &mut *guard;
            let base = chunk_range(n, nbatches, batches.start).start;
            let mut scratch = MsBfsScratch::new(n);
            for b in batches.clone() {
                let r = chunk_range(n, nbatches, b);
                let sources: Vec<NodeId> = (r.start as u32..r.end as u32).map(NodeId).collect();
                let ecc = &mut region[r.start - base..r.end - base];
                // Levels only grow, so the last write per bit is the max.
                self.ms_bfs(&sources, &mut scratch, |_, mut bits, level| {
                    while bits != 0 {
                        let i = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        ecc[i] = level;
                    }
                });
            }
        });
        out
    }

    /// Exact diameter (max eccentricity over all nodes; for disconnected
    /// graphs, over all components). `None` for graphs with < 2 nodes,
    /// matching [`diameter_exact`](crate::distance::diameter_exact).
    pub fn diameter(&self) -> Option<u32> {
        if self.node_count() < 2 {
            return None;
        }
        self.eccentricities().into_iter().max()
    }

    /// Length of the shortest cycle, or `None` for a forest — the engine
    /// counterpart of [`girth`](crate::girth::girth): one pruned flat BFS
    /// per source, fanned out across the worker threads.
    ///
    /// Workers share the current best cycle length (an upper bound) purely
    /// for pruning; pruning with any valid upper bound never changes the
    /// final minimum, so the result is thread-count-independent.
    pub fn girth(&self) -> Option<u32> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let best = AtomicU32::new(u32::MAX);
        let t = self.fanout(n);
        run_workers(t, |w| {
            let mut dist = vec![u32::MAX; n];
            let mut parent = vec![u32::MAX; n];
            let mut cur: Vec<NodeId> = Vec::new();
            let mut next: Vec<NodeId> = Vec::new();
            let mut touched: Vec<u32> = Vec::new();
            for s in chunk_range(n, t, w) {
                debug_assert!(touched.is_empty());
                let s = NodeId(s as u32);
                dist[s.index()] = 0;
                parent[s.index()] = u32::MAX;
                touched.push(s.0);
                cur.clear();
                cur.push(s);
                let mut d = 0u32;
                while !cur.is_empty() {
                    // Cycles through s found at depth >= best/2 cannot
                    // improve on the shared bound.
                    if 2 * d + 1 >= best.load(Ordering::Relaxed) {
                        break;
                    }
                    for &u in &cur {
                        for &v in self.csr.neighbors(u) {
                            if v.0 == parent[u.index()] {
                                continue; // the tree edge (simple graph)
                            }
                            if dist[v.index()] == u32::MAX {
                                dist[v.index()] = d + 1;
                                parent[v.index()] = u.0;
                                touched.push(v.0);
                                next.push(v);
                            } else {
                                let len = d + dist[v.index()] + 1;
                                best.fetch_min(len, Ordering::Relaxed);
                            }
                        }
                    }
                    d += 1;
                    std::mem::swap(&mut cur, &mut next);
                    next.clear();
                }
                for &v in &touched {
                    dist[v as usize] = u32::MAX;
                }
                touched.clear();
            }
        });
        let g = best.into_inner();
        (g != u32::MAX).then_some(g)
    }

    /// Multi-source BFS with the paper's minimum-id attribution rule —
    /// the flat-array counterpart of
    /// [`multi_source_bfs`](crate::traversal::multi_source_bfs), producing
    /// identical distances and attributions.
    pub fn nearest_sources(&self, sources: &[NodeId]) -> MultiSourceFlat {
        let n = self.node_count();
        let mut dist = vec![UNREACHABLE; n];
        let mut source = vec![u32::MAX; n];
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut sorted: Vec<NodeId> = sources.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &s in &sorted {
            dist[s.index()] = 0;
            source[s.index()] = s.0;
            frontier.push(s);
        }
        let mut next: Vec<NodeId> = Vec::new();
        let mut d = 0u32;
        while !frontier.is_empty() {
            d += 1;
            // First pass: discover; keep the min-id source among frontier
            // parents seen so far.
            for &u in &frontier {
                let su = source[u.index()];
                for &v in self.csr.neighbors(u) {
                    if dist[v.index()] == UNREACHABLE {
                        dist[v.index()] = d;
                        source[v.index()] = su;
                        next.push(v);
                    } else if dist[v.index()] == d && su < source[v.index()] {
                        source[v.index()] = su;
                    }
                }
            }
            // Second pass: fix attribution against *all* parents, exactly
            // like the reference (a node's best source may arrive via a
            // parent that scanned it after a worse one).
            for &v in &next {
                let mut bst = source[v.index()];
                for &u in self.csr.neighbors(v) {
                    if dist[u.index()] == d - 1 && source[u.index()] < bst {
                        bst = source[u.index()];
                    }
                }
                source[v.index()] = bst;
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        MultiSourceFlat { dist, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::{bfs_distances, multi_source_bfs};

    fn flat(expected: &[Option<u32>]) -> Vec<u32> {
        expected.iter().map(|d| d.unwrap_or(UNREACHABLE)).collect()
    }

    #[test]
    fn single_source_matches_reference() {
        let g = generators::erdos_renyi_gnm(80, 200, 7);
        let eng = DistanceEngine::new(&g);
        for s in [NodeId(0), NodeId(41), NodeId(79)] {
            assert_eq!(eng.distances(s), flat(&bfs_distances(&g, s)));
        }
    }

    #[test]
    fn batch_matches_single_source_rows() {
        let g = generators::connected_gnm(70, 210, 3);
        let eng = DistanceEngine::new(&g);
        let sources: Vec<NodeId> = (0..70).map(NodeId).collect();
        let rows = eng.many_distances(&sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows[i * 70..(i + 1) * 70], eng.distances(s), "source {s}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = generators::erdos_renyi_gnm(90, 180, 11); // disconnected bits too
        let sources: Vec<NodeId> = (0..90).map(NodeId).collect();
        let base = DistanceEngine::new(&g).many_distances(&sources);
        let ecc1 = DistanceEngine::new(&g).eccentricities();
        for threads in [2usize, 3, 8] {
            let eng = DistanceEngine::new(&g).with_threads(threads);
            assert_eq!(eng.many_distances(&sources), base, "threads={threads}");
            assert_eq!(eng.eccentricities(), ecc1, "threads={threads}");
            assert_eq!(eng.girth(), DistanceEngine::new(&g).girth());
        }
    }

    #[test]
    fn duplicate_sources_share_a_row() {
        let g = generators::cycle(12);
        let eng = DistanceEngine::new(&g);
        let rows = eng.many_distances(&[NodeId(3), NodeId(3), NodeId(7)]);
        assert_eq!(rows[0..12], rows[12..24]);
        assert_eq!(rows[12..24], eng.distances(NodeId(3))[..]);
        assert_eq!(rows[24..36], eng.distances(NodeId(7))[..]);
    }

    #[test]
    fn subgraph_engine_respects_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut s = EdgeSet::new(&g);
        for (e, u, v) in g.edges() {
            if !(u == NodeId(0) && v == NodeId(3)) {
                s.insert(e);
            }
        }
        let eng = DistanceEngine::for_subgraph(&g, &s);
        assert_eq!(eng.distances(NodeId(0))[3], 3);
        assert_eq!(DistanceEngine::new(&g).distances(NodeId(0))[3], 1);
    }

    #[test]
    fn eccentricities_and_diameter() {
        let g = generators::path(7);
        let eng = DistanceEngine::new(&g);
        assert_eq!(eng.eccentricities(), vec![6, 5, 4, 3, 4, 5, 6]);
        assert_eq!(eng.diameter(), Some(6));
        assert_eq!(DistanceEngine::new(&Graph::empty(1)).diameter(), None);
        assert_eq!(DistanceEngine::new(&Graph::empty(0)).diameter(), None);
    }

    #[test]
    fn girth_basics() {
        assert_eq!(DistanceEngine::new(&generators::path(5)).girth(), None);
        assert_eq!(DistanceEngine::new(&generators::cycle(9)).girth(), Some(9));
        // Petersen graph: girth 5.
        let outer = (0u32..5).map(|i| (i, (i + 1) % 5));
        let inner = (0u32..5).map(|i| (5 + i, 5 + (i + 2) % 5));
        let spokes = (0u32..5).map(|i| (i, i + 5));
        let g = Graph::from_edges(10, outer.chain(inner).chain(spokes));
        assert_eq!(DistanceEngine::new(&g).girth(), Some(5));
    }

    #[test]
    fn nearest_sources_matches_reference() {
        let g = generators::erdos_renyi_gnm(60, 150, 9);
        let eng = DistanceEngine::new(&g);
        let sources = [NodeId(50), NodeId(3), NodeId(17), NodeId(3)];
        let got = eng.nearest_sources(&sources);
        let want = multi_source_bfs(&g, &sources);
        for v in g.nodes() {
            assert_eq!(got.dist[v.index()], flat(&want.dist)[v.index()], "{v}");
            assert_eq!(
                got.source[v.index()],
                want.source[v.index()].map_or(u32::MAX, |s| s.0),
                "{v}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let g = generators::cycle(5);
        let eng = DistanceEngine::new(&g);
        assert!(eng.many_distances(&[]).is_empty());
        let none = eng.nearest_sources(&[]);
        assert!(none.dist.iter().all(|&d| d == UNREACHABLE));
        let empty = DistanceEngine::new(&Graph::empty(0));
        assert!(empty.apsp_matrix().is_empty());
        assert_eq!(empty.girth(), None);
    }
}
