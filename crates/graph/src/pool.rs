//! Shared threading idiom: barrier-parked worker pools.
//!
//! The netsim parallel executor established the pattern — spawn a scoped
//! worker pool **once**, park the workers on a pair of round barriers, and
//! release them with a stop flag when the run ends — so the steady-state
//! loop never spawns threads. The distance engine needs the same idiom, so
//! the reusable part lives here: [`RoundGate`] is the barrier pair + stop
//! flag, and [`run_workers`] is the simpler fork-join shape for one-shot
//! parallel regions (one spawn, one unit of work per worker).
//!
//! Determinism note: neither helper imposes an ordering by itself — callers
//! keep results thread-count-independent by giving each worker a disjoint
//! output region that is a pure function of the worker index.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// The round-synchronization core of a persistent barrier-parked pool:
/// a start barrier, a finish barrier, and a stop flag.
///
/// Workers loop `while gate.worker_begin() { work(); gate.worker_end(); }`;
/// the coordinator brackets each round with [`RoundGate::open`] /
/// [`RoundGate::close`] and ends the run with [`RoundGate::shutdown`].
#[derive(Debug)]
pub struct RoundGate {
    start: Barrier,
    finish: Barrier,
    stop: AtomicBool,
}

impl RoundGate {
    /// A gate synchronizing `workers` worker threads with one coordinator.
    pub fn new(workers: usize) -> Self {
        RoundGate {
            start: Barrier::new(workers + 1),
            finish: Barrier::new(workers + 1),
            stop: AtomicBool::new(false),
        }
    }

    /// Worker side: park until the coordinator opens the next round.
    /// Returns `false` when the run is over and the worker should exit.
    pub fn worker_begin(&self) -> bool {
        self.start.wait();
        !self.stop.load(Ordering::Acquire)
    }

    /// Worker side: signal that this worker finished the current round.
    pub fn worker_end(&self) {
        self.finish.wait();
    }

    /// Coordinator side: release the workers into the next round.
    pub fn open(&self) {
        self.start.wait();
    }

    /// Coordinator side: wait for every worker to finish the round.
    pub fn close(&self) {
        self.finish.wait();
    }

    /// Coordinator side: raise the stop flag and release the parked
    /// workers so they observe it and exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.start.wait();
    }
}

/// One-shot fork-join: runs `work(w)` for every worker index `w` in
/// `0..threads` on scoped threads, returning when all are done.
///
/// `threads <= 1` runs inline with no spawn at all, so single-threaded
/// callers pay nothing. The closure decides what worker `w` does — for
/// deterministic results it should write only to an output region derived
/// from `w`, never to shared state whose final value depends on timing.
pub fn run_workers<F>(threads: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 {
        work(0);
        return;
    }
    std::thread::scope(|scope| {
        for w in 0..threads {
            let work = &work;
            scope.spawn(move || work(w));
        }
    });
}

/// Splits `0..len` into `parts` contiguous chunks as evenly as possible;
/// returns the half-open range of chunk `i`.
///
/// The first `len % parts` chunks get one extra element, so the split — and
/// therefore any per-chunk output — is a pure function of `(len, parts, i)`
/// regardless of which thread processes which chunk.
pub fn chunk_range(len: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(parts >= 1 && i < parts);
    let base = len / parts;
    let extra = len % parts;
    let lo = i * base + i.min(extra);
    let hi = lo + base + usize::from(i < extra);
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_workers_covers_all_indices() {
        for threads in [1usize, 2, 5] {
            let hits = AtomicUsize::new(0);
            run_workers(threads, |w| {
                assert!(w < threads);
                hits.fetch_add(1 << (4 * w), Ordering::Relaxed);
            });
            let expect: usize = (0..threads).map(|w| 1usize << (4 * w)).sum();
            assert_eq!(hits.load(Ordering::Relaxed), expect);
        }
    }

    #[test]
    fn chunk_ranges_partition() {
        for len in [0usize, 1, 7, 64, 65, 100] {
            for parts in [1usize, 2, 3, 8] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for i in 0..parts {
                    let r = chunk_range(len, parts, i);
                    assert_eq!(r.start, prev_end, "len={len} parts={parts} i={i}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn round_gate_runs_rounds_and_shuts_down() {
        let workers = 3usize;
        let gate = RoundGate::new(workers);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (gate, counter) = (&gate, &counter);
                scope.spawn(move || {
                    while gate.worker_begin() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        gate.worker_end();
                    }
                });
            }
            for round in 1..=4usize {
                gate.open();
                gate.close();
                assert_eq!(counter.load(Ordering::Relaxed), round * workers);
            }
            gate.shutdown();
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * workers);
    }
}
