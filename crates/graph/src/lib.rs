//! Graph substrate for the ultrasparse-spanners reproduction.
//!
//! This crate provides everything the spanner algorithms of
//! Pettie (PODC 2008) need from a graph library, implemented from scratch:
//!
//! * [`Graph`]: a compact undirected simple graph with stable edge
//!   identifiers and a CSR-like adjacency layout,
//! * [`EdgeSet`]: a subgraph-as-edge-subset representation used for spanners,
//! * seeded, deterministic random [`generators`],
//! * [`traversal`]: BFS in several flavors (bounded, multi-source, trees),
//! * [`distance`]: exact and sampled distance computations, eccentricities,
//!   diameter, stretch evaluation helpers,
//! * [`girth`] computation and [`components`] (union-find / connectivity),
//! * [`weighted`]: positively weighted graphs with Dijkstra (for the
//!   weighted Baswana–Sen row of Fig. 1).
//!
//! All randomized functions take explicit `u64` seeds; given equal seeds the
//! output is bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use spanner_graph::{generators, traversal, NodeId};
//!
//! let g = generators::erdos_renyi_gnm(500, 2000, 42);
//! let dist = traversal::bfs_distances(&g, NodeId(0));
//! assert_eq!(dist[0], Some(0));
//! ```

pub mod components;
pub mod distance;
pub mod edgeset;
pub mod generators;
pub mod girth;
pub mod graph;
pub mod metrics;
pub mod traversal;
pub mod weighted;

pub use distance::{
    verify_stretch_exact, verify_stretch_exact_weighted, StretchBound, StretchViolation,
};
pub use edgeset::EdgeSet;
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
