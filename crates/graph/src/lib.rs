//! Graph substrate for the ultrasparse-spanners reproduction.
//!
//! This crate provides everything the spanner algorithms of
//! Pettie (PODC 2008) need from a graph library, implemented from scratch:
//!
//! * [`Graph`]: a compact undirected simple graph with stable edge
//!   identifiers and a CSR-like adjacency layout,
//! * [`EdgeSet`]: a subgraph-as-edge-subset representation used for spanners,
//! * seeded, deterministic random [`generators`],
//! * [`traversal`]: BFS in several flavors (bounded, multi-source, trees),
//! * [`distance`]: exact and sampled distance computations, eccentricities,
//!   diameter, stretch evaluation helpers,
//! * [`girth`] computation and [`components`] (union-find / connectivity),
//! * [`engine`]: the flat-frontier, 64-way bit-parallel distance engine
//!   all verification and experiment code routes through, backed by the
//!   shared [`csr`] adjacency layout and the [`pool`] worker-team idiom,
//! * [`weighted`]: positively weighted graphs with Dijkstra (for the
//!   weighted Baswana–Sen row of Fig. 1).
//!
//! All randomized functions take explicit `u64` seeds; given equal seeds the
//! output is bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use spanner_graph::{generators, traversal, NodeId};
//!
//! let g = generators::erdos_renyi_gnm(500, 2000, 42);
//! let dist = traversal::bfs_distances(&g, NodeId(0));
//! assert_eq!(dist[0], Some(0));
//! ```

pub mod components;
pub mod csr;
pub mod distance;
pub mod edgeset;
pub mod engine;
pub mod generators;
pub mod girth;
pub mod graph;
pub mod metrics;
pub mod pool;
pub mod traversal;
pub mod weighted;

pub use csr::{CsrAdjacency, CsrEdgeIndex, CsrPartsError, CsrSizeError, LinkedAdjacency};
pub use distance::{
    verify_stretch_exact, verify_stretch_exact_weighted, StretchBound, StretchViolation,
};
pub use edgeset::EdgeSet;
pub use engine::{DistanceEngine, Strategy, NO_SOURCE};
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
