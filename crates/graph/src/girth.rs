//! Girth computation.
//!
//! The classical route to a linear-size spanner (Althöfer et al.) keeps a
//! subgraph with girth > 2k; the tests use girth to validate the greedy
//! baseline and the benches use it to contrast the paper's approach, which
//! *"guarantees sparseness without disallowing short cycles"* (Sect. 2).

use std::collections::VecDeque;

use crate::distance::UNREACHABLE;
use crate::graph::{EdgeId, Graph, NodeId};

/// Length of the shortest cycle in `g`, or `None` if `g` is a forest.
///
/// Delegates to the flat-frontier engine: one pruned BFS per vertex —
/// the standard O(n·m) exact algorithm — over the shared CSR layout.
/// Girth is inherently per-source work (the shared-bound pruning and
/// non-tree-edge detection have no bit-parallel or bottom-up analogue), so
/// it is unaffected by the engine's [`Strategy`](crate::engine::Strategy)
/// picker: it already runs in the per-source mode on every graph.
pub fn girth(g: &Graph) -> Option<u32> {
    crate::engine::DistanceEngine::new(g).girth()
}

/// The original `VecDeque`-based girth computation, kept as the reference
/// implementation for the engine parity suite.
pub fn girth_reference(g: &Graph) -> Option<u32> {
    let mut best: Option<u32> = None;
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut via = vec![EdgeId(u32::MAX); n];
    for s in g.nodes() {
        dist.fill(UNREACHABLE);
        let mut queue = VecDeque::new();
        dist[s.index()] = 0;
        via[s.index()] = EdgeId(u32::MAX);
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if let Some(b) = best {
                // Cycles through s found at depth >= b/2 cannot improve.
                if 2 * du + 1 >= b {
                    break;
                }
            }
            for &(v, e) in g.neighbors(u) {
                if e == via[u.index()] {
                    continue; // don't walk back along the tree edge
                }
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    via[v.index()] = e;
                    queue.push_back(v);
                } else {
                    // Found a cycle through s of length dist(u) + dist(v) + 1.
                    let len = du + dist[v.index()] + 1;
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
            }
        }
    }
    best
}

/// Whether `g` has girth strictly greater than `k` (true for forests).
pub fn girth_exceeds(g: &Graph, k: u32) -> bool {
    girth(g).is_none_or(|gth| gth > k)
}

/// Whether adding edge `{u, v}` to `g` would create a cycle of length at
/// most `k` — i.e. whether `dist_g(u, v) <= k - 1`. This is the greedy
/// spanner's acceptance test, run *before* insertion.
pub fn closes_short_cycle(g: &Graph, u: NodeId, v: NodeId, k: u32) -> bool {
    if k == 0 {
        return false;
    }
    let d = crate::traversal::bfs_distances_bounded(g, u, k - 1);
    d[v.index()].is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_has_no_girth() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(girth(&g), None);
        assert!(girth_exceeds(&g, 1_000_000));
    }

    #[test]
    fn triangle_girth_three() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(girth(&g), Some(3));
        assert!(!girth_exceeds(&g, 3));
        assert!(girth_exceeds(&g, 2));
    }

    #[test]
    fn cycle_girth_is_length() {
        for n in [4u32, 5, 9, 16] {
            let g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)));
            assert_eq!(girth(&g), Some(n));
        }
    }

    #[test]
    fn theta_graph_girth() {
        // Two vertices joined by paths of lengths 2, 3, 4: girth = 2+3 = 5.
        // 0 -a- 1; paths 0-2-1, 0-3-4-1, 0-5-6-7-1
        let g = Graph::from_edges(
            8,
            [
                (0, 2),
                (2, 1),
                (0, 3),
                (3, 4),
                (4, 1),
                (0, 5),
                (5, 6),
                (6, 7),
                (7, 1),
            ],
        );
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn petersen_girth_five() {
        // Petersen graph: outer 5-cycle, inner pentagram, spokes.
        let outer = (0u32..5).map(|i| (i, (i + 1) % 5));
        let inner = (0u32..5).map(|i| (5 + i, 5 + (i + 2) % 5));
        let spokes = (0u32..5).map(|i| (i, i + 5));
        let g = Graph::from_edges(10, outer.chain(inner).chain(spokes));
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn engine_girth_matches_reference_on_random_graphs() {
        for seed in 0..8u64 {
            let g = crate::generators::erdos_renyi_gnm(60, 40 + 15 * seed as usize, seed);
            assert_eq!(girth(&g), girth_reference(&g), "seed {seed}");
        }
    }

    #[test]
    fn multigraph_style_parallel_paths() {
        // Two vertices joined by two length-2 paths: girth 4.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)]);
        assert_eq!(girth(&g), Some(4));
    }

    #[test]
    fn closes_short_cycle_test() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        // adding 0-3 closes a 4-cycle
        assert!(closes_short_cycle(&g, NodeId(0), NodeId(3), 4));
        assert!(!closes_short_cycle(&g, NodeId(0), NodeId(3), 3));
        assert!(!closes_short_cycle(&g, NodeId(0), NodeId(3), 0));
    }
}
