//! Summary statistics over graphs and subgraphs.
//!
//! Used by the bench harness to print the workload columns of each table
//! (n, m, density, degree profile) alongside the measured spanner columns.

use crate::edgeset::EdgeSet;
use crate::graph::Graph;

/// Basic size/degree summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree 2m/n.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Edges per node, m/n — the "nominal density" unit the paper uses.
    pub edges_per_node: f64,
}

impl GraphStats {
    /// Computes stats for `g`.
    pub fn of(g: &Graph) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        GraphStats {
            nodes: n,
            edges: m,
            avg_degree: g.average_degree(),
            max_degree: g.max_degree(),
            edges_per_node: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_deg={} m/n={:.2}",
            self.nodes, self.edges, self.avg_degree, self.max_degree, self.edges_per_node
        )
    }
}

/// Size of a subgraph relative to its host: |S|, |S|/n and |S|/m.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubgraphSize {
    /// Number of edges kept.
    pub edges: usize,
    /// Edges kept per host node (the paper reports sizes as c·n).
    pub per_node: f64,
    /// Fraction of host edges kept.
    pub fraction: f64,
}

/// Measures `span` relative to `g`.
pub fn subgraph_size(g: &Graph, span: &EdgeSet) -> SubgraphSize {
    let n = g.node_count().max(1);
    let m = g.edge_count().max(1);
    SubgraphSize {
        edges: span.len(),
        per_node: span.len() as f64 / n as f64,
        fraction: span.len() as f64 / m as f64,
    }
}

/// Degree histogram: `hist[d]` counts nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeId, Graph};

    #[test]
    fn stats_of_cycle() {
        let g = crate::generators::cycle(10);
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 10);
        assert_eq!(s.avg_degree, 2.0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.edges_per_node, 1.0);
        assert!(s.to_string().contains("n=10"));
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::of(&Graph::empty(0));
        assert_eq!(s.edges_per_node, 0.0);
    }

    #[test]
    fn subgraph_size_ratios() {
        let g = crate::generators::path(5);
        let mut s = crate::EdgeSet::new(&g);
        s.insert(EdgeId(0));
        s.insert(EdgeId(1));
        let z = subgraph_size(&g, &s);
        assert_eq!(z.edges, 2);
        assert!((z.per_node - 0.4).abs() < 1e-12);
        assert!((z.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_star() {
        let g = crate::generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }
}
