//! Seeded random and structured graph generators.
//!
//! These are the workloads of the experiment suite. Every generator is
//! deterministic in its `seed` argument; structured families take no seed.
//!
//! Random families:
//! * [`erdos_renyi_gnp`] / [`erdos_renyi_gnm`] — the classic G(n, p) and
//!   G(n, m) models (the main workload; the paper's guarantees hold for all
//!   graphs, ER exercises the "typical" case),
//! * [`random_regular`] — d-regular multigraph-free graphs via pairing with
//!   retries (degree-homogeneous workloads),
//! * [`preferential_attachment`] — Barabási–Albert style heavy-tailed degree
//!   distributions (stress for the `q > 4 s_i ln n` abort rule of Thm. 2),
//! * [`caveman`] — dense clusters with sparse inter-cluster links (stress
//!   for clustering-based constructions).
//!
//! Structured families: [`path`], [`cycle`], [`star`], [`complete`],
//! [`complete_bipartite`], [`grid`], [`torus`], [`hypercube`].

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::csr::CsrAdjacency;
use crate::graph::{Graph, GraphBuilder, NodeId};

/// Erdős–Rényi G(n, p): each of the n(n−1)/2 edges present independently
/// with probability `p`.
///
/// Uses geometric skipping, so the cost is O(n + m) rather than O(n²).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut b = GraphBuilder::new(n);
    if p > 0.0 && n >= 2 {
        let mut rng = SmallRng::seed_from_u64(seed);
        if p >= 1.0 {
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    b.add_edge(NodeId(u), NodeId(v));
                }
            }
        } else {
            // Iterate over the implicit list of all pairs with geometric jumps.
            let total = n as u64 * (n as u64 - 1) / 2;
            let log_q = (1.0 - p).ln();
            let mut idx: u64 = 0;
            loop {
                let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (r.ln() / log_q).floor() as u64;
                idx = idx.saturating_add(skip);
                if idx >= total {
                    break;
                }
                let (u, v) = pair_from_index(idx, n as u64);
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
                idx += 1;
            }
        }
    }
    b.build()
}

/// Maps a linear index into the ordered list of pairs (u, v), u < v.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by scan-free math:
    // offset(u) = u*(2n - u - 1)/2. Invert with floating point then fix up.
    let mut u =
        ((2.0 * n as f64 - 1.0 - ((2.0 * n as f64 - 1.0).powi(2) - 8.0 * idx as f64).sqrt()) / 2.0)
            .floor() as u64;
    // Guard against floating point error.
    while offset(u + 1, n) <= idx {
        u += 1;
    }
    while offset(u, n) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - offset(u, n));
    (u, v)
}

fn offset(u: u64, n: u64) -> u64 {
    u * (2 * n - u - 1) / 2
}

/// Erdős–Rényi G(n, m): exactly `m` distinct edges chosen uniformly.
///
/// # Panics
///
/// Panics if `m` exceeds n(n−1)/2.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    Graph::from_edges(n, gnm_edges(n, m, seed))
}

/// [`erdos_renyi_gnm`] built straight into a [`CsrAdjacency`] (identical
/// RNG stream, so the same seed yields the same graph) — no intermediate
/// [`Graph`], for million-node distance workloads.
pub fn erdos_renyi_gnm_csr(n: usize, m: usize, seed: u64) -> CsrAdjacency {
    CsrAdjacency::from_edges(n, gnm_edges(n, m, seed))
}

/// The shared G(n, m) edge sampler behind [`erdos_renyi_gnm`] and
/// [`erdos_renyi_gnm_csr`].
fn gnm_edges(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    let total = n as u64 * (n.saturating_sub(1)) as u64 / 2;
    assert!(
        (m as u64) <= total,
        "m = {m} exceeds the {total} possible edges"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    if m as u64 > total / 2 {
        // Dense: sample which pairs to EXCLUDE via Floyd's algorithm.
        let excl = floyd_sample(total, total - m as u64, &mut rng);
        let mut excluded = excl;
        excluded.sort_unstable();
        let mut k = 0usize;
        for idx in 0..total {
            if k < excluded.len() && excluded[k] == idx {
                k += 1;
                continue;
            }
            let (u, v) = pair_from_index(idx, n as u64);
            edges.push((u as u32, v as u32));
        }
    } else {
        for idx in floyd_sample(total, m as u64, &mut rng) {
            let (u, v) = pair_from_index(idx, n as u64);
            edges.push((u as u32, v as u32));
        }
    }
    edges
}

/// Floyd's algorithm: `k` distinct values from `0..total`.
fn floyd_sample(total: u64, k: u64, rng: &mut SmallRng) -> Vec<u64> {
    use std::collections::HashSet;
    let mut set = HashSet::with_capacity(k as usize);
    let mut out = Vec::with_capacity(k as usize);
    for j in (total - k)..total {
        let t = rng.gen_range(0..=j);
        let pick = if set.contains(&t) { j } else { t };
        set.insert(pick);
        out.push(pick);
    }
    out
}

/// A connected G(n, m)-style graph: a uniform random spanning tree plus
/// `m − (n−1)` additional uniform edges. Handy when experiments need a
/// connected workload.
///
/// # Panics
///
/// Panics if `m < n - 1` or `m` exceeds n(n−1)/2.
pub fn connected_gnm(n: usize, m: usize, seed: u64) -> Graph {
    Graph::from_edges(n, connected_gnm_edges(n, m, seed))
}

/// [`connected_gnm`] built straight into a [`CsrAdjacency`] (identical
/// RNG stream, so the same seed yields the same graph) — no intermediate
/// [`Graph`], for million-node construction workloads.
///
/// # Panics
///
/// Panics as [`connected_gnm`] does.
pub fn connected_gnm_csr(n: usize, m: usize, seed: u64) -> CsrAdjacency {
    CsrAdjacency::from_edges(n, connected_gnm_edges(n, m, seed))
}

/// The shared sampler behind [`connected_gnm`] and [`connected_gnm_csr`]:
/// a uniform random spanning tree plus rejection-sampled extra edges,
/// returned sorted and deduplicated.
fn connected_gnm_edges(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 1, "need at least one node");
    assert!(m + 1 >= n, "m = {m} too small to connect {n} nodes");
    let total = n as u64 * (n.saturating_sub(1)) as u64 / 2;
    assert!(
        m as u64 <= total,
        "m = {m} exceeds the {total} possible edges"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: std::collections::HashSet<(u32, u32)> =
        std::collections::HashSet::with_capacity(m);
    // Random spanning tree: random permutation, attach each node to a
    // uniformly random earlier node (random recursive tree on shuffled ids).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let (a, b) = (order[i].min(order[j]), order[i].max(order[j]));
        edges.insert((a, b));
    }
    // Extra edges, rejection-sampled to the requested total.
    let mut extra_attempts = 0usize;
    while edges.len() < m && extra_attempts < 64 * m + 1024 {
        extra_attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        edges.insert((u.min(v), u.max(v)));
    }
    let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
    sorted.sort_unstable();
    sorted
}

/// Random d-regular graph via the pairing model with restarts; falls back to
/// "nearly regular" (collisions dropped) after 64 failed attempts.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    Graph::from_edges(n, random_regular_edges(n, d, seed))
}

/// [`random_regular`] built straight into a [`CsrAdjacency`] (identical
/// RNG stream; [`CsrAdjacency::from_edges`] collapses the fallback path's
/// collisions exactly like `Graph::from_edges` would).
pub fn random_regular_csr(n: usize, d: usize, seed: u64) -> CsrAdjacency {
    CsrAdjacency::from_edges(n, random_regular_edges(n, d, seed))
}

/// The shared pairing-model sampler behind [`random_regular`] and
/// [`random_regular_csr`].
fn random_regular_edges(n: usize, d: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be < n");
    let mut rng = SmallRng::seed_from_u64(seed);
    for _attempt in 0..64 {
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut ok = true;
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            let key = (u.min(v), u.max(v));
            if u == v || !seen.insert(key) {
                ok = false;
                break;
            }
            edges.push((u, v));
        }
        if ok {
            return edges;
        }
    }
    // Fallback: pairing with collisions silently dropped (nearly regular).
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    stubs.shuffle(&mut rng);
    stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect()
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `k` existing nodes sampled proportionally to
/// degree.
///
/// # Panics
///
/// Panics if `k == 0` or `n < k + 1`.
pub fn preferential_attachment(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1, "attachment degree must be positive");
    assert!(n > k, "need n > k");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Seed clique on k+1 nodes.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * n * k);
    for u in 0..=(k as u32) {
        for v in (u + 1)..=(k as u32) {
            b.add_edge(NodeId(u), NodeId(v));
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    for v in (k as u32 + 1)..(n as u32) {
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut guard = 0;
        while chosen.len() < k && guard < 64 * k {
            guard += 1;
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            chosen.insert(t);
        }
        for &t in &chosen {
            b.add_edge(NodeId(v), NodeId(t));
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    b.build()
}

/// Connected caveman-style graph: `clusters` cliques of size `size`, each
/// cluster joined to the next by a single random edge, plus `extra` random
/// inter-cluster edges.
pub fn caveman(clusters: usize, size: usize, extra: usize, seed: u64) -> Graph {
    assert!(
        clusters >= 1 && size >= 1,
        "need at least one nonempty cluster"
    );
    let n = clusters * size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for c in 0..clusters {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b.add_edge(NodeId(base + i), NodeId(base + j));
            }
        }
        if c + 1 < clusters {
            let u = base + rng.gen_range(0..size as u32);
            let v = ((c + 1) * size) as u32 + rng.gen_range(0..size as u32);
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    for _ in 0..extra {
        let c1 = rng.gen_range(0..clusters);
        let c2 = rng.gen_range(0..clusters);
        if c1 == c2 {
            continue;
        }
        let u = (c1 * size) as u32 + rng.gen_range(0..size as u32);
        let v = (c2 * size) as u32 + rng.gen_range(0..size as u32);
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance ≤ `radius`. Grid-bucketed, so the
/// cost is O(n + m). Large-diameter, spatially clustered workloads —
/// the regime where staged-distortion spanners shine.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!((0.0..=1.5).contains(&radius), "radius must be in [0, 1.5]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let cell = radius.max(1e-9);
    let cells_per_side = (1.0 / cell).ceil() as i64;
    let key = |x: f64, y: f64| -> (i64, i64) {
        (
            ((x / cell) as i64).min(cells_per_side - 1),
            ((y / cell) as i64).min(cells_per_side - 1),
        )
    };
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets.entry(key(x, y)).or_default().push(i as u32);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (&(cx, cy), members) in &buckets {
        for &i in members {
            let (xi, yi) = pts[i as usize];
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(other) = buckets.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in other {
                        if j <= i {
                            continue;
                        }
                        let (xj, yj) = pts[j as usize];
                        let (ddx, ddy) = (xi - xj, yi - yj);
                        if ddx * ddx + ddy * ddy <= r2 {
                            b.add_edge(NodeId(i), NodeId(j));
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Path on `n` nodes: 0 − 1 − … − (n−1).
pub fn path(n: usize) -> Graph {
    let edges = (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1));
    Graph::from_edges(n, edges)
}

/// Cycle on `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    Graph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// Star with center 0 and `n − 1` leaves.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as u32).map(|i| (0, i)))
}

/// Complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

/// Complete bipartite graph K_{a,b}: left part `0..a`, right part `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut gb = GraphBuilder::new(a + b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            gb.add_edge(NodeId(u), NodeId(a as u32 + v));
        }
    }
    gb.build()
}

/// Grid edges in canonical (strictly increasing) row-major order: each
/// node emits its right then its down neighbor. Feeds both the sorted
/// [`Graph`] fast path and the streaming CSR path.
fn grid_edges(rows: usize, cols: usize) -> impl Iterator<Item = (u32, u32)> + Clone {
    (0..rows * cols).flat_map(move |i| {
        let (r, c) = (i / cols, i % cols);
        let i = i as u32;
        [
            (c + 1 < cols).then_some((i, i + 1)),
            (r + 1 < rows).then_some((i, i + cols as u32)),
        ]
        .into_iter()
        .flatten()
    })
}

/// Torus edges in canonical (strictly increasing) row-major order. Each
/// node emits the edges it is the smaller endpoint of, in ascending
/// neighbor order: right (`i+1`), the row wrap it owns when `c == 0`
/// (`i + cols − 1`), down (`i + cols`), and the column wrap it owns when
/// `r == 0` (`i + (rows−1)·cols`) — strictly increasing within a node for
/// all `rows, cols ≥ 3`, so the whole stream is canonical.
fn torus_edges(rows: usize, cols: usize) -> impl Iterator<Item = (u32, u32)> + Clone {
    (0..rows * cols).flat_map(move |i| {
        let (r, c) = (i / cols, i % cols);
        let i = i as u32;
        let w = cols as u32;
        [
            (c + 1 < cols).then_some((i, i + 1)),
            (c == 0).then_some((i, i + w - 1)),
            (r + 1 < rows).then_some((i, i + w)),
            (r == 0).then_some((i, i + (rows as u32 - 1) * w)),
        ]
        .into_iter()
        .flatten()
    })
}

/// `rows × cols` grid, 4-neighbor connectivity. Node (r, c) has index
/// `r * cols + c`. Streams edges in canonical row-major order, so the
/// build is one linear sweep with no sort.
pub fn grid(rows: usize, cols: usize) -> Graph {
    Graph::from_sorted_edges(rows * cols, grid_edges(rows, cols))
}

/// [`grid`] built straight into a [`CsrAdjacency`] — no intermediate
/// [`Graph`], for million-node distance workloads.
pub fn grid_csr(rows: usize, cols: usize) -> CsrAdjacency {
    CsrAdjacency::from_edges(rows * cols, grid_edges(rows, cols))
}

/// `rows × cols` torus (grid with wraparound). Streams edges in canonical
/// row-major order, so the build is one linear sweep with no sort.
///
/// # Panics
///
/// Panics if either dimension is < 3 (wraparound would duplicate edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims >= 3");
    Graph::from_sorted_edges(rows * cols, torus_edges(rows, cols))
}

/// [`torus`] built straight into a [`CsrAdjacency`].
///
/// # Panics
///
/// Panics if either dimension is < 3.
pub fn torus_csr(rows: usize, cols: usize) -> CsrAdjacency {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims >= 3");
    CsrAdjacency::from_edges(rows * cols, torus_edges(rows, cols))
}

/// d-dimensional hypercube on 2^d nodes (nodes adjacent iff their indices
/// differ in one bit).
///
/// # Panics
///
/// Panics if `d > 20` (over a million nodes).
pub fn hypercube(d: usize) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(NodeId(v), NodeId(u));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn gnp_determinism_and_bounds() {
        let a = erdos_renyi_gnp(200, 0.05, 9);
        let b = erdos_renyi_gnp(200, 0.05, 9);
        assert_eq!(a.edge_count(), b.edge_count());
        let c = erdos_renyi_gnp(200, 0.05, 10);
        // Overwhelmingly likely to differ.
        assert_ne!(a.edge_count(), 0);
        assert!(a.edge_count() != c.edge_count() || a != c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(50, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).edge_count(), 45);
        assert_eq!(erdos_renyi_gnp(0, 0.5, 1).node_count(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.5, 1).edge_count(), 0);
    }

    #[test]
    fn gnp_expected_density() {
        let n = 400;
        let p = 0.02;
        let g = erdos_renyi_gnp(n, p, 4);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "edges {got} far from expectation {expected}"
        );
    }

    #[test]
    fn gnm_exact_count() {
        for m in [0, 1, 100, 499] {
            let g = erdos_renyi_gnm(100, m, 3);
            assert_eq!(g.edge_count(), m);
        }
        // Dense side (complement sampling path).
        let g = erdos_renyi_gnm(40, 700, 3);
        assert_eq!(g.edge_count(), 700);
        let full = erdos_renyi_gnm(10, 45, 3);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn pair_from_index_roundtrip() {
        let n = 37u64;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(idx, n), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn connected_gnm_is_connected() {
        for seed in 0..5 {
            let g = connected_gnm(120, 200, seed);
            assert!(is_connected(&g));
            assert!(g.edge_count() >= 119);
        }
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(100, 4, 11);
        assert!(is_connected(&g) || g.edge_count() == 200);
        let max = g.max_degree();
        assert!(max <= 4);
        // pairing-model success gives exactly 4-regular
        if g.edge_count() == 200 {
            for v in g.nodes() {
                assert_eq!(g.degree(v), 4);
            }
        }
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(300, 3, 5);
        assert_eq!(g.node_count(), 300);
        assert!(is_connected(&g));
        // Heavy tail: max degree well above the attachment parameter.
        assert!(g.max_degree() >= 10, "max degree {}", g.max_degree());
    }

    #[test]
    fn caveman_connected() {
        let g = caveman(6, 8, 4, 2);
        assert_eq!(g.node_count(), 48);
        assert!(is_connected(&g));
    }

    #[test]
    fn structured_families() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(6).max_degree(), 5);
        assert_eq!(complete(6).edge_count(), 15);
        assert_eq!(complete_bipartite(3, 4).edge_count(), 12);
        let g = grid(3, 4);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(is_connected(&g));
        let t = torus(3, 3);
        assert_eq!(t.edge_count(), 18);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4);
        }
        let h = hypercube(4);
        assert_eq!(h.node_count(), 16);
        assert_eq!(h.edge_count(), 32);
        for v in h.nodes() {
            assert_eq!(h.degree(v), 4);
        }
    }

    #[test]
    fn grid_torus_byte_identical_to_builder_constructors() {
        // The pre-streaming constructors, verbatim: every edge through the
        // builder's sort/dedup pass. The streaming generators must produce
        // byte-identical graphs (same edge ids, same adjacency layout).
        for (rows, cols) in [(3, 4), (5, 3), (7, 7), (3, 3), (1, 6), (4, 1)] {
            let mut b = GraphBuilder::new(rows * cols);
            let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
            for r in 0..rows {
                for c in 0..cols {
                    if c + 1 < cols {
                        b.add_edge(id(r, c), id(r, c + 1));
                    }
                    if r + 1 < rows {
                        b.add_edge(id(r, c), id(r + 1, c));
                    }
                }
            }
            assert_eq!(grid(rows, cols), b.build(), "grid {rows}x{cols}");
        }
        for (rows, cols) in [(3, 3), (3, 5), (5, 3), (6, 7)] {
            let mut b = GraphBuilder::new(rows * cols);
            let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
            for r in 0..rows {
                for c in 0..cols {
                    b.add_edge(id(r, c), id(r, (c + 1) % cols));
                    b.add_edge(id(r, c), id((r + 1) % rows, c));
                }
            }
            assert_eq!(torus(rows, cols), b.build(), "torus {rows}x{cols}");
        }
    }

    #[test]
    fn csr_generators_match_graph_generators() {
        assert_eq!(grid_csr(5, 6), CsrAdjacency::from_graph(&grid(5, 6)));
        assert_eq!(torus_csr(4, 5), CsrAdjacency::from_graph(&torus(4, 5)));
        assert_eq!(
            erdos_renyi_gnm_csr(80, 200, 13),
            CsrAdjacency::from_graph(&erdos_renyi_gnm(80, 200, 13))
        );
        // Dense-complement sampling path too.
        assert_eq!(
            erdos_renyi_gnm_csr(30, 400, 13),
            CsrAdjacency::from_graph(&erdos_renyi_gnm(30, 400, 13))
        );
        assert_eq!(
            random_regular_csr(100, 4, 11),
            CsrAdjacency::from_graph(&random_regular(100, 4, 11))
        );
        assert_eq!(
            connected_gnm_csr(120, 300, 17),
            CsrAdjacency::from_graph(&connected_gnm(120, 300, 17))
        );
    }

    #[test]
    fn random_geometric_matches_bruteforce() {
        let n = 300;
        let radius = 0.11;
        let g = random_geometric(n, radius, 9);
        // Re-derive the points with the same RNG stream and brute-force
        // the expected edge count.
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let mut expect = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy <= radius * radius {
                    expect += 1;
                }
            }
        }
        assert_eq!(g.edge_count(), expect);
    }

    #[test]
    fn random_geometric_determinism_and_extremes() {
        assert_eq!(random_geometric(100, 0.1, 5), random_geometric(100, 0.1, 5));
        assert_eq!(random_geometric(50, 0.0, 1).edge_count(), 0);
        assert_eq!(random_geometric(20, 1.5, 1).edge_count(), 190);
    }

    #[test]
    fn hypercube_distances_are_hamming() {
        let h = hypercube(5);
        let d = crate::traversal::bfs_distances(&h, NodeId(0));
        for v in 0..32u32 {
            assert_eq!(d[v as usize], Some(v.count_ones()));
        }
    }
}
