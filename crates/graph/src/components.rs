//! Connectivity: union-find and connected components.
//!
//! A correct spanner algorithm may only discard an edge it can prove lies on
//! a cycle (Sect. 3 of the paper leans on this); the tests use these helpers
//! to check that every spanner preserves connectivity component-by-component.

use crate::edgeset::EdgeSet;
use crate::graph::{Graph, NodeId};

/// Disjoint-set union with path halving and union by size.
///
/// # Example
///
/// ```
/// use spanner_graph::components::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0));
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(0, 2));
/// assert_eq!(uf.count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    count: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            count: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.count -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

/// Component labels for every node (`labels[v]` in `0..component_count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Dense component label per node.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Whether `u` and `v` are in the same component.
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }
}

/// Connected components of `g`.
pub fn connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.node_count());
    for (_, u, v) in g.edges() {
        uf.union(u.index(), v.index());
    }
    canonicalize(&mut uf, g.node_count())
}

/// Connected components of the subgraph of `g` given by `span`.
pub fn subgraph_components(g: &Graph, span: &EdgeSet) -> Components {
    let mut uf = UnionFind::new(g.node_count());
    for e in span.iter() {
        let (u, v) = g.endpoints(e);
        uf.union(u.index(), v.index());
    }
    canonicalize(&mut uf, g.node_count())
}

/// `true` iff `g` is connected (the empty and 1-node graphs count as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).count <= 1
}

/// `true` iff `span` connects everything `g` connects, i.e. the subgraph has
/// exactly the same connected components as the host graph. This is the
/// minimal correctness requirement on any spanner ("at the very least the
/// substitute should preserve connectivity").
pub fn preserves_connectivity(g: &Graph, span: &EdgeSet) -> bool {
    let cg = connected_components(g);
    let cs = subgraph_components(g, span);
    // The subgraph refines the host partition; equality of counts per host
    // component implies equality of the partitions.
    cg.count == cs.count
}

fn canonicalize(uf: &mut UnionFind, n: usize) -> Components {
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        let r = uf.find(v);
        if labels[r] == u32::MAX {
            labels[r] = next;
            next += 1;
        }
        labels[v] = labels[r];
    }
    Components {
        labels,
        count: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeSet, Graph};

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.count(), 5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 3));
        assert_eq!(uf.set_size(4), 2);
        uf.union(1, 4);
        assert_eq!(uf.set_size(0), 4);
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert!(c.same(NodeId(0), NodeId(2)));
        assert!(!c.same(NodeId(2), NodeId(3)));
    }

    #[test]
    fn is_connected_cases() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
        assert!(is_connected(&Graph::from_edges(3, [(0, 1), (1, 2)])));
    }

    #[test]
    fn spanning_subgraph_preserves_connectivity() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let mut s = EdgeSet::new(&g);
        // spanning tree: 0-1, 1-2, 2-3
        for (e, u, v) in g.edges() {
            if (u.0, v.0) != (0, 2) && (u.0, v.0) != (0, 3) {
                s.insert(e);
            }
        }
        assert!(preserves_connectivity(&g, &s));
        let empty = EdgeSet::new(&g);
        assert!(!preserves_connectivity(&g, &empty));
    }

    #[test]
    fn disconnected_host_preserved_per_component() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let mut s = EdgeSet::new(&g);
        for (e, _, _) in g.edges() {
            s.insert(e);
        }
        assert!(preserves_connectivity(&g, &s));
        s.remove(crate::EdgeId(2)); // cut 3-4
        assert!(!preserves_connectivity(&g, &s));
    }
}
