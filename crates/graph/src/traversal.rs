//! Breadth-first search in the flavors the spanner algorithms need.
//!
//! * plain single-source BFS distances,
//! * radius-bounded BFS (the `ℓ^i`-balls of Fibonacci spanners),
//! * multi-source BFS with source attribution (nearest sampled vertex
//!   `p_i(v)` with minimum-identifier tie-breaking, exactly as Sect. 4.1
//!   specifies),
//! * BFS trees and path extraction,
//! * BFS over an [`EdgeSet`] subgraph (for stretch evaluation without
//!   materializing the spanner).

use std::collections::VecDeque;

use crate::csr::CsrAdjacency;
use crate::edgeset::EdgeSet;
use crate::graph::{Graph, NodeId};

/// Distances from `src` to every node; `None` for unreachable nodes.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        for &(v, _) in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// [`bfs_distances`] over a bare [`CsrAdjacency`] — identical output to the
/// [`Graph`] version on the equivalent topology (BFS distances do not
/// depend on neighbor order).
pub fn bfs_distances_csr(csr: &CsrAdjacency, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; csr.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        for &v in csr.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Distances from `src`, exploring only up to distance `radius` inclusive.
///
/// Nodes further than `radius` (or unreachable) get `None`.
pub fn bfs_distances_bounded(g: &Graph, src: NodeId, radius: u32) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        if du == radius {
            continue;
        }
        for &(v, _) in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Result of a multi-source BFS: for every node, the distance to the nearest
/// source and which source attained it.
#[derive(Debug, Clone)]
pub struct MultiSourceBfs {
    /// `dist[v]` is the distance from `v` to its nearest source, or `None`.
    pub dist: Vec<Option<u32>>,
    /// `source[v]` is the attributed nearest source, or `None`.
    pub source: Vec<Option<NodeId>>,
}

/// Multi-source BFS with deterministic attribution.
///
/// Every node is attributed to its nearest source; among equidistant sources
/// the one with the **minimum node id** wins, matching the paper's
/// tie-breaking rule for `p_i(u)` ("the one whose unique identifier is
/// minimum", Sect. 4.1). Attribution is by source, not by parent: a node's
/// attributed source is the minimum-id source among those at minimal
/// distance.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> MultiSourceBfs {
    let n = g.node_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut source: Vec<Option<NodeId>> = vec![None; n];
    let mut frontier: Vec<NodeId> = Vec::new();

    // Seed all sources at distance 0; min-id wins on duplicate sources.
    let mut sorted: Vec<NodeId> = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for &s in &sorted {
        dist[s.index()] = Some(0);
        source[s.index()] = Some(s);
        frontier.push(s);
    }

    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next: Vec<NodeId> = Vec::new();
        // First pass: discover.
        for &u in &frontier {
            let su = source[u.index()].expect("frontier node attributed");
            for &(v, _) in g.neighbors(u) {
                match dist[v.index()] {
                    None => {
                        dist[v.index()] = Some(d);
                        source[v.index()] = Some(su);
                        next.push(v);
                    }
                    Some(dv) if dv == d => {
                        // Already discovered this layer: keep min-id source.
                        let sv = source[v.index()].expect("attributed");
                        if su < sv {
                            source[v.index()] = Some(su);
                        }
                    }
                    _ => {}
                }
            }
        }
        // Second pass: propagate min-id attribution within the new layer
        // until fixpoint (a node's best source may arrive via a same-layer
        // sibling's parent). One extra sweep suffices because attribution
        // only depends on the previous layer; we re-scan parents.
        for &v in &next {
            let dv = dist[v.index()].expect("layer distance");
            let mut best = source[v.index()].expect("attributed");
            for &(u, _) in g.neighbors(v) {
                if dist[u.index()] == Some(dv - 1) {
                    let su = source[u.index()].expect("parent attributed");
                    if su < best {
                        best = su;
                    }
                }
            }
            source[v.index()] = Some(best);
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }

    MultiSourceBfs { dist, source }
}

/// A BFS tree rooted at `root`: parent pointers and distances.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// The root of the tree.
    pub root: NodeId,
    /// `parent[v]` is `v`'s parent on a shortest path to the root; `None`
    /// for the root itself and for unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// `dist[v]` is the depth of `v`, or `None` if unreachable.
    pub dist: Vec<Option<u32>>,
}

impl BfsTree {
    /// Reconstructs the tree path from `v` up to the root (inclusive), or
    /// `None` if `v` is unreachable.
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist[v.index()]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.root);
        Some(path)
    }
}

/// Builds a BFS tree from `root`. Among equidistant parents the minimum-id
/// neighbor is chosen, making the tree deterministic.
pub fn bfs_tree(g: &Graph, root: NodeId) -> BfsTree {
    let dist = bfs_distances(g, root);
    let mut parent = vec![None; g.node_count()];
    for v in g.nodes() {
        if let Some(dv) = dist[v.index()] {
            if dv == 0 {
                continue;
            }
            let best = g
                .neighbor_ids(v)
                .filter(|u| dist[u.index()] == Some(dv - 1))
                .min();
            parent[v.index()] = best;
        }
    }
    BfsTree { root, parent, dist }
}

/// One shortest path from `src` to `dst` (inclusive of both), or `None` if
/// disconnected. Deterministic (min-id parents).
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let t = bfs_tree(g, src);
    let mut p = t.path_to_root(dst)?;
    p.reverse();
    Some(p)
}

/// BFS distances from `src` inside the subgraph given by `span`, bounded by
/// `radius` (`u32::MAX` for unbounded).
///
/// `adj` must be the adjacency of `span` as produced by
/// [`EdgeSet::adjacency`]; passing it explicitly lets callers amortize its
/// construction over many queries.
pub fn bfs_distances_in_subgraph(
    adj: &[Vec<NodeId>],
    src: NodeId,
    radius: u32,
) -> Vec<Option<u32>> {
    let mut dist = vec![None; adj.len()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        if du == radius {
            continue;
        }
        for &v in &adj[u.index()] {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Convenience wrapper: distances from `src` within the subgraph `span` of
/// `g` (unbounded radius). Builds the adjacency each call; for repeated
/// queries use [`EdgeSet::adjacency`] + [`bfs_distances_in_subgraph`].
pub fn subgraph_distances(g: &Graph, span: &EdgeSet, src: NodeId) -> Vec<Option<u32>> {
    let adj = span.adjacency(g);
    bfs_distances_in_subgraph(&adj, src, u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path(6);
        let d = bfs_distances(&g, NodeId(0));
        for (v, dv) in d.iter().enumerate() {
            assert_eq!(*dv, Some(v as u32));
        }
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn bounded_bfs_cuts_off() {
        let g = path(10);
        let d = bfs_distances_bounded(&g, NodeId(0), 3);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn bounded_bfs_radius_zero() {
        let g = path(3);
        let d = bfs_distances_bounded(&g, NodeId(1), 0);
        assert_eq!(d[1], Some(0));
        assert_eq!(d[0], None);
        assert_eq!(d[2], None);
    }

    #[test]
    fn multi_source_attribution_min_id() {
        // 0 - 1 - 2 - 3 - 4 with sources {0, 4}: node 2 is equidistant,
        // must be attributed to source 0 (minimum id).
        let g = path(5);
        let r = multi_source_bfs(&g, &[NodeId(4), NodeId(0)]);
        assert_eq!(r.dist[2], Some(2));
        assert_eq!(r.source[2], Some(NodeId(0)));
        assert_eq!(r.source[3], Some(NodeId(4)));
    }

    #[test]
    fn multi_source_no_sources() {
        let g = path(3);
        let r = multi_source_bfs(&g, &[]);
        assert!(r.dist.iter().all(|d| d.is_none()));
    }

    #[test]
    fn multi_source_equals_single_source() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
        let r = multi_source_bfs(&g, &[NodeId(2)]);
        let d = bfs_distances(&g, NodeId(2));
        assert_eq!(r.dist, d);
        assert!(r.source.iter().all(|&s| s == Some(NodeId(2))));
    }

    #[test]
    fn multi_source_same_layer_min_wins() {
        // Diamond: sources 1 and 2 both adjacent to 3; 3 attributed to 1.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = multi_source_bfs(&g, &[NodeId(1), NodeId(2)]);
        assert_eq!(r.source[3], Some(NodeId(1)));
        assert_eq!(r.source[0], Some(NodeId(1)));
    }

    #[test]
    fn bfs_tree_paths() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)]);
        let t = bfs_tree(&g, NodeId(0));
        let p = t.path_to_root(NodeId(2)).unwrap();
        assert_eq!(p.len(), 3); // 2 -> 1 -> 0
        assert_eq!(p[0], NodeId(2));
        assert_eq!(*p.last().unwrap(), NodeId(0));
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = path(7);
        let p = shortest_path(&g, NodeId(1), NodeId(5)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(1)));
        assert_eq!(p.last(), Some(&NodeId(5)));
        assert_eq!(p.len(), 5);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(shortest_path(&g, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn subgraph_bfs_respects_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut s = crate::EdgeSet::new(&g);
        // keep only the path 0-1-2-3
        for (e, u, v) in g.edges() {
            if !(u == NodeId(0) && v == NodeId(3)) {
                s.insert(e);
            }
        }
        let d = subgraph_distances(&g, &s, NodeId(0));
        assert_eq!(d[3], Some(3)); // chord excluded
        let dg = bfs_distances(&g, NodeId(0));
        assert_eq!(dg[3], Some(1));
    }
}
