//! Compact undirected simple graphs.
//!
//! The [`Graph`] type stores an undirected simple graph in a CSR-like layout:
//! one flat `Vec` of (neighbor, edge id) pairs plus per-node offsets. Edges
//! have stable [`EdgeId`]s in insertion order, so subgraphs (spanners) can be
//! represented compactly as bitsets over edge ids (see
//! [`EdgeSet`](crate::EdgeSet)).
//!
//! Graphs are immutable after construction; build them with [`GraphBuilder`]
//! or [`Graph::from_edges`].

use std::fmt;

/// Identifier of a vertex: a dense index in `0..graph.node_count()`.
///
/// The paper's model gives every processor a unique O(log n)-bit identifier;
/// dense indices are the canonical choice and random relabelings are applied
/// by generators where identifier symmetry matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the index as a `usize` for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        match u32::try_from(v) {
            Ok(i) => NodeId(i),
            Err(_) => panic!(
                "node index {v} exceeds the u32 node-id space (max {}); \
                 graphs are limited to u32::MAX nodes — shard the input or \
                 reduce n (streaming builders reject oversized n up front \
                 via CsrAdjacency::try_from_edges)",
                u32::MAX
            ),
        }
    }
}

/// Identifier of an undirected edge: a dense index in `0..graph.edge_count()`,
/// in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the index as a `usize` for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable, undirected, simple graph in CSR layout.
///
/// # Example
///
/// ```
/// use spanner_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(NodeId(0)), 2);
/// assert!(g.has_edge(NodeId(0), NodeId(1)));
/// assert!(!g.has_edge(NodeId(0), NodeId(2)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adj` for node `v`.
    offsets: Vec<u32>,
    /// Flat adjacency: (neighbor, incident edge id).
    adj: Vec<(NodeId, EdgeId)>,
    /// Edge endpoints by edge id, with `endpoints[e].0 <= endpoints[e].1`.
    endpoints: Vec<(NodeId, NodeId)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Self-loops and duplicate edges are silently discarded (the paper works
    /// with simple graphs throughout, and contraction explicitly discards
    /// loops and redundant edges).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I, E>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: Into<(u32, u32)>,
    {
        let mut b = GraphBuilder::new(n);
        for e in edges {
            let (u, v) = e.into();
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Builds a graph from edges already in canonical order: each edge
    /// `(a, b)` with `a < b`, the stream strictly lexicographically
    /// increasing (hence loop- and duplicate-free). Skips the builder's
    /// sort/dedup pass, so generators that can emit canonical order (grid,
    /// torus) build in one linear sweep — the difference between seconds
    /// and minutes at n ≥ 10⁶. Produces a graph byte-identical to
    /// [`Graph::from_edges`] on the same stream.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or the stream violates the order.
    pub fn from_sorted_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        assert!(n <= u32::MAX as usize, "too many nodes");
        let mut endpoints: Vec<(NodeId, NodeId)> = Vec::new();
        let mut prev = None;
        for (a, b) in edges {
            assert!(a < b, "edge ({a}, {b}) not in canonical a < b order");
            assert!((b as usize) < n, "edge endpoint out of range");
            assert!(prev < Some((a, b)), "edge stream not strictly increasing");
            prev = Some((a, b));
            endpoints.push((NodeId(a), NodeId(b)));
        }
        Graph::assemble(n, endpoints)
    }

    /// CSR layout from canonical endpoints (sorted, deduplicated,
    /// loop-free) — the shared tail of [`GraphBuilder::build`] and
    /// [`Graph::from_sorted_edges`].
    fn assemble(n: usize, endpoints: Vec<(NodeId, NodeId)>) -> Graph {
        let m = endpoints.len();
        let mut deg = vec![0u32; n];
        for &(a, b) in &endpoints {
            deg[a.index()] += 1;
            deg[b.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![(NodeId(0), EdgeId(0)); 2 * m];
        for (i, &(a, b)) in endpoints.iter().enumerate() {
            let e = EdgeId(i as u32);
            adj[cursor[a.index()] as usize] = (b, e);
            cursor[a.index()] += 1;
            adj[cursor[b.index()] as usize] = (a, e);
            cursor[b.index()] += 1;
        }
        Graph {
            offsets,
            adj,
            endpoints,
        }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph::from_edges(n, std::iter::empty::<(u32, u32)>())
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edges as `(EdgeId, NodeId, NodeId)` with the smaller
    /// endpoint first.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i as u32), u, v))
    }

    /// Endpoints of edge `e`, smaller endpoint first.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Neighbors of `v` with the connecting edge ids.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Neighbor node ids of `v` (without edge ids).
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().map(|&(u, _)| u)
    }

    /// Whether the edge `{u, v}` is present. O(min degree) scan.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The edge id of `{u, v}` if present. O(min degree) scan.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a)
            .iter()
            .find(|&&(w, _)| w == b)
            .map(|&(_, e)| e)
    }

    /// Sum of degrees divided by node count.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.node_count() as f64
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Returns the subgraph induced by keeping exactly the edges for which
    /// `keep` returns true, on the same vertex set. Edge ids are renumbered.
    pub fn edge_subgraph<F: FnMut(EdgeId) -> bool>(&self, mut keep: F) -> Graph {
        let mut b = GraphBuilder::new(self.node_count());
        for (e, u, v) in self.edges() {
            if keep(e) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// The subgraph induced by `nodes` (which must be strictly ascending),
    /// with node `nodes[i]` relabeled to `i`, plus the map from each new
    /// [`EdgeId`] back to the host edge it came from.
    ///
    /// The relabeling is monotone, so the induced graph's lexicographic
    /// edge order equals the host order restricted to the region — new
    /// edge ids enumerate the kept host edges in host-id order, which is
    /// what lets dirty-region re-clustering translate a spanner of the
    /// induced graph back into host edges with one array lookup.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not strictly ascending or contains an
    /// out-of-range node.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<EdgeId>) {
        assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "region must be strictly ascending"
        );
        if let Some(last) = nodes.last() {
            assert!(last.index() < self.node_count(), "region node out of range");
        }
        let mut map = vec![u32::MAX; self.node_count()];
        for (i, v) in nodes.iter().enumerate() {
            map[v.index()] = i as u32;
        }
        let mut edges = Vec::new();
        let mut host = Vec::new();
        for (e, a, b) in self.edges() {
            let (ma, mb) = (map[a.index()], map[b.index()]);
            if ma != u32::MAX && mb != u32::MAX {
                edges.push((ma, mb));
                host.push(e);
            }
        }
        (Graph::from_sorted_edges(nodes.len(), edges), host)
    }

    /// Applies a permutation to node labels: node `v` becomes `perm[v]`.
    ///
    /// Used to randomize processor identifiers where the model calls for
    /// arbitrary unique ids.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[u32]) -> Graph {
        assert_eq!(perm.len(), self.node_count(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                (p as usize) < perm.len() && !seen[p as usize],
                "not a permutation"
            );
            seen[p as usize] = true;
        }
        let mut b = GraphBuilder::new(self.node_count());
        for (_, u, v) in self.edges() {
            b.add_edge(NodeId(perm[u.index()]), NodeId(perm[v.index()]));
        }
        b.build()
    }
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and drops self-loops at [`GraphBuilder::build`] time.
///
/// # Example
///
/// ```
/// use spanner_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(0)); // duplicate, dropped
/// b.add_edge(NodeId(2), NodeId(2)); // loop, dropped
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    raw_edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes with no edges yet.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many nodes");
        GraphBuilder {
            n,
            raw_edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Records the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge endpoint out of range: ({u}, {v}) with n={}",
            self.n
        );
        let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
        self.raw_edges.push((a, b));
        self
    }

    /// Finalizes the graph: sorts, deduplicates, drops loops, lays out CSR.
    pub fn build(mut self) -> Graph {
        self.raw_edges.sort_unstable();
        self.raw_edges.dedup();
        self.raw_edges.retain(|&(a, b)| a != b);
        Graph::assemble(self.n, self.raw_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn triangle_basic() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    fn dedup_and_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
    }

    #[test]
    fn endpoints_ordered() {
        let g = Graph::from_edges(4, [(3, 1), (2, 0)]);
        for (_, u, v) in g.edges() {
            assert!(u.0 < v.0);
        }
    }

    #[test]
    fn find_edge_both_directions() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        let e = g.find_edge(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(g.endpoints(e), (NodeId(1), NodeId(2)));
        assert!(g.find_edge(NodeId(2), NodeId(3)).is_none());
    }

    #[test]
    fn adjacency_consistent_with_edges() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4), (1, 2)]);
        for (e, u, v) in g.edges() {
            assert!(g.neighbors(u).iter().any(|&(w, f)| w == v && f == e));
            assert!(g.neighbors(v).iter().any(|&(w, f)| w == u && f == e));
        }
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn edge_subgraph_renumbers() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let h = g.edge_subgraph(|e| e.0 != 1);
        assert_eq!(h.edge_count(), 2);
        assert!(h.has_edge(NodeId(0), NodeId(1)));
        assert!(!h.has_edge(NodeId(1), NodeId(2)));
        assert!(h.has_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    fn induced_subgraph_maps_edges_back() {
        let g = Graph::from_edges(6, [(0, 1), (0, 4), (1, 2), (2, 4), (3, 5), (4, 5)]);
        let region = [NodeId(0), NodeId(2), NodeId(4), NodeId(5)];
        let (sub, host) = g.induced_subgraph(&region);
        assert_eq!(sub.node_count(), 4);
        // Kept edges: (0,4), (2,4), (4,5) → relabeled (0,2), (1,2), (2,3).
        let got: Vec<(u32, u32)> = sub.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(got, vec![(0, 2), (1, 2), (2, 3)]);
        assert_eq!(host.len(), sub.edge_count());
        for (e, u, v) in sub.edges() {
            let (hu, hv) = g.endpoints(host[e.index()]);
            assert_eq!((hu, hv), (region[u.index()], region[v.index()]));
        }
        // Full region reproduces the graph with identical edge ids.
        let all: Vec<NodeId> = g.nodes().collect();
        let (full, host) = g.induced_subgraph(&all);
        assert_eq!(full, g);
        assert!(host.iter().enumerate().all(|(i, e)| e.index() == i));
        // Empty region.
        let (empty, host) = g.induced_subgraph(&[]);
        assert_eq!(empty.node_count(), 0);
        assert!(host.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn induced_subgraph_rejects_unsorted_region() {
        let g = Graph::from_edges(3, [(0, 1)]);
        g.induced_subgraph(&[NodeId(1), NodeId(0)]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let perm = [3u32, 2, 1, 0];
        let h = g.relabel(&perm);
        assert_eq!(h.edge_count(), 3);
        assert!(h.has_edge(NodeId(3), NodeId(2)));
        assert!(h.has_edge(NodeId(2), NodeId(1)));
        assert!(h.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn from_sorted_edges_matches_from_edges() {
        let edges = [(0u32, 1), (0, 3), (1, 2), (2, 3)];
        let fast = Graph::from_sorted_edges(4, edges);
        let slow = Graph::from_edges(4, edges);
        assert_eq!(fast, slow);
        assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            slow.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "not strictly increasing")]
    fn from_sorted_edges_rejects_unsorted() {
        Graph::from_sorted_edges(4, [(1u32, 2), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "canonical a < b order")]
    fn from_sorted_edges_rejects_reversed_edge() {
        Graph::from_sorted_edges(4, [(1u32, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Graph::empty(3);
        g.relabel(&[0, 0, 1]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(EdgeId(3).to_string(), "e3");
    }
}
