//! Flat CSR adjacency shared by the distance engine and the netsim
//! executors.
//!
//! [`Graph`] stores adjacency in edge-insertion order; both the simulator
//! and the distance engine need each node's neighbor list **sorted
//! ascending** (the determinism contract: `Ctx::neighbors` is sorted,
//! `Ctx::send` binary searches it, and the engine's traversal order is a
//! pure function of the layout). [`CsrAdjacency`] lays the data out as two
//! flat arrays (offsets + targets), built once and shared freely — the
//! replacement for the `Vec<Vec<NodeId>>` tables that used to be rebuilt
//! per executor run and per stretch-verification source.

use std::fmt;

use crate::edgeset::EdgeSet;
use crate::graph::{EdgeId, Graph, NodeId};

/// A graph that does not fit the u32 id space of [`NodeId`] / [`EdgeId`].
///
/// Returned by [`CsrAdjacency::try_from_edges`] **before** any
/// proportional allocation happens, so a generator asked for an oversized
/// n fails immediately with an actionable message instead of panicking
/// mid-generation (or after gigabytes of work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrSizeError {
    /// More nodes than `u32` node ids can address.
    Nodes {
        /// The requested node count.
        n: usize,
    },
    /// More than `u32::MAX` half-edges (directed adjacency entries).
    HalfEdges,
}

impl fmt::Display for CsrSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrSizeError::Nodes { n } => write!(
                f,
                "graph too large: n = {n} nodes exceeds the u32 node-id space \
                 (max {}); shard the input or reduce n",
                u32::MAX
            ),
            CsrSizeError::HalfEdges => write!(
                f,
                "graph too large: more than {} half-edges overflow the u32 \
                 CSR offsets; reduce the edge count",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for CsrSizeError {}

/// A flat-array pair that is not a valid [`CsrAdjacency`].
///
/// Returned by [`CsrAdjacency::try_from_parts`], the decode half of the
/// snapshot round-trip: a persisted adjacency is rebuilt from raw
/// `(offsets, targets)` arrays, and every structural invariant the rest of
/// the codebase assumes (sorted runs, symmetry, no loops) is re-validated
/// so a corrupted or hand-crafted file can never produce a silently wrong
/// graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrPartsError {
    /// `offsets` is empty or does not start at 0.
    BadOffsetHead,
    /// `offsets` is not monotone non-decreasing at the given node.
    NonMonotoneOffsets {
        /// The node whose offset decreases.
        node: u32,
    },
    /// The final offset does not equal `targets.len()`.
    LengthMismatch {
        /// The final offset.
        last: u32,
        /// The actual target-array length.
        targets: usize,
    },
    /// A neighbor id is out of the node range.
    TargetOutOfRange {
        /// The node whose run contains the bad target.
        node: u32,
    },
    /// A neighbor run is not strictly ascending (unsorted or duplicate).
    UnsortedRun {
        /// The node whose run is out of order.
        node: u32,
    },
    /// A node lists itself as a neighbor.
    SelfLoop {
        /// The offending node.
        node: u32,
    },
    /// Edge `{a, b}` appears in `a`'s run but not in `b`'s.
    Asymmetric {
        /// The endpoint whose run has the half-edge.
        from: u32,
        /// The endpoint whose run is missing the reverse half-edge.
        to: u32,
    },
}

impl fmt::Display for CsrPartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrPartsError::BadOffsetHead => {
                write!(f, "CSR offsets must be non-empty and start at 0")
            }
            CsrPartsError::NonMonotoneOffsets { node } => {
                write!(f, "CSR offsets decrease at node {node}")
            }
            CsrPartsError::LengthMismatch { last, targets } => write!(
                f,
                "CSR final offset {last} does not match target count {targets}"
            ),
            CsrPartsError::TargetOutOfRange { node } => {
                write!(f, "CSR run of node {node} has an out-of-range neighbor")
            }
            CsrPartsError::UnsortedRun { node } => write!(
                f,
                "CSR run of node {node} is not strictly ascending (unsorted or duplicate)"
            ),
            CsrPartsError::SelfLoop { node } => {
                write!(f, "CSR run of node {node} contains a self-loop")
            }
            CsrPartsError::Asymmetric { from, to } => {
                write!(f, "CSR edge {from}-{to} is missing its reverse half-edge")
            }
        }
    }
}

impl std::error::Error for CsrPartsError {}

/// Sorted neighbor lists in compressed sparse row layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, each run sorted ascending.
    targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Builds the sorted CSR adjacency of `graph`.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for v in graph.nodes() {
            let start = targets.len();
            targets.extend(graph.neighbor_ids(v));
            targets[start..].sort_unstable();
            offsets.push(u32::try_from(targets.len()).expect("graph fits u32 half-edges"));
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds the sorted CSR adjacency of the subgraph of `graph` induced
    /// by the edges in `set` (on the full vertex set).
    ///
    /// One counting pass over the set plus a scatter; the per-node runs are
    /// then sorted so the layout is identical to what
    /// [`CsrAdjacency::from_graph`] would produce on the materialized
    /// subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `set` ranges over a different edge universe than `graph`.
    pub fn from_edge_set(graph: &Graph, set: &EdgeSet) -> Self {
        assert_eq!(
            set.universe(),
            graph.edge_count(),
            "edge set built for a different graph"
        );
        let n = graph.node_count();
        let mut degree = vec![0u32; n];
        for e in set.iter() {
            let (a, b) = graph.endpoints(e);
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc = acc.checked_add(d).expect("graph fits u32 half-edges");
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc as usize];
        // Reuse `degree` as per-node write cursors.
        let cursor = &mut degree;
        cursor.fill(0);
        for e in set.iter() {
            let (a, b) = graph.endpoints(e);
            let ia = offsets[a.index()] + cursor[a.index()];
            targets[ia as usize] = b;
            cursor[a.index()] += 1;
            let ib = offsets[b.index()] + cursor[b.index()];
            targets[ib as usize] = a;
            cursor[b.index()] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds the sorted CSR adjacency of the `n`-node simple graph with
    /// the given edges, **without** materializing a [`Graph`] or any
    /// per-node `Vec` in between — the streaming path that takes the
    /// generators to n ≥ 10⁶ nodes.
    ///
    /// The edge stream is consumed twice (degree count, then scatter), so
    /// the iterator must be `Clone` — generator closures and ranges are.
    /// Self-loops are skipped and duplicate edges collapsed, exactly like
    /// [`Graph::from_edges`](crate::graph::Graph::from_edges), so the
    /// result is identical to
    /// `CsrAdjacency::from_graph(&Graph::from_edges(n, edges))`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the graph exceeds the u32
    /// id space (see [`CsrAdjacency::try_from_edges`] for the fallible
    /// variant).
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
        I::IntoIter: Clone,
    {
        match Self::try_from_edges(n, edges) {
            Ok(csr) => csr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CsrAdjacency::from_edges`]: checks the node count
    /// against the u32 id space **before** allocating anything, and turns
    /// half-edge overflow into a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`CsrSizeError::Nodes`] when `n` exceeds `u32::MAX`,
    /// [`CsrSizeError::HalfEdges`] when the adjacency would overflow the
    /// u32 CSR offsets. Out-of-range endpoints still panic (a generator
    /// bug, not an input-size problem).
    pub fn try_from_edges<I>(n: usize, edges: I) -> Result<Self, CsrSizeError>
    where
        I: IntoIterator<Item = (u32, u32)>,
        I::IntoIter: Clone,
    {
        if n > u32::MAX as usize {
            return Err(CsrSizeError::Nodes { n });
        }
        let iter = edges.into_iter();
        let mut degree = vec![0u32; n];
        let mut half_edges = 0u64;
        for (a, b) in iter.clone() {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            if a == b {
                continue; // simple graph: self-loops dropped
            }
            degree[a as usize] += 1;
            degree[b as usize] += 1;
            half_edges += 2;
            if half_edges > u32::MAX as u64 {
                return Err(CsrSizeError::HalfEdges);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc as usize];
        // Reuse `degree` as per-node write cursors.
        let cursor = &mut degree;
        cursor.fill(0);
        for (a, b) in iter {
            if a == b {
                continue;
            }
            let ia = offsets[a as usize] + cursor[a as usize];
            targets[ia as usize] = NodeId(b);
            cursor[a as usize] += 1;
            let ib = offsets[b as usize] + cursor[b as usize];
            targets[ib as usize] = NodeId(a);
            cursor[b as usize] += 1;
        }
        // Sort each run and collapse duplicate edges in place: the write
        // cursor never catches up to the run being read, so compaction and
        // offset rebuilding happen in a single pass with no extra memory.
        let mut write = 0usize;
        let mut start = 0usize;
        for v in 0..n {
            let end = offsets[v + 1] as usize;
            targets[start..end].sort_unstable();
            let mut last = None;
            for r in start..end {
                let t = targets[r];
                if last != Some(t) {
                    targets[write] = t;
                    write += 1;
                    last = Some(t);
                }
            }
            start = end;
            offsets[v + 1] = write as u32;
        }
        targets.truncate(write);
        Ok(CsrAdjacency { offsets, targets })
    }

    /// The raw flat arrays `(offsets, targets)` — the encode half of the
    /// snapshot round-trip. [`CsrAdjacency::try_from_parts`] inverts this
    /// exactly: `try_from_parts` of `parts()` is always `Ok` and equal.
    #[inline]
    pub fn parts(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.targets)
    }

    /// Rebuilds an adjacency from raw `(offsets, targets)` arrays,
    /// re-validating every structural invariant: offsets start at 0 and
    /// are monotone with `offsets.last() == targets.len()`, every run is
    /// strictly ascending, in node range, loop-free, and every half-edge
    /// has its reverse. O(n + m log Δ) — the symmetry check binary
    /// searches the reverse run.
    ///
    /// # Errors
    ///
    /// The first violated invariant as a [`CsrPartsError`]; a decoded
    /// snapshot can therefore never yield a structurally invalid graph.
    pub fn try_from_parts(offsets: Vec<u32>, targets: Vec<NodeId>) -> Result<Self, CsrPartsError> {
        if offsets.first() != Some(&0) {
            return Err(CsrPartsError::BadOffsetHead);
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            if offsets[v + 1] < offsets[v] {
                return Err(CsrPartsError::NonMonotoneOffsets { node: v as u32 });
            }
        }
        let last = offsets[n];
        if last as usize != targets.len() {
            return Err(CsrPartsError::LengthMismatch {
                last,
                targets: targets.len(),
            });
        }
        let csr = CsrAdjacency { offsets, targets };
        // Pass 1: every run is in range, loop-free, strictly ascending.
        for v in 0..n {
            let v32 = v as u32;
            let run = csr.neighbors(NodeId(v32));
            for (i, &w) in run.iter().enumerate() {
                if w.index() >= n {
                    return Err(CsrPartsError::TargetOutOfRange { node: v32 });
                }
                if w.0 == v32 {
                    return Err(CsrPartsError::SelfLoop { node: v32 });
                }
                if i > 0 && run[i - 1] >= w {
                    return Err(CsrPartsError::UnsortedRun { node: v32 });
                }
            }
        }
        // Pass 2: every half-edge has its reverse (runs are now known
        // sorted, so the reverse lookup can binary search).
        for v in 0..n {
            let v32 = v as u32;
            for &w in csr.neighbors(NodeId(v32)) {
                if csr.neighbors(w).binary_search(&NodeId(v32)).is_err() {
                    return Err(CsrPartsError::Asymmetric { from: v32, to: w.0 });
                }
            }
        }
        Ok(csr)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total length of the neighbor lists — twice the undirected edge
    /// count.
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(NodeId(v as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Builds the [`CsrEdgeIndex`] assigning this adjacency the exact
    /// [`EdgeId`]s that [`Graph::from_edges`] would: ids in lexicographic
    /// `(min, max)` endpoint order. One O(n + m) pass.
    pub fn edge_index(&self) -> CsrEdgeIndex {
        let n = self.node_count();
        let mut fwd = Vec::with_capacity(n + 1);
        fwd.push(0u32);
        let mut acc = 0u32;
        for v in 0..n {
            let v = NodeId(v as u32);
            let nb = self.neighbors(v);
            acc += (nb.len() - nb.partition_point(|&w| w <= v)) as u32;
            fwd.push(acc);
        }
        CsrEdgeIndex { fwd }
    }

    /// Iterator over all edges as `(EdgeId, NodeId, NodeId)` with the
    /// smaller endpoint first, in [`EdgeId`] order — the CSR equivalent of
    /// [`Graph::edges`], enumerating exactly the ids [`CsrEdgeIndex`]
    /// assigns.
    pub fn forward_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        (0..self.node_count() as u32)
            .scan(0u32, move |base, a| {
                let a = NodeId(a);
                let nb = self.neighbors(a);
                let from = nb.partition_point(|&w| w <= a);
                let start = *base;
                *base += (nb.len() - from) as u32;
                Some(
                    nb[from..]
                        .iter()
                        .enumerate()
                        .map(move |(i, &b)| (EdgeId(start + i as u32), a, b)),
                )
            })
            .flatten()
    }

    /// The subgraph keeping exactly the edges in `set`, on the full vertex
    /// set, with edge universe ids as assigned by [`CsrAdjacency::edge_index`].
    /// Equivalent to [`CsrAdjacency::from_edge_set`] without the `Graph`.
    ///
    /// # Panics
    ///
    /// Panics if `set` ranges over a different edge universe.
    pub fn subgraph(&self, set: &EdgeSet) -> CsrAdjacency {
        assert_eq!(
            set.universe(),
            self.edge_count(),
            "edge set built for a different graph"
        );
        let n = self.node_count();
        let mut degree = vec![0u32; n];
        for (e, a, b) in self.forward_edges() {
            if set.contains(e) {
                degree[a.index()] += 1;
                degree[b.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc as usize];
        // Reuse `degree` as per-node write cursors. Forward-edge order is
        // lexicographic, so every run comes out already sorted ascending
        // (all smaller-endpoint neighbors arrive first, each in ascending
        // order, then all larger-endpoint ones, also ascending).
        let cursor = &mut degree;
        cursor.fill(0);
        for (e, a, b) in self.forward_edges() {
            if set.contains(e) {
                let ia = offsets[a.index()] + cursor[a.index()];
                targets[ia as usize] = b;
                cursor[a.index()] += 1;
                let ib = offsets[b.index()] + cursor[b.index()];
                targets[ib as usize] = a;
                cursor[b.index()] += 1;
            }
        }
        CsrAdjacency { offsets, targets }
    }

    /// Whether the graph is connected (vacuously true when empty). One BFS.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = vec![NodeId(0)];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = queue.pop() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    reached += 1;
                    queue.push(w);
                }
            }
        }
        reached == n
    }
}

/// Graph-identical edge ids for a [`CsrAdjacency`], without the `Graph`.
///
/// [`Graph::from_edges`] sorts and deduplicates its edge list, so its
/// [`EdgeId`]s enumerate edges in lexicographic `(min, max)` endpoint
/// order — which is exactly the order the forward half-edges (`a → b`
/// with `a < b`) appear in a CSR traversal. This index is one prefix-sum
/// array over that observation: `fwd[a]` counts the forward half-edges
/// before node `a`, and the id of `{a, b}` is `fwd[a]` plus the rank of
/// `b` among `a`'s larger neighbors. CSR-native construction drivers use
/// it to emit [`EdgeSet`]s bit-identical to their `Graph`-built
/// counterparts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrEdgeIndex {
    /// `fwd[v]` = number of edges whose smaller endpoint is `< v`;
    /// `fwd[n]` = edge count.
    fwd: Vec<u32>,
}

impl CsrEdgeIndex {
    /// Number of undirected edges (the edge-universe size).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.fwd[self.fwd.len() - 1] as usize
    }

    /// The edge id of `{u, v}` in `csr`, if present. O(log degree).
    ///
    /// Must be queried against the same adjacency the index was built
    /// from; ids match [`Graph::find_edge`] on the equivalent graph.
    pub fn edge_id(&self, csr: &CsrAdjacency, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let nb = csr.neighbors(a);
        let from = nb.partition_point(|&w| w <= a);
        let rank = nb[from..].binary_search(&b).ok()?;
        Some(EdgeId(self.fwd[a.index()] + rank as u32))
    }
}

/// Incrementally growable adjacency with flat storage: one singly linked
/// half-edge chain per node, all chains sharing a single arena. The
/// CSR-style companion for algorithms that *grow* their subgraph edge by
/// edge (greedy/streaming spanner filters), where a static [`CsrAdjacency`]
/// cannot be prebuilt and per-node `Vec<Vec<_>>` growth would scatter the
/// hot BFS loops across thousands of small allocations.
///
/// Neighbors iterate in reverse insertion order; callers must be
/// order-insensitive (bounded-distance predicates are).
///
/// Edges can also be *removed* ([`LinkedAdjacency::remove_edge`]): the
/// half-edge pair is unlinked from both chains in O(degree). Arena slots
/// of removed edges are not reclaimed (the arena only grows), which keeps
/// every live slot index stable — the right trade for the dynamic-spanner
/// workload, where the live set stays near the girth bound while the
/// edit stream may be much longer.
#[derive(Debug, Clone)]
pub struct LinkedAdjacency {
    /// Per node: arena index of its most recent half-edge, or `NO_EDGE`.
    head: Vec<u32>,
    /// Per half-edge: the previous half-edge of the same node.
    next: Vec<u32>,
    /// Per half-edge: the neighbor it points at.
    dst: Vec<NodeId>,
    /// Half-edges currently linked (arena slots minus removed ones).
    live_half: usize,
}

const NO_EDGE: u32 = u32::MAX;

impl LinkedAdjacency {
    /// An edgeless adjacency over `n` nodes.
    pub fn new(n: usize) -> Self {
        LinkedAdjacency {
            head: vec![NO_EDGE; n],
            next: Vec::new(),
            dst: Vec::new(),
            live_half: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.head.len()
    }

    /// Number of undirected edges currently present (added minus removed).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_half / 2
    }

    /// Appends the undirected edge `{u, v}`. O(1). No dedup: offering the
    /// same pair twice stores it twice (callers filter duplicates).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the arena would exceed
    /// `u32::MAX` half-edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            self.dst.len() + 2 < NO_EDGE as usize,
            "LinkedAdjacency arena exceeds u32 half-edge capacity"
        );
        for (a, b) in [(u, v), (v, u)] {
            let slot = self.dst.len() as u32;
            self.next.push(self.head[a.index()]);
            self.dst.push(b);
            self.head[a.index()] = slot;
        }
        self.live_half += 2;
    }

    /// Removes one copy of the undirected edge `{u, v}` if present;
    /// returns whether an edge was removed. O(degree(u) + degree(v)).
    /// When the pair was added more than once (no dedup on insert), the
    /// most recently added copy is the one unlinked.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.unlink_half(u, v) {
            return false;
        }
        let reverse = self.unlink_half(v, u);
        debug_assert!(reverse, "half-edge pair out of sync");
        self.live_half -= 2;
        true
    }

    /// Unlinks the first chain entry of `a` pointing at `b`, if any.
    fn unlink_half(&mut self, a: NodeId, b: NodeId) -> bool {
        let mut at = self.head[a.index()];
        let mut prev = NO_EDGE;
        while at != NO_EDGE {
            if self.dst[at as usize] == b {
                let tail = self.next[at as usize];
                if prev == NO_EDGE {
                    self.head[a.index()] = tail;
                } else {
                    self.next[prev as usize] = tail;
                }
                return true;
            }
            prev = at;
            at = self.next[at as usize];
        }
        false
    }

    /// The neighbors of `v`, most recently added first.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut at = self.head[v.index()];
        std::iter::from_fn(move || {
            if at == NO_EDGE {
                return None;
            }
            let w = self.dst[at as usize];
            at = self.next[at as usize];
            Some(w)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn linked_adjacency_matches_vec_of_vecs() {
        let g = generators::erdos_renyi_gnm(40, 100, 11);
        let mut linked = LinkedAdjacency::new(40);
        let mut vecs: Vec<Vec<NodeId>> = vec![Vec::new(); 40];
        for (_, u, v) in g.edges() {
            linked.add_edge(u, v);
            vecs[u.index()].push(v);
            vecs[v.index()].push(u);
        }
        assert_eq!(linked.node_count(), 40);
        assert_eq!(linked.edge_count(), g.edge_count());
        for v in g.nodes() {
            let mut a: Vec<NodeId> = linked.neighbors(v).collect();
            a.sort_unstable();
            let mut b = vecs[v.index()].clone();
            b.sort_unstable();
            assert_eq!(a, b, "node {v}");
        }
    }

    #[test]
    fn matches_graph_adjacency_sorted() {
        let g = generators::erdos_renyi_gnm(50, 120, 3);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.node_count(), 50);
        for v in g.nodes() {
            let mut expect: Vec<NodeId> = g.neighbor_ids(v).collect();
            expect.sort_unstable();
            assert_eq!(csr.neighbors(v), expect.as_slice(), "node {v}");
            assert_eq!(csr.degree(v), g.degree(v));
        }
        assert_eq!(csr.max_degree(), g.max_degree());
    }

    #[test]
    fn from_edges_matches_from_graph() {
        // Duplicates, self-loops, and both orientations: all collapse to
        // the same simple graph `Graph::from_edges` builds.
        let edges = [(0u32, 1), (1, 0), (2, 2), (3, 1), (1, 3), (4, 0), (0, 4)];
        let direct = CsrAdjacency::from_edges(5, edges);
        let via_graph = CsrAdjacency::from_graph(&Graph::from_edges(5, edges));
        assert_eq!(direct, via_graph);
        assert_eq!(direct.half_edge_count(), 6);
    }

    #[test]
    fn from_edges_matches_on_random_graph() {
        let g = generators::erdos_renyi_gnm(70, 210, 11);
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(
            CsrAdjacency::from_edges(70, edges.iter().copied()),
            CsrAdjacency::from_graph(&g)
        );
    }

    #[test]
    fn empty_graph() {
        let csr = CsrAdjacency::from_graph(&Graph::empty(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.max_degree(), 0);
    }

    #[test]
    fn star_hub_sees_all_leaves() {
        let g = generators::star(1000);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.degree(NodeId(0)), 999);
        assert!(csr.neighbors(NodeId(0)).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn edge_set_full_matches_from_graph() {
        let g = generators::erdos_renyi_gnm(60, 180, 5);
        let full = CsrAdjacency::from_edge_set(&g, &EdgeSet::full(&g));
        assert_eq!(full, CsrAdjacency::from_graph(&g));
    }

    #[test]
    fn edge_set_subgraph_keeps_only_selected_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut s = EdgeSet::new(&g);
        for (e, u, v) in g.edges() {
            if !(u == NodeId(0) && v == NodeId(3)) {
                s.insert(e);
            }
        }
        let csr = CsrAdjacency::from_edge_set(&g, &s);
        assert_eq!(csr.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(csr.neighbors(NodeId(3)), &[NodeId(2)]);
        assert_eq!(csr.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn edge_index_matches_graph_edge_ids() {
        let g = generators::erdos_renyi_gnm(80, 300, 21);
        let csr = CsrAdjacency::from_graph(&g);
        let idx = csr.edge_index();
        assert_eq!(idx.edge_count(), g.edge_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for (e, u, v) in g.edges() {
            assert_eq!(idx.edge_id(&csr, u, v), Some(e), "edge {u}-{v}");
            assert_eq!(idx.edge_id(&csr, v, u), Some(e), "edge {v}-{u}");
        }
        // Non-edges and self-loops resolve to None.
        for v in g.nodes() {
            assert_eq!(idx.edge_id(&csr, v, v), None);
        }
        let mut missing = 0;
        for u in 0..80u32 {
            for v in (u + 1)..80 {
                if g.find_edge(NodeId(u), NodeId(v)).is_none() {
                    assert_eq!(idx.edge_id(&csr, NodeId(u), NodeId(v)), None);
                    missing += 1;
                }
            }
        }
        assert!(missing > 0);
    }

    #[test]
    fn forward_edges_match_graph_edges() {
        let g = generators::erdos_renyi_gnm(60, 200, 9);
        let csr = CsrAdjacency::from_graph(&g);
        let ours: Vec<_> = csr.forward_edges().collect();
        let theirs: Vec<_> = g.edges().collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn subgraph_matches_from_edge_set() {
        let g = generators::erdos_renyi_gnm(50, 160, 13);
        let csr = CsrAdjacency::from_graph(&g);
        let mut set = EdgeSet::new(&g);
        for (e, _, _) in g.edges() {
            if e.0 % 3 != 0 {
                set.insert(e);
            }
        }
        assert_eq!(csr.subgraph(&set), CsrAdjacency::from_edge_set(&g, &set));
    }

    #[test]
    fn connectivity_matches_graph() {
        use crate::components::is_connected;
        for (g, name) in [
            (generators::connected_gnm(64, 100, 1), "connected"),
            (generators::erdos_renyi_gnm(64, 30, 2), "sparse"),
            (Graph::empty(5), "isolated"),
            (Graph::empty(0), "empty"),
            (Graph::empty(1), "single"),
        ] {
            let csr = CsrAdjacency::from_graph(&g);
            assert_eq!(csr.is_connected(), is_connected(&g), "{name}");
        }
    }

    #[test]
    fn try_from_edges_rejects_oversized_n_before_allocating() {
        // 2^33 nodes would be a 32 GiB degree array: the check must fire
        // before the allocation, instantly.
        let err = CsrAdjacency::try_from_edges(1usize << 33, std::iter::empty()).unwrap_err();
        assert_eq!(err, CsrSizeError::Nodes { n: 1usize << 33 });
        let msg = err.to_string();
        assert!(msg.contains("shard the input"), "unactionable: {msg}");
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 node-id space")]
    fn from_edges_panics_with_actionable_message() {
        let _ = CsrAdjacency::from_edges(1usize << 33, std::iter::empty());
    }

    #[test]
    fn parts_round_trip_is_lossless() {
        for (g, name) in [
            (generators::erdos_renyi_gnm(60, 180, 5), "er"),
            (Graph::empty(4), "isolated"),
            (Graph::empty(0), "empty"),
        ] {
            let csr = CsrAdjacency::from_graph(&g);
            let (offsets, targets) = csr.parts();
            let back =
                CsrAdjacency::try_from_parts(offsets.to_vec(), targets.to_vec()).expect(name);
            assert_eq!(back, csr, "{name}");
        }
    }

    #[test]
    fn try_from_parts_rejects_each_invariant_violation() {
        let good = CsrAdjacency::from_graph(&Graph::from_edges(3, [(0, 1), (1, 2)]));
        let (o, t) = good.parts();
        let (o, t) = (o.to_vec(), t.to_vec());
        let cases: Vec<(Vec<u32>, Vec<NodeId>, CsrPartsError)> = vec![
            (vec![], vec![], CsrPartsError::BadOffsetHead),
            (vec![1, 2], vec![NodeId(0)], CsrPartsError::BadOffsetHead),
            (
                vec![0, 2, 1, 4],
                t.clone(),
                CsrPartsError::NonMonotoneOffsets { node: 1 },
            ),
            (
                vec![0, 1, 3, 5],
                t.clone(),
                CsrPartsError::LengthMismatch {
                    last: 5,
                    targets: 4,
                },
            ),
            (
                o.clone(),
                vec![NodeId(1), NodeId(9), NodeId(2), NodeId(1)],
                CsrPartsError::TargetOutOfRange { node: 1 },
            ),
            (
                o.clone(),
                vec![NodeId(1), NodeId(2), NodeId(0), NodeId(1)],
                CsrPartsError::UnsortedRun { node: 1 },
            ),
            (
                o.clone(),
                vec![NodeId(1), NodeId(1), NodeId(2), NodeId(1)],
                CsrPartsError::SelfLoop { node: 1 },
            ),
            (
                o.clone(),
                vec![NodeId(2), NodeId(0), NodeId(2), NodeId(1)],
                CsrPartsError::Asymmetric { from: 0, to: 2 },
            ),
        ];
        for (offsets, targets, want) in cases {
            let got = CsrAdjacency::try_from_parts(offsets, targets).unwrap_err();
            assert_eq!(got, want);
            assert!(!got.to_string().is_empty());
        }
    }

    #[test]
    fn linked_adjacency_remove_edge() {
        let mut adj = LinkedAdjacency::new(5);
        adj.add_edge(NodeId(0), NodeId(1));
        adj.add_edge(NodeId(0), NodeId(2));
        adj.add_edge(NodeId(0), NodeId(3));
        assert_eq!(adj.edge_count(), 3);
        // Remove from the middle of the chain.
        assert!(adj.remove_edge(NodeId(2), NodeId(0)));
        assert_eq!(adj.edge_count(), 2);
        let mut nb: Vec<NodeId> = adj.neighbors(NodeId(0)).collect();
        nb.sort_unstable();
        assert_eq!(nb, vec![NodeId(1), NodeId(3)]);
        assert_eq!(adj.neighbors(NodeId(2)).count(), 0);
        // Removing again fails; the rest is untouched.
        assert!(!adj.remove_edge(NodeId(0), NodeId(2)));
        assert!(!adj.remove_edge(NodeId(1), NodeId(3)));
        assert_eq!(adj.edge_count(), 2);
        // Remove the head entry, then the last, emptying the chain.
        assert!(adj.remove_edge(NodeId(0), NodeId(3)));
        assert!(adj.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(adj.edge_count(), 0);
        assert_eq!(adj.neighbors(NodeId(0)).count(), 0);
        // The arena is append-only: re-adding after removals still works.
        adj.add_edge(NodeId(0), NodeId(4));
        assert_eq!(
            adj.neighbors(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(4)]
        );
    }

    #[test]
    fn linked_adjacency_removal_matches_reference_sets() {
        use rand::{Rng, SeedableRng};
        let n = 30u32;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let mut adj = LinkedAdjacency::new(n as usize);
        let mut reference: std::collections::BTreeSet<(u32, u32)> = Default::default();
        for _ in 0..600 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if rng.gen_bool(0.6) {
                if reference.insert(key) {
                    adj.add_edge(NodeId(u), NodeId(v));
                }
            } else if reference.remove(&key) {
                assert!(adj.remove_edge(NodeId(u), NodeId(v)));
            } else {
                assert!(!adj.remove_edge(NodeId(u), NodeId(v)));
            }
            assert_eq!(adj.edge_count(), reference.len());
        }
        for v in 0..n {
            let mut got: Vec<u32> = adj.neighbors(NodeId(v)).map(|w| w.0).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = reference
                .iter()
                .filter_map(|&(a, b)| match v {
                    _ if a == v => Some(b),
                    _ if b == v => Some(a),
                    _ => None,
                })
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "node {v}");
        }
    }

    #[test]
    fn empty_edge_set_has_isolated_nodes() {
        let g = generators::cycle(10);
        let csr = CsrAdjacency::from_edge_set(&g, &EdgeSet::new(&g));
        assert_eq!(csr.node_count(), 10);
        for v in g.nodes() {
            assert!(csr.neighbors(v).is_empty());
        }
    }
}
