//! Flat CSR adjacency shared by the distance engine and the netsim
//! executors.
//!
//! [`Graph`] stores adjacency in edge-insertion order; both the simulator
//! and the distance engine need each node's neighbor list **sorted
//! ascending** (the determinism contract: `Ctx::neighbors` is sorted,
//! `Ctx::send` binary searches it, and the engine's traversal order is a
//! pure function of the layout). [`CsrAdjacency`] lays the data out as two
//! flat arrays (offsets + targets), built once and shared freely — the
//! replacement for the `Vec<Vec<NodeId>>` tables that used to be rebuilt
//! per executor run and per stretch-verification source.

use crate::edgeset::EdgeSet;
use crate::graph::{Graph, NodeId};

/// Sorted neighbor lists in compressed sparse row layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, each run sorted ascending.
    targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Builds the sorted CSR adjacency of `graph`.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for v in graph.nodes() {
            let start = targets.len();
            targets.extend(graph.neighbor_ids(v));
            targets[start..].sort_unstable();
            offsets.push(u32::try_from(targets.len()).expect("graph fits u32 half-edges"));
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds the sorted CSR adjacency of the subgraph of `graph` induced
    /// by the edges in `set` (on the full vertex set).
    ///
    /// One counting pass over the set plus a scatter; the per-node runs are
    /// then sorted so the layout is identical to what
    /// [`CsrAdjacency::from_graph`] would produce on the materialized
    /// subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `set` ranges over a different edge universe than `graph`.
    pub fn from_edge_set(graph: &Graph, set: &EdgeSet) -> Self {
        assert_eq!(
            set.universe(),
            graph.edge_count(),
            "edge set built for a different graph"
        );
        let n = graph.node_count();
        let mut degree = vec![0u32; n];
        for e in set.iter() {
            let (a, b) = graph.endpoints(e);
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc = acc.checked_add(d).expect("graph fits u32 half-edges");
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc as usize];
        // Reuse `degree` as per-node write cursors.
        let cursor = &mut degree;
        cursor.fill(0);
        for e in set.iter() {
            let (a, b) = graph.endpoints(e);
            let ia = offsets[a.index()] + cursor[a.index()];
            targets[ia as usize] = b;
            cursor[a.index()] += 1;
            let ib = offsets[b.index()] + cursor[b.index()];
            targets[ib as usize] = a;
            cursor[b.index()] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds the sorted CSR adjacency of the `n`-node simple graph with
    /// the given edges, **without** materializing a [`Graph`] or any
    /// per-node `Vec` in between — the streaming path that takes the
    /// generators to n ≥ 10⁶ nodes.
    ///
    /// The edge stream is consumed twice (degree count, then scatter), so
    /// the iterator must be `Clone` — generator closures and ranges are.
    /// Self-loops are skipped and duplicate edges collapsed, exactly like
    /// [`Graph::from_edges`](crate::graph::Graph::from_edges), so the
    /// result is identical to
    /// `CsrAdjacency::from_graph(&Graph::from_edges(n, edges))`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the half-edge count
    /// overflows `u32`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
        I::IntoIter: Clone,
    {
        let iter = edges.into_iter();
        let mut degree = vec![0u32; n];
        for (a, b) in iter.clone() {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            if a == b {
                continue; // simple graph: self-loops dropped
            }
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc = acc.checked_add(d).expect("graph fits u32 half-edges");
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc as usize];
        // Reuse `degree` as per-node write cursors.
        let cursor = &mut degree;
        cursor.fill(0);
        for (a, b) in iter {
            if a == b {
                continue;
            }
            let ia = offsets[a as usize] + cursor[a as usize];
            targets[ia as usize] = NodeId(b);
            cursor[a as usize] += 1;
            let ib = offsets[b as usize] + cursor[b as usize];
            targets[ib as usize] = NodeId(a);
            cursor[b as usize] += 1;
        }
        // Sort each run and collapse duplicate edges in place: the write
        // cursor never catches up to the run being read, so compaction and
        // offset rebuilding happen in a single pass with no extra memory.
        let mut write = 0usize;
        let mut start = 0usize;
        for v in 0..n {
            let end = offsets[v + 1] as usize;
            targets[start..end].sort_unstable();
            let mut last = None;
            for r in start..end {
                let t = targets[r];
                if last != Some(t) {
                    targets[write] = t;
                    write += 1;
                    last = Some(t);
                }
            }
            start = end;
            offsets[v + 1] = write as u32;
        }
        targets.truncate(write);
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total length of the neighbor lists — twice the undirected edge
    /// count.
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(NodeId(v as u32)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn matches_graph_adjacency_sorted() {
        let g = generators::erdos_renyi_gnm(50, 120, 3);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.node_count(), 50);
        for v in g.nodes() {
            let mut expect: Vec<NodeId> = g.neighbor_ids(v).collect();
            expect.sort_unstable();
            assert_eq!(csr.neighbors(v), expect.as_slice(), "node {v}");
            assert_eq!(csr.degree(v), g.degree(v));
        }
        assert_eq!(csr.max_degree(), g.max_degree());
    }

    #[test]
    fn from_edges_matches_from_graph() {
        // Duplicates, self-loops, and both orientations: all collapse to
        // the same simple graph `Graph::from_edges` builds.
        let edges = [(0u32, 1), (1, 0), (2, 2), (3, 1), (1, 3), (4, 0), (0, 4)];
        let direct = CsrAdjacency::from_edges(5, edges);
        let via_graph = CsrAdjacency::from_graph(&Graph::from_edges(5, edges));
        assert_eq!(direct, via_graph);
        assert_eq!(direct.half_edge_count(), 6);
    }

    #[test]
    fn from_edges_matches_on_random_graph() {
        let g = generators::erdos_renyi_gnm(70, 210, 11);
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(
            CsrAdjacency::from_edges(70, edges.iter().copied()),
            CsrAdjacency::from_graph(&g)
        );
    }

    #[test]
    fn empty_graph() {
        let csr = CsrAdjacency::from_graph(&Graph::empty(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.max_degree(), 0);
    }

    #[test]
    fn star_hub_sees_all_leaves() {
        let g = generators::star(1000);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.degree(NodeId(0)), 999);
        assert!(csr.neighbors(NodeId(0)).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn edge_set_full_matches_from_graph() {
        let g = generators::erdos_renyi_gnm(60, 180, 5);
        let full = CsrAdjacency::from_edge_set(&g, &EdgeSet::full(&g));
        assert_eq!(full, CsrAdjacency::from_graph(&g));
    }

    #[test]
    fn edge_set_subgraph_keeps_only_selected_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut s = EdgeSet::new(&g);
        for (e, u, v) in g.edges() {
            if !(u == NodeId(0) && v == NodeId(3)) {
                s.insert(e);
            }
        }
        let csr = CsrAdjacency::from_edge_set(&g, &s);
        assert_eq!(csr.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(csr.neighbors(NodeId(3)), &[NodeId(2)]);
        assert_eq!(csr.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn empty_edge_set_has_isolated_nodes() {
        let g = generators::cycle(10);
        let csr = CsrAdjacency::from_edge_set(&g, &EdgeSet::new(&g));
        assert_eq!(csr.node_count(), 10);
        for v in g.nodes() {
            assert!(csr.neighbors(v).is_empty());
        }
    }
}
