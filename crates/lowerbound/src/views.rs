//! τ-round algorithms as functions of neighborhood views.
//!
//! In τ synchronized rounds, everything a vertex can possibly learn is the
//! topology (and labels, and shared randomness) of its radius-τ
//! neighborhood. Sect. 3 leans on two consequences:
//!
//! 1. an edge may be discarded only if some endpoint's view certifies an
//!    alternate route (otherwise discarding it could disconnect a graph
//!    indistinguishable from the input), and
//! 2. vertices with isomorphic views behave identically in distribution —
//!    so on G(τ, λ, κ), where all block edges have isomorphic views, every
//!    block edge is discarded with the same probability.
//!
//! This module makes those statements executable: [`EdgeView`] extracts
//! the canonicalized radius-τ view of an edge, and [`run_view_rule`] runs
//! an arbitrary deterministic rule-of-the-view over all edges — the
//! formal model of a "τ-round spanner algorithm" the lower-bound
//! experiments quantify over. The tests verify claim (2) literally:
//! canonical views of all block edges of the gadget are *equal*, and
//! chain-edge views never contain an alternate route.

use std::collections::{HashMap, VecDeque};

use spanner_graph::{EdgeId, EdgeSet, Graph, NodeId};

/// The canonicalized radius-τ view of an edge {u, v}: the subgraph induced
/// by the union of both endpoints' τ-balls, with vertices renamed by BFS
/// discovery order (so isomorphic views compare equal), plus the edge's
/// position in it.
///
/// Labels are deliberately erased: the paper randomizes vertex labels
/// precisely so that algorithms cannot exploit them, and claim (2) is
/// about the labeled-view *distribution* being identical — equality of
/// unlabeled canonical views is the underlying fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdgeView {
    /// Number of vertices in the view.
    pub n: usize,
    /// Canonical edge list (pairs of canonical indices, sorted).
    pub edges: Vec<(u32, u32)>,
    /// Canonical indices of the viewed edge's endpoints.
    pub endpoints: (u32, u32),
}

impl EdgeView {
    /// Extracts the canonical radius-`tau` view of edge `e` in `g`.
    ///
    /// Canonicalization: BFS from the pair {u, v} (u first), visiting
    /// neighbors in ascending id order; vertices are renamed by discovery
    /// order. Views of edges whose neighborhoods are isomorphic *via the
    /// discovery-order correspondence* compare equal; this is exact for
    /// the highly symmetric gadget neighborhoods (verified by the tests)
    /// though not a general graph-isomorphism canonical form.
    pub fn extract(g: &Graph, e: EdgeId, tau: u32) -> EdgeView {
        let (u, v) = g.endpoints(e);
        // BFS from both endpoints simultaneously, bounded by tau.
        let mut order: HashMap<NodeId, u32> = HashMap::new();
        let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
        order.insert(u, 0);
        order.insert(v, 1);
        queue.push_back((u, 0));
        queue.push_back((v, 0));
        let mut members: Vec<NodeId> = vec![u, v];
        while let Some((x, d)) = queue.pop_front() {
            if d == tau {
                continue;
            }
            let mut nbrs: Vec<NodeId> = g.neighbor_ids(x).collect();
            nbrs.sort_unstable();
            for y in nbrs {
                if !order.contains_key(&y) {
                    let id = order.len() as u32;
                    order.insert(y, id);
                    members.push(y);
                    queue.push_back((y, d + 1));
                }
            }
        }
        // Induced edges among members, canonical ids.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for &x in &members {
            let cx = order[&x];
            for y in g.neighbor_ids(x) {
                if let Some(&cy) = order.get(&y) {
                    if cx < cy {
                        edges.push((cx, cy));
                    }
                }
            }
        }
        edges.sort_unstable();
        EdgeView {
            n: members.len(),
            edges,
            endpoints: (0, 1),
        }
    }

    /// Whether the view certifies an alternate route between the viewed
    /// edge's endpoints (a path avoiding the edge, inside the view): the
    /// precondition for a correct algorithm to discard the edge.
    pub fn has_alternate_route(&self) -> bool {
        // BFS from endpoint 0 to endpoint 1 avoiding the direct edge.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            if (a, b) == self.endpoints {
                continue;
            }
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([self.endpoints.0]);
        seen[self.endpoints.0 as usize] = true;
        while let Some(x) = queue.pop_front() {
            if x == self.endpoints.1 {
                return true;
            }
            for &y in &adj[x as usize] {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    queue.push_back(y);
                }
            }
        }
        false
    }
}

/// Runs a deterministic view rule as a τ-round algorithm: the rule sees
/// each edge's canonical view (plus a per-view hash of the shared seed, so
/// randomized rules are expressible) and returns whether to KEEP the edge.
///
/// Edges whose view shows no alternate route are always kept, regardless
/// of the rule — mirroring the correctness constraint of claim (1).
pub fn run_view_rule<F>(g: &Graph, tau: u32, seed: u64, mut rule: F) -> EdgeSet
where
    F: FnMut(&EdgeView, u64) -> bool,
{
    let mut kept = EdgeSet::new(g);
    for (e, _, _) in g.edges() {
        let view = EdgeView::extract(g, e, tau);
        if !view.has_alternate_route() {
            kept.insert(e);
            continue;
        }
        // Hash the seed with the edge id for per-edge randomness that is
        // still a deterministic function of (input, seed).
        let mut s = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(e.0 as u64 + 1));
        let r = spanner_netsim::rng::splitmix64(&mut s);
        if rule(&view, r) {
            kept.insert(e);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{Gadget, GadgetParams};
    use spanner_graph::generators;

    #[test]
    fn cycle_edges_have_alternate_routes_iff_radius_reaches() {
        let g = generators::cycle(12);
        for (e, _, _) in g.edges() {
            // The alternate route around a 12-cycle has length 11; its
            // internal vertices all lie within tau of an endpoint iff
            // 11 <= 2*tau + 1, i.e. tau >= 5.
            assert!(!EdgeView::extract(&g, e, 4).has_alternate_route());
            assert!(EdgeView::extract(&g, e, 5).has_alternate_route());
        }
    }

    #[test]
    fn triangle_always_alternate() {
        let g = generators::complete(3);
        for (e, _, _) in g.edges() {
            assert!(EdgeView::extract(&g, e, 1).has_alternate_route());
        }
    }

    /// Claim (2), executable: all block edges of the gadget have literally
    /// equal canonical views, so any view rule treats them identically.
    #[test]
    fn gadget_block_views_identical() {
        let g = Gadget::build(GadgetParams::new(3, 4, 4).unwrap());
        let views: Vec<EdgeView> = g
            .block_edges
            .iter()
            .map(|&e| EdgeView::extract(&g.graph, e, g.params.tau))
            .collect();
        // Inner blocks all have identical neighborhoods; boundary chains
        // were added precisely to make the first/last blocks look the
        // same too — check full equality.
        for (i, v) in views.iter().enumerate() {
            assert_eq!(
                v, &views[0],
                "block edge {i} has a different view than block edge 0"
            );
        }
    }

    /// Claim (1), executable: chain-edge views certify no alternate route,
    /// so every correct rule keeps them.
    #[test]
    fn gadget_chain_edges_forced_kept() {
        let g = Gadget::build(GadgetParams::new(3, 3, 3).unwrap());
        // A rule that tries to drop EVERYTHING is still forced to keep
        // all chain edges.
        let kept = run_view_rule(&g.graph, g.params.tau, 1, |_, _| false);
        let blocks: std::collections::HashSet<_> = g.block_edges.iter().copied().collect();
        for (e, _, _) in g.graph.edges() {
            if blocks.contains(&e) {
                assert!(!kept.contains(e), "block edge {e} should be droppable");
            } else {
                assert!(kept.contains(e), "chain edge {e} must be kept");
            }
        }
    }

    /// A randomized keep-with-probability-1/2 rule drops each block edge
    /// with empirical probability ~1/2 — the symmetric behaviour the
    /// lower bound charges every algorithm with.
    #[test]
    fn randomized_rule_is_symmetric_across_blocks() {
        let g = Gadget::build(GadgetParams::new(2, 3, 6).unwrap());
        let trials = 40u64;
        let mut kept_count = vec![0u32; g.critical_edges.len()];
        for seed in 0..trials {
            let kept = run_view_rule(&g.graph, g.params.tau, seed, |_, r| r % 2 == 0);
            for (i, &ce) in g.critical_edges.iter().enumerate() {
                if kept.contains(ce) {
                    kept_count[i] += 1;
                }
            }
        }
        for (i, &c) in kept_count.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!(
                (rate - 0.5).abs() < 0.3,
                "critical edge {i} kept at rate {rate}"
            );
        }
    }

    /// On a tree no edge has an alternate route, so every rule — even
    /// drop-everything — keeps the whole graph.
    #[test]
    fn trees_are_fully_forced() {
        let g = generators::path(40);
        let kept = run_view_rule(&g, 3, 7, |_, _| false);
        assert_eq!(kept.len(), g.edge_count());
    }

    /// The forced-keep floor: whatever the rule does, the kept set always
    /// contains every edge without a locally visible alternate route.
    /// (Note this is a *necessary* condition for correctness, not a
    /// sufficient one — a rule can still disconnect the graph by dropping
    /// all edges of a local cycle; the lower bound only needs necessity.)
    #[test]
    fn forced_edges_always_kept() {
        let g = generators::connected_gnm(120, 400, 3);
        let kept = run_view_rule(&g, 2, 7, |_, r| r % 4 == 0);
        for (e, _, _) in g.edges() {
            if !EdgeView::extract(&g, e, 2).has_alternate_route() {
                assert!(kept.contains(e), "forced edge {e} dropped");
            }
        }
    }
}
