//! The lower-bound machinery of Sect. 3.
//!
//! Theorems 3–6 of Pettie (PODC 2008) show that additive, sublinear
//! additive, and (1+ε, β)-spanners cannot be computed quickly in a
//! distributed network. All four proofs use one input family: the gadget
//! graph **G(τ, λ, κ)** of Fig. 5 — κ complete λ×λ bipartite blocks chained
//! together such that
//!
//! 1. within τ rounds, no algorithm can justify discarding any *chain*
//!    edge (the shortest alternate path is longer than the τ-neighborhood
//!    can certify), so only bipartite edges are droppable, and
//! 2. by symmetry every bipartite edge is discarded with the same
//!    probability, so a size budget of n^{1+δ} forces a constant fraction
//!    of the *critical* edges (vL,i,1 — vR,i,1) to be dropped, each costing
//!    +2 on the spine distance.
//!
//! This crate builds the gadget ([`gadget`]), implements the extremal
//! τ-round strategies ([`adversary`]), and measures the resulting
//! distortion exactly ([`adversary::measure_spine_distortion`]) so the
//! experiment binaries can tabulate measured vs. predicted bounds for
//! Theorems 3, 4, 5, and 6.

pub mod adversary;
pub mod gadget;
pub mod views;

pub use gadget::{Gadget, GadgetParams};
pub use views::{run_view_rule, EdgeView};
