//! The gadget graph G(τ, λ, κ) of Fig. 5.
//!
//! κ complete λ×λ bipartite *blocks*; block i has left vertices
//! `vL(i, j)` and right vertices `vR(i, j)`, j ∈ [0, λ). Consecutive
//! blocks are joined by chains: the **spine** chain `vR(i, 0) — vL(i+1, 0)`
//! has length τ+1, the other λ−1 chains `vR(i, j) — vL(i+1, j)` have
//! length τ+5, so the spine is the unique shortest route and every
//! detour through another chain costs exactly +4 — which is what makes a
//! dropped *critical edge* (`vL(i,0) — vR(i,0)`) cost exactly +2 via the
//! in-block length-3 replacement. Boundary chains of length τ+1 hang off
//! both ends so every block-vertex's τ-neighborhood looks identical.

use spanner_graph::{EdgeId, Graph, GraphBuilder, NodeId};

/// Parameters of the gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GadgetParams {
    /// The round budget τ of the algorithm under attack.
    pub tau: u32,
    /// Side size λ of each complete bipartite block.
    pub lambda: u32,
    /// Number of blocks κ.
    pub kappa: u32,
}

impl GadgetParams {
    /// Validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `lambda < 2` or `kappa < 1`.
    pub fn new(tau: u32, lambda: u32, kappa: u32) -> Result<Self, String> {
        if lambda < 2 {
            return Err(format!("lambda must be >= 2, got {lambda}"));
        }
        if kappa < 1 {
            return Err(format!("kappa must be >= 1, got {kappa}"));
        }
        Ok(GadgetParams { tau, lambda, kappa })
    }

    /// The parameters used by Theorem 3/4: λ = c(τ+6)·n^δ and
    /// κ = n^{1−δ}/(c(τ+6)²) for a target size exponent δ and constant c.
    /// Values are rounded to at least (2, 1).
    pub fn for_theorem3(n: usize, delta: f64, c: f64, tau: u32) -> Self {
        let nf = n as f64;
        let t6 = (tau + 6) as f64;
        let lambda = (c * t6 * nf.powf(delta)).round().max(2.0) as u32;
        let kappa = (nf.powf(1.0 - delta) / (c * t6 * t6)).round().max(1.0) as u32;
        GadgetParams { tau, lambda, kappa }
    }

    /// The parameters of Theorem 5 (additive-β lower bound):
    /// τ = √(n^{1−δ}/(4β)) − 6, λ = 2(τ+6)n^δ, κ = n^{1−δ}/(2(τ+6)²) = 2β.
    pub fn for_theorem5(n: usize, delta: f64, beta: u32) -> Self {
        let nf = n as f64;
        let tau = ((nf.powf(1.0 - delta) / (4.0 * beta as f64)).sqrt() - 6.0)
            .floor()
            .max(1.0) as u32;
        let t6 = (tau + 6) as f64;
        let lambda = (2.0 * t6 * nf.powf(delta)).round().max(2.0) as u32;
        let kappa = (nf.powf(1.0 - delta) / (2.0 * t6 * t6)).round().max(1.0) as u32;
        GadgetParams { tau, lambda, kappa }
    }

    /// The parameters of Theorem 6 (sublinear additive d + c·d^{1−ε'}):
    /// τ+6 = n^{ε'(1−δ)/(1+ε')}/c, λ = 4(τ+6)n^δ, κ = n^{1−δ}/(4(τ+6)²).
    pub fn for_theorem6(n: usize, delta: f64, eps: f64, c: f64) -> Self {
        let nf = n as f64;
        let t6 = (nf.powf(eps * (1.0 - delta) / (1.0 + eps)) / c).max(7.0);
        let tau = (t6 - 6.0).round().max(1.0) as u32;
        let t6 = (tau + 6) as f64;
        let lambda = (4.0 * t6 * nf.powf(delta)).round().max(2.0) as u32;
        let kappa = (nf.powf(1.0 - delta) / (4.0 * t6 * t6)).round().max(1.0) as u32;
        GadgetParams { tau, lambda, kappa }
    }
}

/// Role of a vertex in the gadget (useful for rendering and assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Left side of block `block`, row `row`.
    Left {
        /// Block index in [0, κ).
        block: u32,
        /// Row index in [0, λ).
        row: u32,
    },
    /// Right side of block `block`, row `row`.
    Right {
        /// Block index in [0, κ).
        block: u32,
        /// Row index in [0, λ).
        row: u32,
    },
    /// Internal chain vertex.
    Chain,
}

/// The constructed gadget: the graph plus the structural indices the
/// experiments need.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// The parameters it was built with.
    pub params: GadgetParams,
    /// The graph itself.
    pub graph: Graph,
    /// Role of every vertex.
    pub roles: Vec<Role>,
    /// The κ critical edges (vL(i,0), vR(i,0)), in block order.
    pub critical_edges: Vec<EdgeId>,
    /// All bipartite block edges (including the critical ones).
    pub block_edges: Vec<EdgeId>,
    /// vL(i, j) vertex ids, indexed `[block][row]`.
    pub left: Vec<Vec<NodeId>>,
    /// vR(i, j) vertex ids, indexed `[block][row]`.
    pub right: Vec<Vec<NodeId>>,
}

impl Gadget {
    /// Builds G(τ, λ, κ).
    // The index loops below build the coupled `left`/`right`/`roles` tables
    // in lockstep with the vertex counter; iterator forms obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn build(params: GadgetParams) -> Self {
        let (tau, lambda, kappa) = (
            params.tau as usize,
            params.lambda as usize,
            params.kappa as usize,
        );

        // Count vertices: 2λκ block vertices, chains between blocks
        // (τ + (λ−1)(τ+4) internals per junction), and 2λ boundary chains
        // of τ+1 internals each.
        let n_blocks = 2 * lambda * kappa;
        let n_junction = kappa.saturating_sub(1) * (tau + (lambda - 1) * (tau + 4));
        let n_boundary = 2 * lambda * (tau + 1);
        let n = n_blocks + n_junction + n_boundary;

        let mut b = GraphBuilder::new(n);
        let mut roles = vec![Role::Chain; n];
        let mut next: u32 = 0;

        let mut left = vec![vec![NodeId(0); lambda]; kappa];
        let mut right = vec![vec![NodeId(0); lambda]; kappa];
        for i in 0..kappa {
            for j in 0..lambda {
                left[i][j] = NodeId(next);
                roles[next as usize] = Role::Left {
                    block: i as u32,
                    row: j as u32,
                };
                next += 1;
            }
            for j in 0..lambda {
                right[i][j] = NodeId(next);
                roles[next as usize] = Role::Right {
                    block: i as u32,
                    row: j as u32,
                };
                next += 1;
            }
        }

        /// Lays a path of `internal` fresh chain vertices from `from`,
        /// optionally ending at `to` (total length internal + 1).
        fn chain(
            b: &mut GraphBuilder,
            next: &mut u32,
            from: NodeId,
            to: Option<NodeId>,
            internal: usize,
        ) {
            let mut prev = from;
            for _ in 0..internal {
                let v = NodeId(*next);
                *next += 1;
                b.add_edge(prev, v);
                prev = v;
            }
            if let Some(t) = to {
                b.add_edge(prev, t);
            }
        }

        // Block edges (complete bipartite).
        for i in 0..kappa {
            for j in 0..lambda {
                for j2 in 0..lambda {
                    b.add_edge(left[i][j], right[i][j2]);
                }
            }
        }
        // Junction chains.
        for i in 0..kappa - 1 {
            chain(&mut b, &mut next, right[i][0], Some(left[i + 1][0]), tau);
            for j in 1..lambda {
                chain(
                    &mut b,
                    &mut next,
                    right[i][j],
                    Some(left[i + 1][j]),
                    tau + 4,
                );
            }
        }
        // Boundary chains.
        for j in 0..lambda {
            chain(&mut b, &mut next, left[0][j], None, tau + 1);
            chain(&mut b, &mut next, right[kappa - 1][j], None, tau + 1);
        }
        debug_assert_eq!(next as usize, n);

        let graph = b.build();
        // Index the block and critical edges.
        let mut critical_edges = Vec::with_capacity(kappa);
        let mut block_edges = Vec::new();
        for i in 0..kappa {
            for j in 0..lambda {
                for j2 in 0..lambda {
                    let e = graph
                        .find_edge(left[i][j], right[i][j2])
                        .expect("block edge");
                    block_edges.push(e);
                    if j == 0 && j2 == 0 {
                        critical_edges.push(e);
                    }
                }
            }
        }

        Gadget {
            params,
            graph,
            roles,
            critical_edges,
            block_edges,
            left,
            right,
        }
    }

    /// The extremal *spine pair* of Theorem 3: `vL(0, 0)` and
    /// `vL(κ−1, 0)`, whose unique shortest path contains every critical
    /// edge except the last block's.
    pub fn spine_pair(&self) -> (NodeId, NodeId) {
        (
            self.left[0][0],
            self.left[self.params.kappa as usize - 1][0],
        )
    }

    /// Host distance of the spine pair: (κ−1)(τ+2).
    pub fn spine_distance(&self) -> u64 {
        (self.params.kappa as u64 - 1) * (self.params.tau as u64 + 2)
    }

    /// Number of critical edges on the spine-pair shortest path: κ−1.
    pub fn spine_critical_count(&self) -> u64 {
        self.params.kappa as u64 - 1
    }

    /// The density m/n of the gadget — per the paper this exceeds
    /// κ/(κ+1) · λ/(τ+6), forcing any n^{1+δ}-size spanner to drop a
    /// constant fraction of block edges.
    pub fn density(&self) -> f64 {
        self.graph.edge_count() as f64 / self.graph.node_count() as f64
    }
}

/// The set of edges a τ-round algorithm could justifiably discard: those
/// with an alternate route whose internal vertices all lie within τ of an
/// endpoint — equivalently, edges `{u, v}` with
/// `dist_{G−e}(u, v) ≤ 2τ + 1`. In the gadget this is exactly the set of
/// block edges (paper's claim (1) in Sect. 3), which the tests verify;
/// see also [`views`](crate::views) for the full view-based model.
pub fn droppable_edges(g: &Graph, tau: u32) -> Vec<EdgeId> {
    use std::collections::VecDeque;
    let mut out = Vec::new();
    let mut dist = vec![u32::MAX; g.node_count()];
    for (e, u, v) in g.edges() {
        // Bounded BFS from u avoiding edge e.
        let mut touched = vec![u.index()];
        dist[u.index()] = 0;
        let mut q = VecDeque::from([u]);
        let mut found = false;
        'bfs: while let Some(x) = q.pop_front() {
            let dx = dist[x.index()];
            if dx > 2 * tau {
                continue;
            }
            for &(y, f) in g.neighbors(x) {
                if f == e {
                    continue;
                }
                if dist[y.index()] == u32::MAX {
                    dist[y.index()] = dx + 1;
                    touched.push(y.index());
                    if y == v {
                        found = true;
                        break 'bfs;
                    }
                    q.push_back(y);
                }
            }
        }
        for t in touched {
            dist[t] = u32::MAX;
        }
        if found {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::components::is_connected;
    use spanner_graph::traversal::bfs_distances;

    fn small() -> Gadget {
        Gadget::build(GadgetParams::new(3, 4, 5).unwrap())
    }

    #[test]
    fn vertex_count_bound() {
        // n < (κ+1)·λ·(τ+6), the paper's upper bound.
        for (tau, lambda, kappa) in [(2u32, 3u32, 2u32), (3, 4, 5), (6, 8, 10)] {
            let g = Gadget::build(GadgetParams::new(tau, lambda, kappa).unwrap());
            let bound = (kappa as usize + 1) * lambda as usize * (tau as usize + 6);
            assert!(
                g.graph.node_count() < bound,
                "n = {} !< {bound}",
                g.graph.node_count()
            );
            assert!(g.graph.edge_count() > (kappa * lambda * lambda) as usize);
            assert!(is_connected(&g.graph));
        }
    }

    #[test]
    fn block_and_critical_indices() {
        let g = small();
        assert_eq!(g.critical_edges.len(), 5);
        assert_eq!(g.block_edges.len(), 5 * 16);
        // Critical edges are block edges between row-0 endpoints.
        for (i, &e) in g.critical_edges.iter().enumerate() {
            let (u, v) = g.graph.endpoints(e);
            let exp = (
                g.left[i][0].min(g.right[i][0]),
                g.left[i][0].max(g.right[i][0]),
            );
            assert_eq!((u, v), exp);
        }
    }

    #[test]
    fn spine_distance_exact() {
        let g = small();
        let (u, v) = g.spine_pair();
        let d = bfs_distances(&g.graph, u)[v.index()].unwrap();
        assert_eq!(d as u64, g.spine_distance()); // (κ−1)(τ+2) = 4·5 = 20
    }

    /// Each junction detour (using a row-j chain, j > 0) costs exactly +4:
    /// spine chain is τ+1 plus the critical edge (τ+2 per junction), the
    /// detour is 1 + (τ+5) + 1 − ... verified numerically: removing one
    /// critical edge adds exactly 2.
    #[test]
    fn removing_one_critical_edge_costs_two() {
        let g = small();
        let (u, v) = g.spine_pair();
        let host = g.spine_distance();
        for &ce in &g.critical_edges[..4] {
            let sub = g.graph.edge_subgraph(|e| e != ce);
            let d = bfs_distances(&sub, u)[v.index()].unwrap();
            assert_eq!(d as u64, host + 2, "critical edge {ce}");
        }
    }

    #[test]
    fn removing_k_critical_edges_costs_two_k() {
        let g = small();
        let (u, v) = g.spine_pair();
        let drop: Vec<EdgeId> = g.critical_edges[..4].to_vec();
        let sub = g.graph.edge_subgraph(|e| !drop.contains(&e));
        let d = bfs_distances(&sub, u)[v.index()].unwrap();
        assert_eq!(d as u64, g.spine_distance() + 2 * 4);
    }

    /// The paper's claim (1): only block edges are droppable by a τ-round
    /// algorithm; every chain edge lies on no short-enough cycle.
    #[test]
    fn droppable_is_exactly_block_edges() {
        let g = Gadget::build(GadgetParams::new(3, 3, 3).unwrap());
        let droppable = droppable_edges(&g.graph, g.params.tau);
        let mut expect = g.block_edges.clone();
        expect.sort_unstable();
        let mut got = droppable;
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn theorem_parameter_helpers() {
        let p3 = GadgetParams::for_theorem3(50_000, 0.2, 2.0, 4);
        assert!(p3.lambda >= 2 && p3.kappa >= 1);
        let p5 = GadgetParams::for_theorem5(50_000, 0.1, 8);
        assert!(p5.kappa >= 2 * 8 / 2, "kappa {}", p5.kappa);
        let p6 = GadgetParams::for_theorem6(50_000, 0.1, 0.5, 1.0);
        assert!(p6.tau >= 1);
        // Rough consistency: building them yields graphs near the target n.
        let g = Gadget::build(p3);
        let n = g.graph.node_count();
        assert!(n > 10_000 && n < 200_000, "n = {n}");
    }

    #[test]
    fn params_validation() {
        assert!(GadgetParams::new(1, 1, 1).is_err());
        assert!(GadgetParams::new(1, 2, 0).is_err());
        assert!(GadgetParams::new(0, 2, 1).is_ok());
    }

    #[test]
    fn single_block_gadget() {
        let g = Gadget::build(GadgetParams::new(2, 3, 1).unwrap());
        assert!(is_connected(&g.graph));
        assert_eq!(g.critical_edges.len(), 1);
    }
}
