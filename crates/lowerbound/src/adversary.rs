//! Extremal τ-round edge-selection strategies and distortion measurement.
//!
//! Sect. 3's argument reduces *any* correct τ-round algorithm with an edge
//! budget of n^{1+δ} to the following facts: chain edges must all be kept;
//! block edges are discarded with one common probability ≥ p = 1 − 1/c −
//! 1/(cκ) (where the budget allows keeping a 1/c fraction); and the most
//! *generous* adversary for the algorithm drops only critical edges, each
//! costing exactly +2 on the spine. The strategies here realize both ends:
//!
//! * [`Strategy::GenerousCritical`] — keep everything except each critical
//!   edge independently with probability `1 − keep_fraction`; this is the
//!   scenario the lower bound charges the algorithm with (Theorem 3's
//!   "we generously assume these are the only edges discarded"),
//! * [`Strategy::UniformBlocks`] — keep each block edge independently with
//!   probability `keep_fraction` (the symmetric strategy an actual
//!   algorithm is forced into); distortion is at least as bad.

use rand::Rng;
use rand::SeedableRng;

use spanner_graph::traversal::bfs_distances;
use spanner_graph::EdgeSet;
use ultrasparse::Spanner;

use crate::gadget::Gadget;

/// Which edges a τ-round strategy discards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Keep all edges except critical ones, each kept independently with
    /// probability `keep_fraction` — the bound's extremal scenario.
    GenerousCritical {
        /// Probability of keeping each critical edge.
        keep_fraction: f64,
    },
    /// Keep each block edge (critical or not) independently with
    /// probability `keep_fraction`; keep all chain edges.
    UniformBlocks {
        /// Probability of keeping each block edge.
        keep_fraction: f64,
    },
}

/// Output of one adversarial selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The selected subgraph (as a spanner of the gadget graph).
    pub spanner: Spanner,
    /// How many critical edges were dropped.
    pub dropped_critical: u64,
    /// Total edges dropped.
    pub dropped_total: u64,
}

/// Applies a strategy to the gadget. Deterministic in `seed`.
pub fn select(g: &Gadget, strategy: Strategy, seed: u64) -> Selection {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut edges = EdgeSet::full(&g.graph);
    let mut dropped_critical = 0u64;
    let mut dropped_total = 0u64;
    match strategy {
        Strategy::GenerousCritical { keep_fraction } => {
            for &e in &g.critical_edges {
                if rng.gen::<f64>() >= keep_fraction {
                    edges.remove(e);
                    dropped_critical += 1;
                    dropped_total += 1;
                }
            }
        }
        Strategy::UniformBlocks { keep_fraction } => {
            let criticals: std::collections::HashSet<_> =
                g.critical_edges.iter().copied().collect();
            for &e in &g.block_edges {
                if rng.gen::<f64>() >= keep_fraction {
                    edges.remove(e);
                    dropped_total += 1;
                    if criticals.contains(&e) {
                        dropped_critical += 1;
                    }
                }
            }
        }
    }
    Selection {
        spanner: Spanner::from_edges(edges),
        dropped_critical,
        dropped_total,
    }
}

/// Distortion of a selection on the spine pair, measured exactly by BFS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpineDistortion {
    /// Host distance of the spine pair: (κ−1)(τ+2).
    pub host: u64,
    /// Distance in the selected subgraph (`u64::MAX` if disconnected —
    /// cannot happen for the strategies here).
    pub in_spanner: u64,
    /// Additive surplus.
    pub additive: u64,
    /// Multiplicative stretch.
    pub multiplicative: f64,
}

/// Measures the spine-pair distortion of a selection exactly.
pub fn measure_spine_distortion(g: &Gadget, sel: &Selection) -> SpineDistortion {
    let (u, v) = g.spine_pair();
    let adj = sel.spanner.edges.adjacency(&g.graph);
    let d = spanner_graph::traversal::bfs_distances_in_subgraph(&adj, u, u32::MAX);
    let host = g.spine_distance();
    let in_spanner = d[v.index()].map_or(u64::MAX, |x| x as u64);
    SpineDistortion {
        host,
        in_spanner,
        additive: in_spanner.saturating_sub(host),
        multiplicative: in_spanner as f64 / host as f64,
    }
}

/// Average additive distortion over `pairs` random block-vertex pairs
/// (for the "holds on average" strengthening the paper emphasizes in
/// Theorem 4). Measured exactly per pair by BFS in the subgraph.
pub fn measure_average_distortion(g: &Gadget, sel: &Selection, pairs: usize, seed: u64) -> f64 {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let adj = sel.spanner.edges.adjacency(&g.graph);
    let kappa = g.params.kappa as usize;
    let lambda = g.params.lambda as usize;
    let mut total = 0f64;
    let mut count = 0usize;
    for _ in 0..pairs {
        let (b1, b2) = (rng.gen_range(0..kappa), rng.gen_range(0..kappa));
        let (r1, r2) = (rng.gen_range(0..lambda), rng.gen_range(0..lambda));
        let u = g.left[b1][r1];
        let v = g.right[b2][r2];
        if u == v {
            continue;
        }
        let host = bfs_distances(&g.graph, u)[v.index()].expect("connected") as u64;
        let sub = spanner_graph::traversal::bfs_distances_in_subgraph(&adj, u, u32::MAX)[v.index()]
            .expect("strategies keep connectivity") as u64;
        total += (sub - host) as f64;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// The predicted expected additive distortion of the generous strategy:
/// 2 · (κ−1) · (1 − keep_fraction) (each dropped spine critical edge costs
/// exactly +2).
pub fn predicted_spine_additive(g: &Gadget, keep_fraction: f64) -> f64 {
    2.0 * (g.params.kappa as f64 - 1.0) * (1.0 - keep_fraction)
}

/// Theorem 4's lower bound on E\[β\] for (1 + ε', β)-spanners of size
/// n^{1+δ}: `ζ²·n^{1−δ}/(4(τ+6)²) − O(1)` with ζ the ε' of the theorem.
pub fn theorem4_beta_bound(n: usize, delta: f64, zeta: f64, tau: u32) -> f64 {
    let t6 = (tau + 6) as f64;
    zeta * zeta * (n as f64).powf(1.0 - delta) / (4.0 * t6 * t6) - 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{Gadget, GadgetParams};

    fn gadget() -> Gadget {
        Gadget::build(GadgetParams::new(3, 4, 12).unwrap())
    }

    #[test]
    fn generous_strategy_costs_exactly_two_per_drop() {
        let g = gadget();
        for seed in 0..5 {
            let sel = select(&g, Strategy::GenerousCritical { keep_fraction: 0.5 }, seed);
            let m = measure_spine_distortion(&g, &sel);
            // The last block's critical edge is off the spine path; count
            // only spine drops.
            let spine_drops = g.critical_edges[..g.critical_edges.len() - 1]
                .iter()
                .filter(|e| !sel.spanner.edges.contains(**e))
                .count() as u64;
            assert_eq!(m.additive, 2 * spine_drops, "seed {seed}");
            assert_eq!(m.host, g.spine_distance());
        }
    }

    #[test]
    fn uniform_strategy_at_least_as_bad() {
        let g = gadget();
        let mut gen_total = 0u64;
        let mut uni_total = 0u64;
        for seed in 0..8 {
            let gen = select(&g, Strategy::GenerousCritical { keep_fraction: 0.5 }, seed);
            let uni = select(&g, Strategy::UniformBlocks { keep_fraction: 0.5 }, seed);
            gen_total += measure_spine_distortion(&g, &gen).additive;
            uni_total += measure_spine_distortion(&g, &uni).additive;
        }
        assert!(
            uni_total >= gen_total,
            "uniform {uni_total} vs generous {gen_total}"
        );
    }

    #[test]
    fn strategies_preserve_connectivity() {
        let g = gadget();
        // GenerousCritical keeps connectivity structurally (critical edges
        // are shortcut edges); UniformBlocks only probabilistically, so use
        // a seed whose coin flips happen to keep the gadget connected.
        for (strat, seed) in [
            (Strategy::GenerousCritical { keep_fraction: 0.0 }, 3),
            (Strategy::UniformBlocks { keep_fraction: 0.5 }, 6),
        ] {
            let sel = select(&g, strat, seed);
            assert!(sel.spanner.is_spanning(&g.graph), "{strat:?}");
        }
    }

    #[test]
    fn uniform_keep_zero_disconnects() {
        // Dropping ALL block edges disconnects the gadget — confirming
        // that correctness really does force block edges to be kept with
        // some probability.
        let g = gadget();
        let sel = select(&g, Strategy::UniformBlocks { keep_fraction: 0.0 }, 1);
        assert!(!sel.spanner.is_spanning(&g.graph));
    }

    #[test]
    fn measured_tracks_prediction() {
        let g = Gadget::build(GadgetParams::new(2, 3, 60).unwrap());
        let keep = 0.5;
        let trials = 20;
        let mut total = 0u64;
        for seed in 0..trials {
            let sel = select(
                &g,
                Strategy::GenerousCritical {
                    keep_fraction: keep,
                },
                seed,
            );
            total += measure_spine_distortion(&g, &sel).additive;
        }
        let measured = total as f64 / trials as f64;
        let predicted = predicted_spine_additive(&g, keep);
        assert!(
            (measured - predicted).abs() < 0.35 * predicted,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn average_distortion_positive_when_dropping() {
        let g = gadget();
        let sel = select(&g, Strategy::GenerousCritical { keep_fraction: 0.2 }, 5);
        let avg = measure_average_distortion(&g, &sel, 100, 9);
        assert!(avg > 0.0);
        // Full graph: zero distortion.
        let full = select(&g, Strategy::GenerousCritical { keep_fraction: 1.0 }, 5);
        assert_eq!(measure_average_distortion(&g, &full, 50, 9), 0.0);
    }

    #[test]
    fn beta_bound_monotone() {
        let a = theorem4_beta_bound(100_000, 0.1, 0.5, 4);
        let b = theorem4_beta_bound(100_000, 0.1, 0.5, 16);
        assert!(a > b, "more rounds should weaken the bound: {a} vs {b}");
        let c = theorem4_beta_bound(400_000, 0.1, 0.5, 4);
        assert!(c > a, "bigger n strengthens the bound");
    }
}
