//! Integration tests for the serve layer: response correctness against
//! the oracle, thread-count determinism of responses *and* counters,
//! the error taxonomy, cache behavior, and the TCP front end.

use std::io::{BufRead, BufReader, Write};

use spanner_graph::distance::UNREACHABLE;
use spanner_graph::{generators, Graph, NodeId};
use spanner_oracle::{DistanceOracle, RoutingScheme};
use spanner_serve::workload::{batch_script, generate, WorkloadSpec};
use spanner_serve::{QueryReq, ServeConfig, Server, Session};

fn session(threads: usize) -> Session {
    Session::new(Server::new(ServeConfig {
        threads,
        ..ServeConfig::default()
    }))
}

/// Every DIST response must equal `oracle.query` — the cache and the
/// batching pipeline may never change an answer.
#[test]
fn dist_matches_oracle_on_all_pairs() {
    let g = generators::connected_gnm(60, 180, 3);
    let oracle = DistanceOracle::build(&g, 2, 1);
    let mut s = session(4);
    s.server_mut()
        .load(&spanner_serve::LoadRequest {
            spec: spanner_serve::GraphSpec::Er {
                n: 60,
                m: 180,
                seed: 3,
            },
            k: 2,
            seed: 1,
            routing: false,
        })
        .unwrap();
    let mut reqs = Vec::new();
    for u in 0..60u32 {
        for v in 0..60u32 {
            reqs.push(QueryReq::Dist(u, v));
        }
    }
    let resps = s.server_mut().run_queries(&reqs);
    let mut i = 0;
    for u in 0..60u32 {
        for v in 0..60u32 {
            let d = oracle.query(NodeId(u), NodeId(v));
            let expect = if d == UNREACHABLE {
                "OK UNREACHABLE".to_string()
            } else {
                format!("OK {d}")
            };
            assert_eq!(resps[i], expect, "pair ({u},{v})");
            i += 1;
        }
    }
    // Re-running the same queries with a warm cache gives identical
    // responses and strictly more hits.
    let before = s.server().stats().cache_hits;
    let again = s.server_mut().run_queries(&reqs);
    assert_eq!(resps, again);
    assert!(s.server().stats().cache_hits > before);
}

#[test]
fn dist_matches_oracle_on_disconnected_graph() {
    // Build via a file spec so the file loader is exercised end-to-end.
    let dir = std::env::temp_dir().join(format!("serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("disconnected.edges");
    std::fs::write(&path, "0 1\n1 2\n# comment\n\n4 5\n5 6\n").unwrap();
    let g = Graph::from_edges(7, [(0u32, 1), (1, 2), (4, 5), (5, 6)]);
    let oracle = DistanceOracle::build(&g, 2, 1);
    let mut s = session(2);
    let script = format!("LOAD file:{}\n", path.display());
    let out = s.handle_script(&script);
    assert_eq!(out, "OK n=7 m=4 k=2 landmarks=-\n");
    for u in 0..7u32 {
        for v in 0..7u32 {
            let resp = &s.server_mut().run_queries(&[QueryReq::Dist(u, v)])[0];
            let d = oracle.query(NodeId(u), NodeId(v));
            let expect = if d == UNREACHABLE {
                "OK UNREACHABLE".to_string()
            } else {
                format!("OK {d}")
            };
            assert_eq!(*resp, expect, "pair ({u},{v})");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn route_matches_routing_scheme() {
    let g = generators::grid(5, 6);
    let scheme = RoutingScheme::build(&g, 9);
    let mut s = session(3);
    let out = s.handle_script("LOAD grid:rows=5,cols=6 seed=9 routing=on\n");
    assert!(out.starts_with("OK n=30 m=49 k=2 landmarks="), "{out}");
    for (u, v) in [(0u32, 29), (7, 7), (12, 3), (29, 0)] {
        let resp = &s.server_mut().run_queries(&[QueryReq::Route(u, v)])[0];
        let path = scheme.try_route(NodeId(u), NodeId(v)).unwrap().unwrap();
        let mut expect = format!("OK {}", path.len() - 1);
        for w in &path {
            expect.push(' ');
            expect.push_str(&w.0.to_string());
        }
        assert_eq!(*resp, expect, "pair ({u},{v})");
    }
}

/// The acceptance-criterion invariant: an identical query stream produces
/// identical responses — and, by the sequential-commit design, identical
/// STATS — at threads 1 and 8.
#[test]
fn identical_streams_identical_responses_at_threads_1_and_8() {
    let spec = WorkloadSpec {
        nodes: 400,
        queries: 4000,
        zipf_frac: 0.7,
        zipf_theta: 0.99,
        route_frac: 0.2,
        seed: 5,
    };
    let mut script = String::from("LOAD er:n=400,m=1600,seed=2 routing=on\n");
    for chunk in generate(&spec).chunks(64) {
        script.push_str(&batch_script(chunk));
    }
    script.push_str("STATS\n");
    let out1 = session(1).handle_script(&script);
    let out8 = session(8).handle_script(&script);
    assert_eq!(out1, out8);
    // Sanity: the stream actually exercised the cache.
    let stats_line = out1.lines().last().unwrap();
    assert!(stats_line.contains("cache_hits="), "{stats_line}");
    assert!(
        !stats_line.contains("cache_hits=0 "),
        "no hits: {stats_line}"
    );
}

#[test]
fn error_taxonomy_end_to_end() {
    let mut s = session(2);
    let out = s.handle_script(
        "DIST 0 1\n\
         ROUTE 0 1\n\
         LOAD path:n=5\n\
         ROUTE 0 1\n\
         DIST 5 0\n\
         DIST 0 99\n\
         NONSENSE 1 2\n\
         DIST 1\n\
         LOAD blob:n=4\n\
         BATCH 2\n\
         STATS\n\
         DIST 0 oops\n",
    );
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], "ERR NO-GRAPH no graph loaded; send LOAD first");
    assert_eq!(lines[1], "ERR NO-GRAPH no graph loaded; send LOAD first");
    assert_eq!(lines[2], "OK n=5 m=4 k=2 landmarks=-");
    assert_eq!(
        lines[3],
        "ERR NO-ROUTING routing tables not built; reload with routing=on"
    );
    assert_eq!(
        lines[4],
        "ERR UNKNOWN-NODE node 5 out of range: graph has 5 nodes"
    );
    assert_eq!(
        lines[5],
        "ERR UNKNOWN-NODE node 99 out of range: graph has 5 nodes"
    );
    assert_eq!(lines[6], "ERR PARSE unknown command NONSENSE");
    assert_eq!(lines[7], "ERR PARSE DIST expects 2 arguments");
    assert_eq!(lines[8], "ERR BADSPEC unknown generator blob");
    assert_eq!(lines[9], "OK BATCH 2");
    assert_eq!(
        lines[10],
        "ERR UNSUPPORTED only DIST and ROUTE are allowed in a batch, got STATS"
    );
    assert_eq!(lines[11], "ERR PARSE invalid node id oops");
    assert_eq!(lines.len(), 12);
    // Queries (incl. erroneous batch subs) were counted; parse/LOAD
    // failures outside batches never reach the pipeline.
    assert_eq!(s.server().stats().queries, 7);
    assert_eq!(s.server().stats().errors, 7);
}

#[test]
fn truncated_batch_reports_and_recovers() {
    let mut s = session(1);
    let out = s.handle_script("LOAD path:n=3\nBATCH 3\nDIST 0 1\n");
    assert_eq!(
        out,
        "OK n=3 m=2 k=2 landmarks=-\nERR TRUNCATED batch expected 3 sub-commands, got 1\n"
    );
}

#[test]
fn batch_preserves_request_order_with_mixed_validity() {
    let mut s = session(4);
    let out = s.handle_script(
        "LOAD cycle:n=10\n\
         BATCH 5\n\
         DIST 0 5\n\
         DIST 42 0\n\
         DIST 3 3\n\
         FLUSH\n\
         DIST 0 1\n",
    );
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[1], "OK BATCH 5");
    assert_eq!(lines[2], "OK 5"); // cycle antipodal
    assert_eq!(
        lines[3],
        "ERR UNKNOWN-NODE node 42 out of range: graph has 10 nodes"
    );
    assert_eq!(lines[4], "OK 0");
    assert_eq!(
        lines[5],
        "ERR UNSUPPORTED only DIST and ROUTE are allowed in a batch, got FLUSH"
    );
    assert_eq!(lines[6], "OK 1");
}

#[test]
fn cache_counters_and_flush() {
    let mut s = session(1);
    s.handle_script("LOAD er:n=200,m=800,seed=4\n");
    // Two distinct sources sharing a target resolve through landmark legs;
    // repeats hit.
    let reqs: Vec<QueryReq> = (0..50u32).flat_map(|u| [QueryReq::Dist(u, 150)]).collect();
    s.server_mut().run_queries(&reqs);
    let first = *s.server().stats();
    s.server_mut().run_queries(&reqs);
    let second = *s.server().stats();
    assert!(second.cache_hits >= first.cache_hits + (first.cache_misses - first.cache_evictions));
    // FLUSH empties the cache: the same stream misses again.
    let out = s.handle_script("FLUSH\n");
    assert_eq!(out, "OK FLUSHED\n");
    s.server_mut().run_queries(&reqs);
    let third = *s.server().stats();
    assert!(third.cache_misses > second.cache_misses);
    // Counters survive FLUSH (monotonic), and the stats line reflects
    // cache_len after the reload.
    assert!(third.queries == second.queries + reqs.len() as u64);
}

#[test]
fn tiny_cache_capacity_is_respected() {
    let mut s = Session::new(Server::new(ServeConfig {
        threads: 2,
        cache_capacity: 4,
    }));
    s.handle_script("LOAD er:n=100,m=400,seed=8\n");
    let reqs: Vec<QueryReq> = (0..80u32)
        .map(|u| QueryReq::Dist(u, (u + 31) % 100))
        .collect();
    s.server_mut().run_queries(&reqs);
    let line = s.server().stats_line();
    assert!(line.contains("cache_cap=4"), "{line}");
    let len: u64 = line
        .split_whitespace()
        .find_map(|f| f.strip_prefix("cache_len=").and_then(|v| v.parse().ok()))
        .unwrap();
    assert!(len <= 4, "{line}");
    assert!(s.server().stats().cache_evictions > 0);
}

#[test]
fn k_not_2_bypasses_cache_and_matches_oracle() {
    let g = generators::connected_gnm(80, 320, 6);
    let oracle = DistanceOracle::build(&g, 3, 2);
    let mut s = session(2);
    s.handle_script("LOAD er:n=80,m=320,seed=6 k=3 seed=2\n");
    let reqs: Vec<QueryReq> = (0..80u32).map(|u| QueryReq::Dist(u, 79 - u)).collect();
    let resps = s.server_mut().run_queries(&reqs);
    for (u, resp) in resps.iter().enumerate() {
        let d = oracle.query(NodeId(u as u32), NodeId(79 - u as u32));
        let expect = if d == UNREACHABLE {
            "OK UNREACHABLE".to_string()
        } else {
            format!("OK {d}")
        };
        assert_eq!(*resp, expect);
    }
    let st = s.server().stats();
    assert_eq!(
        st.cache_hits + st.cache_misses,
        0,
        "k=3 must bypass the cache"
    );
    assert_eq!(st.cache_bypass, 80);
}

/// The TCP front end serves the same protocol; state persists across
/// connections.
#[test]
fn tcp_sessions_share_server_state() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Server::new(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let handle =
        std::thread::spawn(move || spanner_serve::serve_listener(listener, server, Some(2)));

    let talk = |script: &str| -> Vec<String> {
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(script.as_bytes()).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(conn).lines().map(|l| l.unwrap()).collect()
    };

    let first = talk("PING\nLOAD cycle:n=12\nDIST 0 6\nQUIT\n");
    assert_eq!(
        first,
        ["OK PONG", "OK n=12 m=12 k=2 landmarks=-", "OK 6", "OK BYE"]
    );
    // Second connection: the graph is still loaded.
    let second = talk("DIST 0 3\nSTATS\n");
    assert_eq!(second[0], "OK 3");
    assert!(second[1].starts_with("OK nodes=12 m") || second[1].starts_with("OK nodes=12 "));

    let server = handle.join().unwrap().unwrap();
    assert_eq!(server.stats().queries, 2);
}
