//! PROTOCOL.md conformance: every ```transcript fenced block in the spec
//! is replayed against a fresh server, byte-for-byte, at 1 worker thread
//! and at 4 worker threads.
//!
//! Transcript convention (PROTOCOL.md §Conventions): lines starting with
//! `C: ` are client bytes, lines starting with `S: ` are the server's
//! response bytes, in order. The replay feeds every client line (plus a
//! trailing newline each) into a [`Session`] and asserts the produced
//! output equals the concatenated `S:` lines exactly — whitespace,
//! counters and all. A transcript that drifts from the implementation is
//! a test failure, not a doc nit.

use spanner_serve::{ServeConfig, Server, Session};

struct Transcript {
    /// 1-based line number of the opening fence, for error messages.
    line: usize,
    client: String,
    expected: String,
}

fn parse_transcripts(doc: &str) -> Vec<Transcript> {
    let mut out = Vec::new();
    let mut cur: Option<Transcript> = None;
    for (i, line) in doc.lines().enumerate() {
        match &mut cur {
            None => {
                if line.trim_end() == "```transcript" {
                    cur = Some(Transcript {
                        line: i + 1,
                        client: String::new(),
                        expected: String::new(),
                    });
                }
            }
            Some(t) => {
                if line.trim_end() == "```" {
                    out.push(cur.take().expect("open transcript"));
                } else if let Some(c) = line.strip_prefix("C: ") {
                    t.client.push_str(c);
                    t.client.push('\n');
                } else if let Some(s) = line.strip_prefix("S: ") {
                    t.expected.push_str(s);
                    t.expected.push('\n');
                } else {
                    panic!(
                        "PROTOCOL.md transcript at line {}: line {} is neither `C: ` nor `S: `: \
                         {line:?}",
                        t.line,
                        i + 1
                    );
                }
            }
        }
    }
    assert!(
        cur.is_none(),
        "PROTOCOL.md has an unterminated ```transcript block"
    );
    out
}

#[test]
fn every_protocol_transcript_replays_byte_exact() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md");
    let doc = std::fs::read_to_string(path).expect("read PROTOCOL.md");
    let transcripts = parse_transcripts(&doc);
    assert!(
        transcripts.len() >= 5,
        "PROTOCOL.md must carry at least 5 conformance transcripts, found {}",
        transcripts.len()
    );
    for threads in [1usize, 4] {
        for t in &transcripts {
            let mut session = Session::new(Server::new(ServeConfig {
                threads,
                ..ServeConfig::default()
            }));
            let got = session.handle_script(&t.client);
            assert_eq!(
                got, t.expected,
                "transcript at PROTOCOL.md:{} diverged at {threads} thread(s)",
                t.line
            );
        }
    }
}
