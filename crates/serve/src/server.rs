//! The server core: load state, the batched query pipeline, sessions.
//!
//! # Execution model (DESIGN.md §2.11)
//!
//! A batch of queries runs through four phases, alternating parallel and
//! sequential so that **both responses and counters are byte-identical at
//! every thread count**:
//!
//! 1. **Resolve** (parallel) — parse-level validation, the direct bunch
//!    probe, witness lookup; pure reads of the oracle, disjoint output
//!    chunks carved by [`spanner_graph::pool::chunk_range`].
//! 2. **Probe** (sequential, request order) — consult the LRU cache for
//!    every request that needs a landmark leg; hits resolve, misses are
//!    marked. All cache mutation and hit/miss accounting happens here.
//! 3. **Compute** (parallel) — landmark legs for the misses and response
//!    formatting for everything; pure reads again.
//! 4. **Commit** (sequential, request order) — insert computed legs into
//!    the cache, accumulate per-query cost counters.
//!
//! The parallel phases touch no shared mutable state, so the only
//! scheduling freedom is *when* pure values are computed — never what
//! they are, and never the order cache/counter state evolves in.

use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::path::Path;
use std::sync::Mutex;

use spanner_graph::distance::UNREACHABLE;
use spanner_graph::pool::{chunk_range, run_workers};
use spanner_graph::{generators, CsrAdjacency, Graph, NodeId};
use spanner_oracle::{DistanceOracle, RoutingScheme};
use spanner_store::{Edit, SnapshotMeta, Store};

use crate::cache::{pack_key, LruCache};
use crate::protocol::{
    format_dist, format_route, parse_command, Command, GraphSpec, LoadRequest, WireError, OK_BYE,
    OK_FLUSHED, OK_PONG,
};

/// Below this many requests per worker the batch runs inline — the spawn
/// cost of a fork-join region outweighs fanning out tiny batches.
const MIN_PER_WORKER: usize = 8;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Fan-out width for batched query execution (≥ 1).
    pub threads: usize,
    /// Capacity of the landmark-leg result cache, in entries; 0 disables
    /// caching.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            cache_capacity: 1 << 16,
        }
    }
}

/// Monotonic serving counters, exposed verbatim by `STATS`.
///
/// Every field is deterministic in the request stream alone — thread
/// count cannot change any value, because all counter mutation happens in
/// the sequential phases of the batch pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Total queries executed (DIST + ROUTE, including erroneous ones).
    pub queries: u64,
    /// DIST queries that produced an `OK` response.
    pub dist_queries: u64,
    /// ROUTE queries that produced an `OK` response.
    pub route_queries: u64,
    /// Queries answered with an `ERR` response.
    pub errors: u64,
    /// Landmark-leg cache hits.
    pub cache_hits: u64,
    /// Landmark-leg cache misses (the leg was computed and inserted).
    pub cache_misses: u64,
    /// Entries evicted to make room.
    pub cache_evictions: u64,
    /// DIST queries ineligible for the cache (oracle built with k ≠ 2).
    pub cache_bypass: u64,
    /// Bunch hash probes performed by query execution.
    pub bunch_probes: u64,
    /// Witness-array reads performed by query execution.
    pub witness_reads: u64,
    /// Total hops over all delivered routes.
    pub route_hops: u64,
    /// Response payload words after `OK` (the per-query word cost of the
    /// reply: 1 for a distance, 1 + path length for a route).
    pub resp_words: u64,
}

struct Loaded {
    oracle: DistanceOracle,
    routing: Option<RoutingScheme>,
    nodes: usize,
    edges: usize,
    /// The served graph, kept for `SAVE`: a snapshot persists the exact
    /// edge set the oracle was built over.
    graph: Graph,
    /// The construction seed, persisted by `SAVE` so a later
    /// `LOAD snapshot:` rebuilds the identical oracle.
    seed: u64,
}

/// One query of a batch (or a singleton DIST/ROUTE), pre-parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReq {
    /// `DIST u v`.
    Dist(u32, u32),
    /// `ROUTE u v`.
    Route(u32, u32),
    /// A sub-line that failed to parse or named a non-query command; the
    /// error becomes that slot's response.
    Invalid(WireError),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Dist,
    Route,
    Error,
}

#[derive(Debug)]
enum Work {
    /// Final response line already known.
    Ready(String),
    /// Distance fully resolved; formatting pending.
    Val(u32),
    /// Awaiting the landmark leg δ(w, u); `dv` = δ(v, w).
    Leg { w: u32, u: u32, dv: u32 },
    /// Route resolved; formatting pending.
    Path(Option<Vec<NodeId>>),
}

struct Partial {
    work: Work,
    kind: Kind,
    bunch_probes: u32,
    witness_reads: u32,
    route_hops: u32,
    resp_words: u32,
    bypass: bool,
    insert: Option<(u64, u32)>,
}

impl Default for Partial {
    fn default() -> Self {
        Partial {
            work: Work::Val(0),
            kind: Kind::Error,
            bunch_probes: 0,
            witness_reads: 0,
            route_hops: 0,
            resp_words: 0,
            bypass: false,
            insert: None,
        }
    }
}

fn combine(dv: u32, leg: u32) -> u32 {
    if leg == UNREACHABLE {
        UNREACHABLE
    } else {
        dv + leg
    }
}

/// Runs `f(i, &mut items[i])` for every index, fanned over at most
/// `threads` workers on contiguous chunks (disjoint `&mut` regions via
/// the [`chunk_range`] slot idiom the distance engine uses). Falls back
/// to an inline loop when the batch is too small to amortize a spawn.
fn fan_out<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let t = threads.max(1).min(len.div_ceil(MIN_PER_WORKER).max(1));
    if t <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let mut slots: Vec<Mutex<(std::ops::Range<usize>, &mut [T])>> = Vec::with_capacity(t);
    let mut rest: &mut [T] = items;
    let mut consumed = 0usize;
    for w in 0..t {
        let r = chunk_range(len, t, w);
        let (region, tail) = rest.split_at_mut(r.end - consumed);
        consumed = r.end;
        rest = tail;
        slots.push(Mutex::new((r, region)));
    }
    run_workers(t, |w| {
        let mut guard = slots[w].lock().expect("worker slot");
        let (r, region) = &mut *guard;
        for (off, i) in r.clone().enumerate() {
            f(i, &mut region[off]);
        }
    });
}

/// The query server: loaded oracle/routing state, the result cache, and
/// the counters. One server may outlive many [`Session`]s (state persists
/// across connections).
pub struct Server {
    cfg: ServeConfig,
    state: Option<Loaded>,
    cache: LruCache,
    stats: ServeStats,
}

impl Server {
    /// A server with no graph loaded.
    pub fn new(cfg: ServeConfig) -> Self {
        let cache = LruCache::new(cfg.cache_capacity);
        Server {
            cfg,
            state: None,
            cache,
            stats: ServeStats::default(),
        }
    }

    /// The current counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The configured fan-out width.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Builds the graph named by `req`, then the oracle (and routing
    /// tables when requested) over it, replacing any previous state. The
    /// result cache is cleared — its entries are meaningless for the new
    /// graph — but counters persist. Returns the `OK` response line.
    ///
    /// A `snapshot:` spec is the O(size) path: the graph (and the
    /// parameters to rebuild the oracle with) come from the snapshot
    /// directory instead of a generator, with any write-ahead-logged
    /// edits folded in; the parser guarantees no explicit options
    /// accompany it.
    pub fn load(&mut self, req: &LoadRequest) -> Result<String, WireError> {
        let (g, k, seed, routing_on) = match &req.spec {
            GraphSpec::Snapshot { path } => {
                let (g, meta) = load_snapshot(path)?;
                (g, meta.k, meta.seed, meta.routing)
            }
            other => (build_graph(other)?, req.k, req.seed, req.routing),
        };
        let oracle = DistanceOracle::build(&g, k, seed);
        let routing = routing_on.then(|| RoutingScheme::build(&g, seed));
        let (nodes, edges) = (g.node_count(), g.edge_count());
        let landmarks = match &routing {
            Some(r) => r.landmark_count().to_string(),
            None => "-".to_string(),
        };
        self.state = Some(Loaded {
            oracle,
            routing,
            nodes,
            edges,
            graph: g,
            seed,
        });
        self.cache.clear();
        Ok(format!(
            "OK n={nodes} m={edges} k={k} landmarks={landmarks}"
        ))
    }

    /// Persists the loaded graph plus its construction parameters as a
    /// snapshot directory at `path` (`LOAD snapshot:<path>` restores it).
    /// Returns the `OK SAVED` response line.
    pub fn save(&mut self, path: &str) -> Result<String, WireError> {
        let Some(state) = &self.state else {
            return Err(WireError::no_graph());
        };
        let g = &state.graph;
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, a, b)| (a.0, b.0)).collect();
        let csr = CsrAdjacency::from_edges(g.node_count(), edges);
        let meta = SnapshotMeta {
            k: state.oracle.k(),
            seed: state.seed,
            routing: state.routing.is_some(),
        };
        // Serve snapshots carry an empty spanner section: the serving
        // artifact is the oracle, rebuilt from (graph, k, seed) on load.
        Store::save(Path::new(path), &csr, &[], meta)
            .map_err(|e| WireError::store(e.to_string()))?;
        Ok(format!("OK SAVED n={} m={}", state.nodes, state.edges))
    }

    /// Clears the result cache (counters are kept). Returns the `OK`
    /// response line.
    pub fn flush(&mut self) -> String {
        self.cache.clear();
        OK_FLUSHED.to_string()
    }

    /// The one-line `STATS` response.
    pub fn stats_line(&self) -> String {
        let (nodes, edges, k, landmarks) = match &self.state {
            None => (0, 0, "-".to_string(), "-".to_string()),
            Some(s) => (
                s.nodes,
                s.edges,
                s.oracle.k().to_string(),
                match &s.routing {
                    Some(r) => r.landmark_count().to_string(),
                    None => "-".to_string(),
                },
            ),
        };
        let st = &self.stats;
        format!(
            "OK nodes={nodes} edges={edges} k={k} landmarks={landmarks} queries={} dist={} \
             route={} errors={} cache_hits={} cache_misses={} cache_evictions={} cache_bypass={} \
             cache_len={} cache_cap={} bunch_probes={} witness_reads={} route_hops={} \
             resp_words={}",
            st.queries,
            st.dist_queries,
            st.route_queries,
            st.errors,
            st.cache_hits,
            st.cache_misses,
            st.cache_evictions,
            st.cache_bypass,
            self.cache.len(),
            self.cache.capacity(),
            st.bunch_probes,
            st.witness_reads,
            st.route_hops,
            st.resp_words,
        )
    }

    /// Executes a slice of queries as one batch and returns one response
    /// line per query, in request order. See the module docs for the
    /// four-phase pipeline and its determinism guarantees.
    pub fn run_queries(&mut self, reqs: &[QueryReq]) -> Vec<String> {
        let mut parts: Vec<Partial> = Vec::with_capacity(reqs.len());
        parts.resize_with(reqs.len(), Partial::default);

        // Phase 1 — Resolve (parallel, pure).
        let state = self.state.as_ref();
        fan_out(self.cfg.threads, &mut parts, |i, part| {
            *part = resolve(state, &reqs[i]);
        });

        // Phase 2 — Probe (sequential, request order).
        for part in parts.iter_mut() {
            if let Work::Leg { w, u, dv } = part.work {
                match self.cache.get(pack_key(w, u)) {
                    Some(leg) => {
                        self.stats.cache_hits += 1;
                        part.work = Work::Val(combine(dv, leg));
                    }
                    None => self.stats.cache_misses += 1,
                }
            }
        }

        // Phase 3 — Compute (parallel, pure): legs for misses, formatting
        // for everything.
        fan_out(self.cfg.threads, &mut parts, |_, part| {
            let work = std::mem::replace(&mut part.work, Work::Val(0));
            let line = match work {
                Work::Ready(line) => line,
                Work::Val(d) => {
                    part.resp_words = 1;
                    format_dist(d)
                }
                Work::Leg { w, u, dv } => {
                    let oracle = &state.expect("Leg work implies loaded state").oracle;
                    let leg = oracle
                        .landmark_leg(NodeId(w), NodeId(u))
                        .expect("ids validated");
                    if w != u {
                        part.bunch_probes += 1;
                    }
                    part.insert = Some((pack_key(w, u), leg));
                    part.resp_words = 1;
                    format_dist(combine(dv, leg))
                }
                Work::Path(path) => {
                    part.resp_words = 1 + path.as_ref().map_or(0, |p| p.len() as u32);
                    format_route(path.as_deref())
                }
            };
            part.work = Work::Ready(line);
        });

        // Phase 4 — Commit (sequential, request order).
        let mut responses = Vec::with_capacity(parts.len());
        for part in parts {
            if let Some((key, leg)) = part.insert {
                if self.cache.insert(key, leg) {
                    self.stats.cache_evictions += 1;
                }
            }
            self.stats.queries += 1;
            match part.kind {
                Kind::Dist => self.stats.dist_queries += 1,
                Kind::Route => self.stats.route_queries += 1,
                Kind::Error => self.stats.errors += 1,
            }
            if part.bypass {
                self.stats.cache_bypass += 1;
            }
            self.stats.bunch_probes += part.bunch_probes as u64;
            self.stats.witness_reads += part.witness_reads as u64;
            self.stats.route_hops += part.route_hops as u64;
            self.stats.resp_words += part.resp_words as u64;
            match part.work {
                Work::Ready(line) => responses.push(line),
                _ => unreachable!("phase 3 formats every response"),
            }
        }
        responses
    }
}

/// Phase-1 resolution of one request: validation, the direct probe, the
/// witness lookup (or the full query chain when k ≠ 2). Pure.
fn resolve(state: Option<&Loaded>, req: &QueryReq) -> Partial {
    let mut part = Partial::default();
    let err = |part: &mut Partial, e: WireError| {
        part.kind = Kind::Error;
        part.work = Work::Ready(e.line());
    };
    let (u, v, is_route) = match req {
        QueryReq::Invalid(e) => {
            err(&mut part, e.clone());
            return part;
        }
        QueryReq::Dist(u, v) => (*u, *v, false),
        QueryReq::Route(u, v) => (*u, *v, true),
    };
    let Some(state) = state else {
        err(&mut part, WireError::no_graph());
        return part;
    };
    let nodes = state.nodes;
    for id in [u, v] {
        if id as usize >= nodes {
            err(&mut part, WireError::unknown_node(id, nodes));
            return part;
        }
    }
    if is_route {
        let Some(routing) = &state.routing else {
            err(&mut part, WireError::no_routing());
            return part;
        };
        part.kind = Kind::Route;
        let path = routing
            .try_route(NodeId(u), NodeId(v))
            .expect("ids validated");
        part.route_hops = path.as_ref().map_or(0, |p| (p.len() - 1) as u32);
        part.work = Work::Path(path);
        return part;
    }
    part.kind = Kind::Dist;
    let oracle = &state.oracle;
    if oracle.k() != 2 {
        // The cache key is only sound for the k = 2 landmark chain; other
        // configurations run the full query uncached.
        part.bypass = true;
        let (d, cost) = oracle
            .query_cost(NodeId(u), NodeId(v))
            .expect("ids validated");
        part.bunch_probes = cost.bunch_probes;
        part.witness_reads = cost.witness_reads;
        part.work = Work::Val(d);
        return part;
    }
    // k = 2 decomposition (byte-identical to `oracle.query`): direct
    // probe first — exact, tighter than any landmark leg — then the
    // landmark leg through p_1(v), which is what the cache serves.
    match oracle
        .direct_distance(NodeId(u), NodeId(v))
        .expect("ids validated")
    {
        Some(d) => {
            if u != v {
                part.bunch_probes = 1;
            }
            part.work = Work::Val(d);
        }
        None => {
            part.bunch_probes = 1;
            part.witness_reads = 1;
            match oracle.sampled_witness(NodeId(v)).expect("ids validated") {
                None => part.work = Work::Val(UNREACHABLE),
                Some((dv, w)) => part.work = Work::Leg { w: w.0, u, dv },
            }
        }
    }
    part
}

/// Opens the snapshot at `path` and reconstructs the served graph: the
/// persisted CSR edge set with every write-ahead-logged edit folded in.
/// Any store-level failure — corruption, version skew, an inapplicable
/// WAL record — surfaces as a `STORE` wire error.
fn load_snapshot(path: &str) -> Result<(Graph, SnapshotMeta), WireError> {
    let state = Store::open(Path::new(path)).map_err(|e| WireError::store(e.to_string()))?;
    let n = state.csr.node_count();
    let mut edges: BTreeSet<(u32, u32)> = state
        .csr
        .forward_edges()
        .map(|(_, a, b)| (a.0, b.0))
        .collect();
    for (index, edit) in state.edits.iter().enumerate() {
        let (u, v) = edit.endpoints();
        let applied = match edit {
            Edit::Insert(..) => (v as usize) < n && edges.insert((u, v)),
            Edit::Delete(..) => edges.remove(&(u, v)),
        };
        if !applied {
            return Err(WireError::store(format!(
                "snapshot WAL record {index} ({u}-{v}) does not apply to the graph"
            )));
        }
    }
    // BTreeSet iterates in canonical ascending order, exactly what the
    // sorted constructor wants.
    Ok((Graph::from_sorted_edges(n, edges), state.meta))
}

fn build_graph(spec: &GraphSpec) -> Result<Graph, WireError> {
    match spec {
        GraphSpec::Snapshot { .. } => {
            unreachable!("snapshot specs take the load_snapshot path")
        }
        GraphSpec::Er { n, m, seed } => {
            Ok(generators::connected_gnm(*n as usize, *m as usize, *seed))
        }
        GraphSpec::Grid { rows, cols } => Ok(generators::grid(*rows as usize, *cols as usize)),
        GraphSpec::Cycle { n } => Ok(generators::cycle(*n as usize)),
        GraphSpec::Path { n } => Ok(generators::path(*n as usize)),
        GraphSpec::File { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|_| WireError::bad_spec(format!("cannot read {path}")))?;
            let mut edges: Vec<(u32, u32)> = Vec::new();
            let mut max_id = 0u32;
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut it = line.split_whitespace();
                let (a, b) = (it.next(), it.next());
                let bad = || WireError::bad_spec(format!("invalid edge list line {}", lineno + 1));
                let (Some(a), Some(b), None) = (a, b, it.next()) else {
                    return Err(bad());
                };
                let a: u32 = a.parse().map_err(|_| bad())?;
                let b: u32 = b.parse().map_err(|_| bad())?;
                if a == b {
                    return Err(WireError::bad_spec(format!(
                        "self-loop on line {}",
                        lineno + 1
                    )));
                }
                max_id = max_id.max(a).max(b);
                edges.push((a, b));
            }
            if edges.is_empty() {
                return Err(WireError::bad_spec(format!("empty edge list {path}")));
            }
            Ok(Graph::from_edges(max_id as usize + 1, edges))
        }
    }
}

/// A protocol session: reads request lines from an input stream, writes
/// response lines to an output stream, owning a [`Server`].
///
/// The same session (and server state) may serve several streams in
/// sequence — e.g. successive TCP connections.
pub struct Session {
    server: Server,
}

impl Session {
    /// Wraps a server in a session.
    pub fn new(server: Server) -> Self {
        Session { server }
    }

    /// Read access to the underlying server (counters, configuration).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable access to the underlying server (e.g. to `load` before
    /// serving).
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// Serves one input stream to completion: processes request lines
    /// until end-of-stream or `QUIT`. Blank lines outside batches are
    /// ignored; inside a batch every line counts (see PROTOCOL.md).
    pub fn run<R: BufRead, W: Write>(&mut self, mut input: R, mut output: W) -> io::Result<()> {
        let mut line = String::new();
        loop {
            line.clear();
            if input.read_line(&mut line)? == 0 {
                return output.flush();
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.trim().is_empty() {
                continue;
            }
            match parse_command(trimmed) {
                Err(e) => writeln!(output, "{}", e.line())?,
                Ok(Command::Dist(u, v)) => {
                    let resp = self.server.run_queries(&[QueryReq::Dist(u, v)]);
                    writeln!(output, "{}", resp[0])?;
                }
                Ok(Command::Route(u, v)) => {
                    let resp = self.server.run_queries(&[QueryReq::Route(u, v)]);
                    writeln!(output, "{}", resp[0])?;
                }
                Ok(Command::Batch(n)) => {
                    let mut subs: Vec<QueryReq> = Vec::with_capacity(n as usize);
                    let mut sub = String::new();
                    let mut truncated = false;
                    for _ in 0..n {
                        sub.clear();
                        if input.read_line(&mut sub)? == 0 {
                            truncated = true;
                            break;
                        }
                        let subline = sub.trim_end_matches(['\n', '\r']);
                        subs.push(match parse_command(subline) {
                            Ok(Command::Dist(u, v)) => QueryReq::Dist(u, v),
                            Ok(Command::Route(u, v)) => QueryReq::Route(u, v),
                            Ok(_) => {
                                let name = subline
                                    .split_whitespace()
                                    .next()
                                    .unwrap_or_default()
                                    .to_string();
                                QueryReq::Invalid(WireError::unsupported(format!(
                                    "only DIST and ROUTE are allowed in a batch, got {name}"
                                )))
                            }
                            Err(e) => QueryReq::Invalid(e),
                        });
                    }
                    if truncated {
                        let e = WireError::truncated(n, subs.len() as u32);
                        writeln!(output, "{}", e.line())?;
                        output.flush()?;
                        continue;
                    }
                    writeln!(output, "OK BATCH {n}")?;
                    for resp in self.server.run_queries(&subs) {
                        writeln!(output, "{resp}")?;
                    }
                }
                Ok(Command::Stats) => writeln!(output, "{}", self.server.stats_line())?,
                Ok(Command::Load(req)) => match self.server.load(&req) {
                    Ok(okline) => writeln!(output, "{okline}")?,
                    Err(e) => writeln!(output, "{}", e.line())?,
                },
                Ok(Command::Save(path)) => match self.server.save(&path) {
                    Ok(okline) => writeln!(output, "{okline}")?,
                    Err(e) => writeln!(output, "{}", e.line())?,
                },
                Ok(Command::Flush) => {
                    let resp = self.server.flush();
                    writeln!(output, "{resp}")?;
                }
                Ok(Command::Ping) => writeln!(output, "{OK_PONG}")?,
                Ok(Command::Quit) => {
                    writeln!(output, "{OK_BYE}")?;
                    return output.flush();
                }
            }
            output.flush()?;
        }
    }

    /// Convenience for tests and drivers: feeds `script` (one command per
    /// line) through [`Session::run`] and returns the full response text.
    pub fn handle_script(&mut self, script: &str) -> String {
        let mut out = Vec::new();
        self.run(io::Cursor::new(script.as_bytes()), &mut out)
            .expect("in-memory session I/O cannot fail");
        String::from_utf8(out).expect("responses are UTF-8")
    }
}

/// Serves TCP connections from `listener` sequentially, one session
/// stream per connection, sharing a single [`Server`] (state and
/// counters persist across connections). `QUIT` ends a connection, not
/// the server. Stops after `max_conns` connections when given (useful
/// for tests and smoke runs; `None` loops forever). Returns the server
/// for post-run inspection.
pub fn serve_listener(
    listener: TcpListener,
    server: Server,
    max_conns: Option<usize>,
) -> io::Result<Server> {
    let mut session = Session::new(server);
    for (served, conn) in listener.incoming().enumerate() {
        let stream = conn?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        // A dropped connection mid-session is that client's problem, not
        // a server-fatal condition.
        let _ = session.run(reader, writer);
        if max_conns.is_some_and(|m| served + 1 >= m) {
            break;
        }
    }
    Ok(session.server)
}
