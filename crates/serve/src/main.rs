//! The `spanner-serve` binary: the query server over stdio or TCP.
//!
//! ```text
//! spanner-serve [--threads N] [--cache N] [--listen ADDR [--max-conns N]]
//!               [--load SPEC [--k K] [--seed S] [--routing]]
//! ```
//!
//! By default the server speaks the PROTOCOL.md line protocol on
//! stdin/stdout (pipe a script in, read responses out — the same framing
//! a TCP client would use). With `--listen ADDR` it accepts TCP
//! connections sequentially on `ADDR` instead, sharing one server (state
//! and counters persist across connections). `--load` pre-loads a graph
//! before serving, equivalent to a first `LOAD` line.

use std::net::TcpListener;
use std::process::ExitCode;

use spanner_serve::protocol::parse_spec;
use spanner_serve::{serve_listener, LoadRequest, ServeConfig, Server, Session};

struct Args {
    cfg: ServeConfig,
    listen: Option<String>,
    max_conns: Option<usize>,
    load: Option<LoadRequest>,
}

fn usage() -> ! {
    eprintln!(
        "usage: spanner-serve [--threads N] [--cache N] [--listen ADDR [--max-conns N]]\n\
         \x20                    [--load SPEC [--k K] [--seed S] [--routing]]\n\
         Serves the PROTOCOL.md line protocol on stdin/stdout (default) or TCP."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: ServeConfig::default(),
        listen: None,
        max_conns: None,
        load: None,
    };
    let mut load_spec: Option<String> = None;
    let mut k: u32 = 2;
    let mut seed: u64 = 1;
    let mut routing = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--threads" => {
                args.cfg.threads = value("--threads").parse().unwrap_or_else(|_| usage())
            }
            "--cache" => {
                args.cfg.cache_capacity = value("--cache").parse().unwrap_or_else(|_| usage())
            }
            "--listen" => args.listen = Some(value("--listen")),
            "--max-conns" => {
                args.max_conns = Some(value("--max-conns").parse().unwrap_or_else(|_| usage()))
            }
            "--load" => load_spec = Some(value("--load")),
            "--k" => k = value("--k").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--routing" => routing = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    if args.cfg.threads == 0 {
        eprintln!("--threads must be at least 1");
        usage();
    }
    if let Some(spec) = load_spec {
        match parse_spec(&spec) {
            Ok(spec) => {
                args.load = Some(LoadRequest {
                    spec,
                    k,
                    seed,
                    routing,
                })
            }
            Err(e) => {
                eprintln!("--load: {}", e.line());
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut server = Server::new(args.cfg);
    if let Some(req) = &args.load {
        match server.load(req) {
            Ok(line) => eprintln!("preloaded: {line}"),
            Err(e) => {
                eprintln!("--load failed: {}", e.line());
                return ExitCode::from(2);
            }
        }
    }
    if let Some(addr) = &args.listen {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot listen on {addr}: {e}");
                return ExitCode::from(2);
            }
        };
        eprintln!(
            "listening on {}",
            listener.local_addr().expect("bound address")
        );
        if let Err(e) = serve_listener(listener, server, args.max_conns) {
            eprintln!("serve error: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut session = Session::new(server);
    match session.run(stdin.lock(), stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve error: {e}");
            ExitCode::FAILURE
        }
    }
}
