//! spanner-serve — a batched distance/routing query server over the
//! Thorup–Zwick oracle.
//!
//! The paper's conclusion points at distance oracles and compact routing
//! as the application domain of spanners; `spanner-oracle` builds those
//! structures once, and this crate turns them into a *serving* story: a
//! front end that answers millions of point queries over a structure
//! built once. Concretely:
//!
//! * a **line-oriented textual protocol** (`DIST`, `ROUTE`, `STATS`,
//!   `LOAD`, `BATCH`, …) fully specified in `PROTOCOL.md` at the repo
//!   root — every transcript in that document is replayed byte-for-byte
//!   by `tests/protocol_conformance.rs`, so the spec cannot rot;
//! * **batched execution** fanned over the shared worker-pool idiom
//!   (`spanner_graph::pool`), with responses *and* counters
//!   byte-identical at every thread count ([`server`] module docs);
//! * a bounded **LRU result cache** keyed on (landmark bucket, endpoint)
//!   pairs — the part of a k = 2 oracle query that is a pure function of
//!   a small key shared by many sources ([`cache`]);
//! * deterministic **mixed workloads** (Zipf + uniform) for the
//!   `serve_loadgen` benchmark driver ([`workload`]).
//!
//! # Example
//!
//! ```
//! use spanner_serve::{ServeConfig, Server, Session};
//!
//! let mut session = Session::new(Server::new(ServeConfig::default()));
//! let out = session.handle_script("LOAD path:n=4\nDIST 0 3\nQUIT\n");
//! assert_eq!(out, "OK n=4 m=3 k=2 landmarks=-\nOK 3\nOK BYE\n");
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod server;
pub mod workload;

pub use protocol::{Command, GraphSpec, LoadRequest, WireError};
pub use server::{serve_listener, QueryReq, ServeConfig, ServeStats, Server, Session};
