//! Bounded LRU result cache for landmark-leg distances.
//!
//! The server caches the *landmark leg* of k = 2 oracle queries: the
//! value `δ(w, u)` keyed by `(w, u)` where `w` is a level-1 witness (a
//! landmark). The value is a pure function of the key — see
//! [`spanner_oracle::DistanceOracle::landmark_leg`] — so a hit and a miss
//! always produce the same response; the cache can only change *work*,
//! never *answers*. Keys pack two `u32` ids into one `u64`; values are
//! `u32` distances (the `UNREACHABLE` sentinel is cached too, so
//! cross-component queries also benefit).
//!
//! The implementation is a plain `HashMap` into slab-allocated
//! doubly-linked slots (index-linked, no pointers, no unsafe): `get`
//! moves the entry to the MRU end, `insert` evicts the LRU entry when the
//! map is at capacity. All mutation happens in the server's sequential
//! phases (DESIGN.md §2.11), so there is no interior locking.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    key: u64,
    val: u32,
    prev: u32,
    next: u32,
}

/// A bounded LRU map from packed `(landmark, node)` keys to distances.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    head: u32,
    tail: u32,
}

/// Packs a `(landmark, node)` pair into a cache key.
pub fn pack_key(landmark: u32, node: u32) -> u64 {
    ((landmark as u64) << 32) | node as u64
}

impl LruCache {
    /// An empty cache holding at most `capacity` entries. A capacity of 0
    /// disables caching (every `get` misses, `insert` is a no-op).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn detach(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<u32> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
        Some(self.slots[i as usize].val)
    }

    /// Inserts (or refreshes) `key → val`; returns `true` if an older
    /// entry was evicted to make room.
    pub fn insert(&mut self, key: u64, val: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].val = val;
            if self.head != i {
                self.detach(i);
                self.push_front(i);
            }
            return false;
        }
        if self.map.len() == self.capacity {
            // Evict the LRU entry and reuse its slot.
            let i = self.tail;
            self.detach(i);
            let old_key = self.slots[i as usize].key;
            self.map.remove(&old_key);
            self.slots[i as usize].key = key;
            self.slots[i as usize].val = val;
            self.map.insert(key, i);
            self.push_front(i);
            return true;
        }
        let i = self.slots.len() as u32;
        self.slots.push(Slot {
            key,
            val,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, i);
        self.push_front(i);
        false
    }

    /// Removes every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(1, 10));
        assert!(!c.insert(2, 20));
        assert_eq!(c.get(1), Some(10)); // 1 is now MRU
        assert!(c.insert(3, 30)); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn update_refreshes_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(!c.insert(1, 11)); // update, no eviction
        assert!(c.insert(3, 30)); // evicts 2 (LRU after 1's refresh)
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert!(!c.insert(1, 10));
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        for k in 0..4u64 {
            c.insert(k, k as u32);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(0), None);
        c.insert(9, 9);
        assert_eq!(c.get(9), Some(9));
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        let mut c = LruCache::new(8);
        for k in 0..1000u64 {
            c.insert(k % 37, k as u32);
            assert!(c.len() <= 8);
        }
        // The 8 most recently inserted distinct keys survive.
        let mut live = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for k in (0..1000u64).rev() {
            if seen.insert(k % 37) {
                live.push(k % 37);
                if live.len() == 8 {
                    break;
                }
            }
        }
        for &k in &live {
            assert!(c.get(k).is_some(), "key {k} should be resident");
        }
    }

    #[test]
    fn pack_key_is_injective_on_u32_pairs() {
        assert_ne!(pack_key(1, 2), pack_key(2, 1));
        assert_eq!(pack_key(u32::MAX, 0) >> 32, u32::MAX as u64);
        assert_eq!(pack_key(7, 9) & 0xFFFF_FFFF, 9);
    }
}
