//! Parsing and formatting for the spanner-serve wire protocol.
//!
//! The protocol is a line-oriented textual command language, fully
//! specified in `PROTOCOL.md` at the repository root. Every byte this
//! module produces is part of the documented wire contract: the worked
//! transcripts in `PROTOCOL.md` are replayed byte-for-byte against the
//! server by `tests/protocol_conformance.rs`, so a formatting change here
//! without a matching doc change is a test failure, not a silent drift.

use std::fmt;

use spanner_graph::distance::UNREACHABLE;
use spanner_graph::NodeId;

/// Maximum batch size accepted by `BATCH n`. Bounds the per-batch buffer
/// the server allocates, so a malformed header cannot request unbounded
/// memory.
pub const MAX_BATCH: u32 = 1 << 20;

/// A parsed client command — one request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `DIST u v` — approximate distance between two vertices.
    Dist(u32, u32),
    /// `ROUTE u v` — compact-routing path from `u` to `v`.
    Route(u32, u32),
    /// `BATCH n` — the next `n` lines are DIST/ROUTE sub-commands,
    /// executed as one batch fanned over the worker pool.
    Batch(u32),
    /// `STATS` — one-line counters snapshot.
    Stats,
    /// `LOAD <spec> [k=..] [seed=..] [routing=on|off]` — build the graph,
    /// oracle and (optionally) routing tables to serve from.
    Load(LoadRequest),
    /// `SAVE <path>` — persist the loaded graph and its parameters as a
    /// `spanner-store` snapshot directory at `path`.
    Save(String),
    /// `FLUSH` — clear the result cache (counters are kept).
    Flush,
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — end the session.
    Quit,
}

/// Parameters of a `LOAD` command.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRequest {
    /// The graph to build.
    pub spec: GraphSpec,
    /// Oracle levels (stretch 2k−1). Default 2 — the landmark
    /// configuration the result cache is designed for.
    pub k: u32,
    /// Sampling seed shared by the oracle and the routing scheme.
    /// Default 1.
    pub seed: u64,
    /// Whether to also build the compact-routing tables (`ROUTE` needs
    /// them; they cost O(n^{3/2}) space). Default off.
    pub routing: bool,
}

/// The graph-specification grammar of `LOAD` (see PROTOCOL.md §LOAD).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// `er:n=<n>,m=<m>,seed=<s>` — connected Erdős–Rényi G(n, m).
    Er {
        /// Number of vertices (≥ 2).
        n: u32,
        /// Number of edges (`n−1 ≤ m ≤ n(n−1)/2`).
        m: u64,
        /// Generator seed.
        seed: u64,
    },
    /// `grid:rows=<r>,cols=<c>` — r × c grid.
    Grid {
        /// Grid rows (≥ 1).
        rows: u32,
        /// Grid columns (≥ 1).
        cols: u32,
    },
    /// `cycle:n=<n>` — cycle on n ≥ 3 vertices.
    Cycle {
        /// Cycle length (≥ 3).
        n: u32,
    },
    /// `path:n=<n>` — path on n ≥ 1 vertices.
    Path {
        /// Path length in vertices (≥ 1).
        n: u32,
    },
    /// `file:<path>` — whitespace-separated `u v` edge list, one edge per
    /// line; `n` is the largest id + 1.
    File {
        /// Filesystem path of the edge list (no whitespace).
        path: String,
    },
    /// `snapshot:<path>` — a `spanner-store` snapshot directory written
    /// by `SAVE` (or any `Store::save`). The snapshot carries its own
    /// `k`/`seed`/`routing`, so explicit LOAD options are rejected.
    Snapshot {
        /// Filesystem path of the snapshot directory (no whitespace).
        path: String,
    },
}

/// A protocol-level error, rendered on the wire as `ERR <CODE> <message>`.
///
/// The code set is closed and documented in PROTOCOL.md §Errors; messages
/// are stable strings exercised by the conformance transcripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    code: &'static str,
    message: String,
}

impl WireError {
    /// `PARSE` — the request line is malformed (unknown command, wrong
    /// arity, bad number).
    pub fn parse(message: impl Into<String>) -> Self {
        WireError {
            code: "PARSE",
            message: message.into(),
        }
    }

    /// `UNKNOWN-NODE` — a query referenced a node id outside the loaded
    /// graph.
    pub fn unknown_node(node: u32, nodes: usize) -> Self {
        WireError {
            code: "UNKNOWN-NODE",
            message: format!("node {node} out of range: graph has {nodes} nodes"),
        }
    }

    /// `NO-GRAPH` — a query arrived before any successful `LOAD`.
    pub fn no_graph() -> Self {
        WireError {
            code: "NO-GRAPH",
            message: "no graph loaded; send LOAD first".to_string(),
        }
    }

    /// `NO-ROUTING` — `ROUTE` arrived but the graph was loaded with
    /// `routing=off`.
    pub fn no_routing() -> Self {
        WireError {
            code: "NO-ROUTING",
            message: "routing tables not built; reload with routing=on".to_string(),
        }
    }

    /// `BADSPEC` — the `LOAD` spec or options are invalid.
    pub fn bad_spec(message: impl Into<String>) -> Self {
        WireError {
            code: "BADSPEC",
            message: message.into(),
        }
    }

    /// `STORE` — a snapshot operation failed: `SAVE` could not write, or
    /// a `snapshot:` LOAD found a missing, corrupt, or incompatible
    /// snapshot. The message carries the store layer's typed diagnosis.
    pub fn store(message: impl Into<String>) -> Self {
        WireError {
            code: "STORE",
            message: message.into(),
        }
    }

    /// `UNSUPPORTED` — the command is valid but not allowed here (only
    /// DIST/ROUTE may appear inside a batch).
    pub fn unsupported(message: impl Into<String>) -> Self {
        WireError {
            code: "UNSUPPORTED",
            message: message.into(),
        }
    }

    /// `TRUNCATED` — the input stream ended before the announced batch
    /// was complete.
    pub fn truncated(expected: u32, got: u32) -> Self {
        WireError {
            code: "TRUNCATED",
            message: format!("batch expected {expected} sub-commands, got {got}"),
        }
    }

    /// The error code (e.g. `PARSE`).
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The full response line: `ERR <CODE> <message>`.
    pub fn line(&self) -> String {
        format!("ERR {} {}", self.code, self.message)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ERR {} {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Response line for `PING`.
pub const OK_PONG: &str = "OK PONG";
/// Response line for `QUIT`.
pub const OK_BYE: &str = "OK BYE";
/// Response line for `FLUSH`.
pub const OK_FLUSHED: &str = "OK FLUSHED";

/// Formats a distance response: `OK <d>` or `OK UNREACHABLE` for
/// disconnected pairs.
pub fn format_dist(d: u32) -> String {
    if d == UNREACHABLE {
        "OK UNREACHABLE".to_string()
    } else {
        format!("OK {d}")
    }
}

/// Formats a route response: `OK <hops> <v0> <v1> … <vk>` (hop count, then
/// the full vertex path including both endpoints), or `OK UNREACHABLE`
/// when the endpoints lie in different components.
pub fn format_route(path: Option<&[NodeId]>) -> String {
    match path {
        None => "OK UNREACHABLE".to_string(),
        Some(p) => {
            let mut s = format!("OK {}", p.len() - 1);
            for v in p {
                s.push(' ');
                s.push_str(&v.0.to_string());
            }
            s
        }
    }
}

fn parse_uint<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, WireError> {
    if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
        return Err(WireError::parse(format!("invalid {what} {tok}")));
    }
    tok.parse::<T>()
        .map_err(|_| WireError::parse(format!("invalid {what} {tok}")))
}

fn parse_node(tok: &str) -> Result<u32, WireError> {
    parse_uint::<u32>(tok, "node id")
}

fn expect_arity(tokens: &[&str], n: usize, cmd: &str) -> Result<(), WireError> {
    if tokens.len() != n + 1 {
        let noun = if n == 1 { "argument" } else { "arguments" };
        return Err(WireError::parse(format!("{cmd} expects {n} {noun}")));
    }
    Ok(())
}

/// Parses one request line into a [`Command`].
///
/// The caller is expected to skip blank lines outside batches (the
/// protocol ignores them); inside a batch every line counts and blank
/// lines are a `PARSE` error.
pub fn parse_command(line: &str) -> Result<Command, WireError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some(&head) = tokens.first() else {
        return Err(WireError::parse("empty command"));
    };
    match head {
        "DIST" => {
            expect_arity(&tokens, 2, "DIST")?;
            Ok(Command::Dist(
                parse_node(tokens[1])?,
                parse_node(tokens[2])?,
            ))
        }
        "ROUTE" => {
            expect_arity(&tokens, 2, "ROUTE")?;
            Ok(Command::Route(
                parse_node(tokens[1])?,
                parse_node(tokens[2])?,
            ))
        }
        "BATCH" => {
            expect_arity(&tokens, 1, "BATCH")?;
            let n: u32 = parse_uint(tokens[1], "batch size")?;
            if n > MAX_BATCH {
                return Err(WireError::parse(format!(
                    "batch size {n} exceeds maximum {MAX_BATCH}"
                )));
            }
            Ok(Command::Batch(n))
        }
        "STATS" => {
            expect_arity(&tokens, 0, "STATS")?;
            Ok(Command::Stats)
        }
        "FLUSH" => {
            expect_arity(&tokens, 0, "FLUSH")?;
            Ok(Command::Flush)
        }
        "PING" => {
            expect_arity(&tokens, 0, "PING")?;
            Ok(Command::Ping)
        }
        "QUIT" => {
            expect_arity(&tokens, 0, "QUIT")?;
            Ok(Command::Quit)
        }
        "LOAD" => parse_load(&tokens),
        "SAVE" => {
            expect_arity(&tokens, 1, "SAVE")?;
            Ok(Command::Save(tokens[1].to_string()))
        }
        other => Err(WireError::parse(format!("unknown command {other}"))),
    }
}

fn parse_load(tokens: &[&str]) -> Result<Command, WireError> {
    if tokens.len() < 2 {
        return Err(WireError::parse("LOAD expects a graph spec"));
    }
    let spec = parse_spec(tokens[1])?;
    if matches!(spec, GraphSpec::Snapshot { .. }) && tokens.len() > 2 {
        return Err(WireError::bad_spec(
            "snapshot carries its own k/seed/routing; options are not allowed",
        ));
    }
    let mut req = LoadRequest {
        spec,
        k: 2,
        seed: 1,
        routing: false,
    };
    for opt in &tokens[2..] {
        let Some((key, val)) = opt.split_once('=') else {
            return Err(WireError::parse(format!("invalid LOAD option {opt}")));
        };
        match key {
            "k" => {
                req.k = parse_uint(val, "k")?;
                if req.k < 1 || req.k > 16 {
                    return Err(WireError::bad_spec(format!(
                        "k must be between 1 and 16, got {}",
                        req.k
                    )));
                }
            }
            "seed" => req.seed = parse_uint(val, "seed")?,
            "routing" => {
                req.routing = match val {
                    "on" => true,
                    "off" => false,
                    _ => {
                        return Err(WireError::parse(format!(
                            "routing must be on or off, got {val}"
                        )))
                    }
                }
            }
            _ => return Err(WireError::parse(format!("unknown LOAD option {key}"))),
        }
    }
    Ok(Command::Load(req))
}

/// Parses a `LOAD` graph spec (`<kind>:<fields>`), e.g.
/// `er:n=1000,m=4000,seed=7` or `file:/tmp/graph.edges`.
pub fn parse_spec(tok: &str) -> Result<GraphSpec, WireError> {
    let Some((kind, rest)) = tok.split_once(':') else {
        return Err(WireError::bad_spec(format!(
            "spec {tok} is missing a ':' separator"
        )));
    };
    if kind == "file" {
        if rest.is_empty() {
            return Err(WireError::bad_spec("file spec has an empty path"));
        }
        return Ok(GraphSpec::File {
            path: rest.to_string(),
        });
    }
    if kind == "snapshot" {
        if rest.is_empty() {
            return Err(WireError::bad_spec("snapshot spec has an empty path"));
        }
        return Ok(GraphSpec::Snapshot {
            path: rest.to_string(),
        });
    }
    let mut fields: Vec<(&str, &str)> = Vec::new();
    for part in rest.split(',') {
        let Some((key, val)) = part.split_once('=') else {
            return Err(WireError::bad_spec(format!("invalid spec field {part}")));
        };
        fields.push((key, val));
    }
    let get = |name: &str| -> Result<&str, WireError> {
        fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| WireError::bad_spec(format!("missing field {name} in {kind} spec")))
    };
    let uint = |name: &str| -> Result<u64, WireError> {
        let val = get(name)?;
        if val.is_empty() || !val.bytes().all(|b| b.is_ascii_digit()) {
            return Err(WireError::bad_spec(format!(
                "invalid value for {name}: {val}"
            )));
        }
        val.parse::<u64>()
            .map_err(|_| WireError::bad_spec(format!("invalid value for {name}: {val}")))
    };
    let small = |name: &str, min: u64, max: u64| -> Result<u32, WireError> {
        let v = uint(name)?;
        if v < min || v > max {
            return Err(WireError::bad_spec(format!(
                "{name} must be between {min} and {max}, got {v}"
            )));
        }
        Ok(v as u32)
    };
    const MAX_N: u64 = 1 << 24;
    let expect_fields = |allowed: &[&str]| -> Result<(), WireError> {
        for (k, _) in &fields {
            if !allowed.contains(k) {
                return Err(WireError::bad_spec(format!(
                    "unknown field {k} in {kind} spec"
                )));
            }
        }
        Ok(())
    };
    match kind {
        "er" => {
            expect_fields(&["n", "m", "seed"])?;
            let n = small("n", 2, MAX_N)?;
            let m = uint("m")?;
            let total = n as u64 * (n as u64 - 1) / 2;
            if m + 1 < n as u64 || m > total {
                return Err(WireError::bad_spec(format!(
                    "er spec needs n-1 <= m <= n(n-1)/2, got n={n} m={m}"
                )));
            }
            Ok(GraphSpec::Er {
                n,
                m,
                seed: uint("seed")?,
            })
        }
        "grid" => {
            expect_fields(&["rows", "cols"])?;
            let rows = small("rows", 1, MAX_N)?;
            let cols = small("cols", 1, MAX_N)?;
            if rows as u64 * cols as u64 > MAX_N {
                return Err(WireError::bad_spec(format!(
                    "grid {rows}x{cols} exceeds {MAX_N} nodes"
                )));
            }
            Ok(GraphSpec::Grid { rows, cols })
        }
        "cycle" => {
            expect_fields(&["n"])?;
            Ok(GraphSpec::Cycle {
                n: small("n", 3, MAX_N)?,
            })
        }
        "path" => {
            expect_fields(&["n"])?;
            Ok(GraphSpec::Path {
                n: small("n", 1, MAX_N)?,
            })
        }
        other => Err(WireError::bad_spec(format!("unknown generator {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_queries() {
        assert_eq!(parse_command("DIST 3 9"), Ok(Command::Dist(3, 9)));
        assert_eq!(parse_command("ROUTE 0 42"), Ok(Command::Route(0, 42)));
        assert_eq!(parse_command("  DIST  3   9 "), Ok(Command::Dist(3, 9)));
        assert_eq!(parse_command("BATCH 16"), Ok(Command::Batch(16)));
        assert_eq!(parse_command("PING"), Ok(Command::Ping));
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "DIST 3",
            "DIST 3 9 12",
            "DIST -1 4",
            "DIST +1 4",
            "DIST 1e3 4",
            "DIST 99999999999 0",
            "ROUTE x y",
            "BATCH",
            "BATCH -4",
            "STATS now",
            "dist 3 9",
            "EXPLODE",
        ] {
            let err = parse_command(line).unwrap_err();
            assert_eq!(err.code(), "PARSE", "{line}: {}", err.line());
        }
        assert_eq!(
            parse_command(&format!("BATCH {}", MAX_BATCH + 1))
                .unwrap_err()
                .code(),
            "PARSE"
        );
    }

    #[test]
    fn parses_load_specs() {
        let cmd = parse_command("LOAD er:n=100,m=400,seed=7 k=3 seed=9 routing=on").unwrap();
        assert_eq!(
            cmd,
            Command::Load(LoadRequest {
                spec: GraphSpec::Er {
                    n: 100,
                    m: 400,
                    seed: 7
                },
                k: 3,
                seed: 9,
                routing: true,
            })
        );
        assert_eq!(
            parse_command("LOAD cycle:n=12").unwrap(),
            Command::Load(LoadRequest {
                spec: GraphSpec::Cycle { n: 12 },
                k: 2,
                seed: 1,
                routing: false,
            })
        );
        assert_eq!(
            parse_spec("file:/tmp/g.edges").unwrap(),
            GraphSpec::File {
                path: "/tmp/g.edges".to_string()
            }
        );
    }

    #[test]
    fn rejects_bad_specs() {
        for spec in [
            "er",
            "er:n=1,m=0,seed=1",
            "er:n=10,m=2,seed=1",
            "er:n=10,m=99,seed=1",
            "er:n=10,seed=1",
            "er:n=10,m=20,seed=1,extra=2",
            "cycle:n=2",
            "blob:n=4",
            "grid:rows=0,cols=5",
            "file:",
        ] {
            let err = parse_spec(spec).unwrap_err();
            assert_eq!(err.code(), "BADSPEC", "{spec}: {}", err.line());
        }
        // k out of range is BADSPEC; malformed option is PARSE.
        assert_eq!(
            parse_command("LOAD cycle:n=5 k=0").unwrap_err().code(),
            "BADSPEC"
        );
        assert_eq!(
            parse_command("LOAD cycle:n=5 k=17").unwrap_err().code(),
            "BADSPEC"
        );
        assert_eq!(
            parse_command("LOAD cycle:n=5 routing=maybe")
                .unwrap_err()
                .code(),
            "PARSE"
        );
        assert_eq!(
            parse_command("LOAD cycle:n=5 verbose=1")
                .unwrap_err()
                .code(),
            "PARSE"
        );
    }

    #[test]
    fn parses_save_and_snapshot_specs() {
        assert_eq!(
            parse_command("SAVE /tmp/snap").unwrap(),
            Command::Save("/tmp/snap".to_string())
        );
        assert_eq!(parse_command("SAVE").unwrap_err().code(), "PARSE");
        assert_eq!(parse_command("SAVE a b").unwrap_err().code(), "PARSE");
        assert_eq!(
            parse_command("LOAD snapshot:/tmp/snap").unwrap(),
            Command::Load(LoadRequest {
                spec: GraphSpec::Snapshot {
                    path: "/tmp/snap".to_string()
                },
                k: 2,
                seed: 1,
                routing: false,
            })
        );
        // The snapshot carries its own parameters: every explicit option
        // is rejected, even redundant-looking ones.
        for line in [
            "LOAD snapshot:/tmp/snap k=2",
            "LOAD snapshot:/tmp/snap seed=1",
            "LOAD snapshot:/tmp/snap routing=on",
        ] {
            assert_eq!(parse_command(line).unwrap_err().code(), "BADSPEC", "{line}");
        }
        assert_eq!(parse_spec("snapshot:").unwrap_err().code(), "BADSPEC");
    }

    #[test]
    fn formats_responses() {
        assert_eq!(format_dist(7), "OK 7");
        assert_eq!(format_dist(UNREACHABLE), "OK UNREACHABLE");
        assert_eq!(format_route(None), "OK UNREACHABLE");
        let path = [NodeId(4), NodeId(2), NodeId(9)];
        assert_eq!(format_route(Some(&path)), "OK 2 4 2 9");
        assert_eq!(format_route(Some(&path[..1])), "OK 0 4");
        assert_eq!(
            WireError::unknown_node(9, 4).line(),
            "ERR UNKNOWN-NODE node 9 out of range: graph has 4 nodes"
        );
    }
}
