//! Deterministic mixed read workloads for the load generator.
//!
//! A workload is a fixed-length stream of DIST/ROUTE endpoint pairs drawn
//! from two populations: a fraction [`WorkloadSpec::zipf_frac`] of *hot*
//! queries whose endpoints are Zipf-distributed over the node ids (the
//! classic skewed serving pattern — a small set of popular vertices
//! absorbs most traffic, which is what makes landmark-bucket caching pay
//! off), and the remainder *cold* queries with uniformly random
//! endpoints. Everything is a pure function of the spec, so the same
//! spec replayed at any thread count produces the same stream — the basis
//! of the loadgen's determinism check.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of vertices to draw endpoints from (`0..nodes`).
    pub nodes: u32,
    /// Number of queries to generate.
    pub queries: usize,
    /// Fraction of queries whose endpoints are Zipf-distributed.
    pub zipf_frac: f64,
    /// Zipf skew θ (weights `(i+1)^{-θ}`); ~0.99 is the classic
    /// YCSB-style hot-spot setting.
    pub zipf_theta: f64,
    /// Fraction of queries that are ROUTE (the rest are DIST).
    pub route_frac: f64,
    /// Seed; equal specs generate equal streams.
    pub seed: u64,
}

/// One generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPair {
    /// `true` for ROUTE, `false` for DIST.
    pub route: bool,
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
}

/// A Zipf(θ) sampler over `0..n` via inverse transform on the cumulative
/// weight table (exact, O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ids `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not finite and non-negative.
    pub fn new(n: u32, theta: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one id");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "invalid zipf theta {theta}"
        );
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws one id, most probable first (id 0 is the hottest).
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x) as u32
    }
}

/// Generates the full query stream for `spec`. Deterministic: equal specs
/// yield equal streams.
pub fn generate(spec: &WorkloadSpec) -> Vec<QueryPair> {
    assert!(spec.nodes >= 1, "workload needs at least one node");
    assert!(
        (0.0..=1.0).contains(&spec.zipf_frac),
        "zipf_frac out of [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&spec.route_frac),
        "route_frac out of [0,1]"
    );
    let zipf = Zipf::new(spec.nodes, spec.zipf_theta);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.queries);
    for _ in 0..spec.queries {
        let hot = rng.gen::<f64>() < spec.zipf_frac;
        let route = rng.gen::<f64>() < spec.route_frac;
        let (u, v) = if hot {
            (zipf.sample(&mut rng), zipf.sample(&mut rng))
        } else {
            (rng.gen_range(0..spec.nodes), rng.gen_range(0..spec.nodes))
        };
        out.push(QueryPair { route, u, v });
    }
    out
}

/// Renders a slice of queries as one `BATCH` request: the header line
/// followed by one DIST/ROUTE line per query (the loadgen's wire format).
pub fn batch_script(queries: &[QueryPair]) -> String {
    let mut s = format!("BATCH {}\n", queries.len());
    for q in queries {
        let cmd = if q.route { "ROUTE" } else { "DIST" };
        s.push_str(cmd);
        s.push(' ');
        s.push_str(&q.u.to_string());
        s.push(' ');
        s.push_str(&q.v.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            nodes: 1000,
            queries: 5000,
            zipf_frac: 0.8,
            zipf_theta: 0.99,
            route_frac: 0.25,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_in_spec() {
        assert_eq!(generate(&spec()), generate(&spec()));
        let mut other = spec();
        other.seed += 1;
        assert_ne!(generate(&spec()), generate(&other));
    }

    #[test]
    fn endpoints_in_range_and_mix_close_to_spec() {
        let s = spec();
        let qs = generate(&s);
        assert_eq!(qs.len(), s.queries);
        let routes = qs.iter().filter(|q| q.route).count() as f64 / qs.len() as f64;
        assert!((routes - s.route_frac).abs() < 0.05, "route mix {routes}");
        for q in &qs {
            assert!(q.u < s.nodes && q.v < s.nodes);
        }
    }

    #[test]
    fn zipf_is_skewed_and_uniform_is_not() {
        let mut rng = SmallRng::seed_from_u64(7);
        let zipf = Zipf::new(1000, 0.99);
        let mut hits0 = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            if zipf.sample(&mut rng) == 0 {
                hits0 += 1;
            }
        }
        // P(0) = 1/H_1000 ≈ 0.13 at θ = 0.99 — far above uniform 0.001.
        let p0 = hits0 as f64 / samples as f64;
        assert!(p0 > 0.05, "zipf head probability {p0}");
        // θ = 0 degenerates to uniform.
        let uni = Zipf::new(1000, 0.0);
        let mut hits = 0usize;
        for _ in 0..samples {
            if uni.sample(&mut rng) == 0 {
                hits += 1;
            }
        }
        assert!((hits as f64 / samples as f64) < 0.01);
    }

    #[test]
    fn batch_script_shape() {
        let qs = [
            QueryPair {
                route: false,
                u: 1,
                v: 2,
            },
            QueryPair {
                route: true,
                u: 3,
                v: 4,
            },
        ];
        assert_eq!(batch_script(&qs), "BATCH 2\nDIST 1 2\nROUTE 3 4\n");
    }
}
