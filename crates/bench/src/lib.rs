//! Experiment harness: regenerates every table and figure of the paper.
//!
//! One binary per experiment (see EXPERIMENTS.md for the index); this
//! library holds the shared pieces: a markdown table printer, the standard
//! workloads, wall-clock timing, and a `--quick` mode so CI can smoke-test
//! every experiment cheaply.
//!
//! Run an experiment with e.g.
//!
//! ```text
//! cargo run --release -p spanner-bench --bin fig1_table
//! cargo run --release -p spanner-bench --bin exp_skeleton_size -- --quick
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::Instant;

use spanner_graph::Graph;
use spanner_netsim::{FaultPlan, JsonLinesSink, NullSink, TraceSink};

/// Whether the process was invoked with `--quick` (smaller instances).
/// `--scale quick` is a synonym.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || scale_arg().as_deref() == Some("quick")
}

/// Whether the process was invoked with `--tiny` (pinned, seconds-scale
/// instances — the configuration the golden-file regression tests run at).
/// `--scale tiny` is a synonym.
pub fn tiny_mode() -> bool {
    std::env::args().any(|a| a == "--tiny") || scale_arg().as_deref() == Some("tiny")
}

/// The `--scale <tier>` argument (also `--scale=tier`), if present.
/// Tiers: `full` (the default), `quick`, `tiny`, and `huge` — the
/// million-node tier that routes the experiment through the CSR-native
/// construction drivers (see EXPERIMENTS.md, "Million-node runs").
///
/// # Panics
///
/// Panics on an unknown tier — experiments fail loudly rather than
/// silently run the default scale.
pub fn scale_arg() -> Option<String> {
    let mut args = std::env::args();
    let tier = loop {
        let a = args.next()?;
        if a == "--scale" {
            break args.next().expect("--scale needs a tier argument");
        }
        if let Some(t) = a.strip_prefix("--scale=") {
            break t.to_owned();
        }
    };
    assert!(
        matches!(tier.as_str(), "full" | "quick" | "tiny" | "huge"),
        "unknown --scale tier {tier:?} (expected full, quick, tiny, or huge)"
    );
    Some(tier)
}

/// Whether the process was invoked with `--scale huge` (n ≥ 2²⁰ instances
/// built through the streaming CSR generators; excluded from CI).
pub fn huge_mode() -> bool {
    scale_arg().as_deref() == Some("huge")
}

/// Picks full / `--quick` / `--tiny` values; `--tiny` wins over `--quick`.
pub fn scale3<T: Copy>(full: T, quick: T, tiny: T) -> T {
    if tiny_mode() {
        tiny
    } else if quick_mode() {
        quick
    } else {
        full
    }
}

/// The `--faults <spec>` argument parsed into a [`FaultPlan`]. Accepts both
/// `--faults drop=0.05,seed=7` and `--faults=drop=0.05,seed=7`; the spec
/// grammar is [`FaultPlan::parse_spec`]'s (see EXPERIMENTS.md).
///
/// # Panics
///
/// Panics with the parser's message on a malformed spec — experiments fail
/// loudly rather than run a different schedule than the one asked for.
pub fn fault_plan_arg() -> Option<FaultPlan> {
    let mut args = std::env::args();
    let spec = loop {
        let a = args.next()?;
        if a == "--faults" {
            break args.next().expect("--faults needs a spec argument");
        }
        if let Some(spec) = a.strip_prefix("--faults=") {
            break spec.to_owned();
        }
    };
    Some(FaultPlan::parse_spec(&spec).unwrap_or_else(|e| panic!("bad --faults spec: {e}")))
}

/// The `--threads N` argument (also `--threads=N`), defaulting to 1.
///
/// Experiments feed this to the distance engine's verification passes
/// (`stretch_sampled_threads` and friends); results are identical at every
/// thread count, so the flag only changes wall-clock time.
///
/// # Panics
///
/// Panics on a malformed or zero count — experiments fail loudly rather
/// than silently run single-threaded.
pub fn threads_arg() -> usize {
    let mut args = std::env::args();
    let spec = loop {
        let Some(a) = args.next() else { return 1 };
        if a == "--threads" {
            break args.next().expect("--threads needs a count argument");
        }
        if let Some(spec) = a.strip_prefix("--threads=") {
            break spec.to_owned();
        }
    };
    let n: usize = spec
        .parse()
        .unwrap_or_else(|e| panic!("bad --threads count {spec:?}: {e}"));
    assert!(n >= 1, "--threads must be at least 1");
    n
}

/// The `--trace-out <path>` argument, if present. Accepts both
/// `--trace-out runs.jsonl` and `--trace-out=runs.jsonl`.
pub fn trace_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Round-level trace output for an experiment binary, driven by the
/// `--trace-out <path>.jsonl` flag.
///
/// Experiments run many simulated protocols; each traced run gets its own
/// JSON-lines file so every file holds exactly one event stream ending in a
/// single `run_end` record (the format `trace_summary` consumes). The file
/// for the run labeled `L` is `<stem>.<L>.jsonl` next to the requested
/// path. Without the flag every sink is a no-op [`NullSink`] and tracing
/// cost is zero.
#[derive(Debug, Clone, Default)]
pub struct TraceOutput {
    base: Option<PathBuf>,
}

impl TraceOutput {
    /// Reads `--trace-out` from the process arguments.
    pub fn from_args() -> Self {
        TraceOutput {
            base: trace_out_arg(),
        }
    }

    /// Whether `--trace-out` was passed.
    pub fn enabled(&self) -> bool {
        self.base.is_some()
    }

    /// Opens the trace destination for the run labeled `label`
    /// (disabled when `--trace-out` is absent).
    ///
    /// # Panics
    ///
    /// Panics if the trace file cannot be created — experiments should
    /// fail loudly rather than silently drop requested output.
    pub fn open(&self, label: &str) -> RunTrace {
        let Some(base) = &self.base else {
            return RunTrace {
                inner: None,
                null: NullSink,
            };
        };
        let path = labeled_path(base, label);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create trace dir {}: {e}", dir.display()));
        }
        let sink = JsonLinesSink::create(&path)
            .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
        RunTrace {
            inner: Some((path, sink)),
            null: NullSink,
        }
    }
}

/// Inserts `label` before the extension: `runs.jsonl` + `skeleton` →
/// `runs.skeleton.jsonl`. A path without an extension gets `.jsonl`.
fn labeled_path(base: &Path, label: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    base.with_file_name(format!("{stem}.{label}.{ext}"))
}

/// One run's trace destination: a JSON-lines file, or a no-op when
/// `--trace-out` was not passed. Hand [`RunTrace::sink`] to a
/// `build_distributed_traced` driver, then call [`RunTrace::finish`].
#[derive(Debug)]
pub struct RunTrace {
    inner: Option<(PathBuf, JsonLinesSink<BufWriter<File>>)>,
    null: NullSink,
}

impl RunTrace {
    /// The sink to stream this run's events into.
    pub fn sink(&mut self) -> &mut dyn TraceSink {
        match &mut self.inner {
            Some((_, sink)) => sink,
            None => &mut self.null,
        }
    }

    /// Flushes the file and prints where it was written.
    ///
    /// # Panics
    ///
    /// Panics if the file could not be written in full.
    pub fn finish(self) {
        if let Some((path, sink)) = self.inner {
            sink.finish()
                .unwrap_or_else(|e| panic!("writing trace file {}: {e}", path.display()));
            println!("  trace: wrote {}", path.display());
        }
    }
}

/// Picks the quick or full value depending on [`quick_mode`].
pub fn scaled<T: Copy>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// A simple aligned markdown table printer.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut width: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(width) {
                out.push(' ');
                out.push_str(c);
                out.push_str(&" ".repeat(w - c.len() + 1));
                out.push('|');
            }
            out.push('\n');
        };
        line(&self.header, &width, &mut out);
        out.push('|');
        for w in &width {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The standard random workload of the experiment suite: a connected
/// G(n, m) graph with m = `density` · n edges.
pub fn workload(n: usize, density: f64, seed: u64) -> Graph {
    let m = ((n as f64) * density) as usize;
    spanner_graph::generators::connected_gnm(n, m.max(n - 1), seed)
}

/// [`workload`] built straight into a [`spanner_graph::CsrAdjacency`]:
/// same sampler,
/// same seed, same edges — with no intermediate `Graph` materialization.
/// The `--scale huge` tiers run on this.
pub fn workload_csr(n: usize, density: f64, seed: u64) -> spanner_graph::CsrAdjacency {
    let m = ((n as f64) * density) as usize;
    spanner_graph::generators::connected_gnm_csr(n, m.max(n - 1), seed)
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`;
/// 0 where unavailable). The huge experiment tiers and the construction
/// bench report this next to their timings.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligned() {
        let mut t = Table::new(["a", "long header", "x"]);
        t.row(["1", "2", "3"]);
        t.row(["wide cell", "4", "5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length (aligned).
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("| long header |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn workload_connected() {
        let g = workload(200, 3.0, 1);
        assert_eq!(g.node_count(), 200);
        assert!(g.edge_count() >= 199);
        assert!(spanner_graph::components::is_connected(&g));
    }

    #[test]
    fn timing_positive() {
        let (v, secs) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2344), "1.234");
    }
}
