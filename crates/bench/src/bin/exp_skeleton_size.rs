//! E2 — **Lemma 6 / Theorem 2**: skeleton size vs the density parameter D.
//!
//! The paper proves the expected spanner size is `Dn/e + O(n log D)`, with
//! the explicit constant worked out in Lemma 6. This experiment sweeps D
//! and prints measured |S|/n next to the analytic prediction, for both the
//! sequential reference and the distributed protocol.

use spanner_bench::{
    f2, fault_plan_arg, huge_mode, peak_rss_bytes, scale3, threads_arg, timed, workload,
    workload_csr, Table, TraceOutput,
};
use ultrasparse::skeleton::{build_sequential, distributed, SkeletonParams};

fn main() {
    if huge_mode() {
        return run_huge();
    }
    let traces = TraceOutput::from_args();
    let faults = fault_plan_arg();
    if let Some(plan) = &faults {
        println!("fault injection active: {plan:?}\n");
    }
    let n = scale3(30_000, 3_000, 400);
    println!("E2 (Lemma 6): skeleton size vs D, n = {n}.\n");
    println!(
        "Per-D workload with average degree ~ D: the Dn/e term of Lemma 6 comes\n\
         from vertices adjacent to q ~ 1/p = D clusters in the first Expand call\n\
         (the maximizer of X^1_p); much denser graphs realize far below the\n\
         worst case because nobody dies early.\n"
    );

    let mut table = Table::new([
        "D",
        "m",
        "predicted |S|/n (Lemma 6)",
        "sequential |S|/n",
        "distributed |S|/n",
        "Dn/e term",
        "secs",
    ]);
    // eps = 1.0 keeps D <= log^eps n (Theorem 2's precondition) for every
    // D in the sweep at this n.
    for d in [4.0, 6.0, 8.0, 10.0, 12.0, 14.0] {
        let g = workload(n, d / 2.0, 7); // avg degree = 2·(m/n) = D
        let params = SkeletonParams::new(d, 1.0).expect("valid params");
        let predicted = params.expected_size(g.node_count()) / g.node_count() as f64;
        let (seq, secs) = timed(|| build_sequential(&g, &params, 11));
        let dist = if let Some(plan) = &faults {
            match distributed::build_distributed_faulted(&g, &params, 11, plan) {
                Ok(s) => {
                    if let Some(m) = &s.metrics {
                        println!("D = {d}: certified under faults ({})", m.faults);
                    }
                    s
                }
                Err(e) => {
                    println!("D = {d}: no certified spanner under this schedule: {e}");
                    continue;
                }
            }
        } else {
            let mut tr = traces.open(&format!("d{:02}", d as u32));
            let dist = distributed::build_distributed_traced(&g, &params, 11, tr.sink())
                .expect("distributed run");
            tr.finish();
            dist
        };
        assert!(seq.is_spanning(&g) && dist.is_spanning(&g));
        table.row([
            f2(d),
            g.edge_count().to_string(),
            f2(predicted),
            f2(seq.edges_per_node(&g)),
            f2(dist.edges_per_node(&g)),
            f2(d / std::f64::consts::E),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nShape check: measured size grows ~linearly in D, stays below the\n\
         Lemma 6 prediction (an upper bound with explicit constants), and the\n\
         sequential and distributed implementations agree closely."
    );
}

/// The `--scale huge` tier: the D sweep at n = 2²⁰ through the CSR-native
/// distributed driver (no `Graph`, no sequential reference — the point of
/// the tier). Spanning is certified exactly per row; the Lemma 6 size
/// comparison is the experiment's payload and needs no distances.
fn run_huge() {
    let n = 1usize << 20;
    let threads = threads_arg();
    println!("E2 (Lemma 6), huge tier: skeleton size vs D, CSR-native, n = {n}.\n");
    let mut table = Table::new([
        "D",
        "m",
        "predicted |S|/n (Lemma 6)",
        "distributed |S|/n",
        "rounds",
        "messages",
        "secs",
    ]);
    for d in [4.0, 8.0, 12.0] {
        let (csr, gen_secs) = timed(|| std::sync::Arc::new(workload_csr(n, d / 2.0, 7)));
        let params = SkeletonParams::new(d, 1.0).expect("valid params");
        let predicted = params.expected_size(n) / n as f64;
        let (dist, secs) = timed(|| {
            if threads > 1 {
                distributed::build_distributed_csr_parallel(&csr, &params, 11, threads)
            } else {
                distributed::build_distributed_csr(&csr, &params, 11)
            }
            .expect("distributed run")
        });
        assert!(
            csr.subgraph(&dist.edges).is_connected(),
            "D = {d} must span"
        );
        let m = dist.metrics.as_ref().expect("distributed run has metrics");
        println!("D = {d}: generated in {gen_secs:.1}s, built in {secs:.1}s");
        table.row([
            f2(d),
            csr.edge_count().to_string(),
            f2(predicted),
            f2(dist.len() as f64 / n as f64),
            m.rounds.to_string(),
            m.messages.to_string(),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nSpanning certified exactly per row; stretch columns are covered by\n\
         the default tiers. Peak RSS: {} MiB.",
        peak_rss_bytes() / (1 << 20)
    );
}
