//! E6 — **Theorems 3–4**: the (1+ε, β) lower bound, measured.
//!
//! On G(τ, λ, κ) with the Theorem 4 parameters (c = 2/ζ), any τ-round
//! algorithm keeping n^{1+δ} edges drops each critical edge with
//! probability ≥ 1 − 1/c − 1/(cκ); the *generous* extremal strategy
//! realizes exactly that, and each dropped spine edge costs +2. The
//! experiment sweeps τ and prints the measured E\[β\] on the spine pair next
//! to the predicted 2(1−ζ/2)κ − O(1) and the Theorem 4 bound
//! ζ²n^{1−δ}/(4(τ+6)²) − O(1).

use spanner_bench::{f2, scaled, Table};
use spanner_lowerbound::adversary::{
    measure_average_distortion, measure_spine_distortion, predicted_spine_additive, select,
    theorem4_beta_bound, Strategy,
};
use spanner_lowerbound::{Gadget, GadgetParams};

fn main() {
    let n_target = scaled(60_000, 8_000);
    let delta = 0.1;
    let zeta = 0.5; // the theorem's epsilon'
    let c = 2.0 / zeta;
    let keep = 1.0 / c;
    let trials = scaled(12u64, 4u64);
    println!(
        "E6 (Theorems 3-4): measured E[beta] on G(tau,lambda,kappa), target n = {n_target}, delta = {delta}, zeta = {zeta}\n"
    );

    let mut table = Table::new([
        "tau",
        "actual n",
        "kappa",
        "lambda",
        "host dist",
        "measured E[beta]",
        "predicted 2p(kappa-1)",
        "Thm 4 bound",
        "avg-pair E[beta]",
    ]);
    for tau in [2u32, 4, 8, 16, 32] {
        let params = GadgetParams::for_theorem3(n_target, delta, c, tau);
        let g = Gadget::build(params);
        let mut total = 0u64;
        for seed in 0..trials {
            let sel = select(
                &g,
                Strategy::GenerousCritical {
                    keep_fraction: keep,
                },
                seed,
            );
            total += measure_spine_distortion(&g, &sel).additive;
        }
        let measured = total as f64 / trials as f64;
        let sel0 = select(
            &g,
            Strategy::GenerousCritical {
                keep_fraction: keep,
            },
            0,
        );
        let avg = measure_average_distortion(&g, &sel0, scaled(60, 20), 3);
        table.row([
            tau.to_string(),
            g.graph.node_count().to_string(),
            params.kappa.to_string(),
            params.lambda.to_string(),
            g.spine_distance().to_string(),
            f2(measured),
            f2(predicted_spine_additive(&g, keep)),
            f2(theorem4_beta_bound(g.graph.node_count(), delta, zeta, tau)),
            f2(avg),
        ]);
    }
    table.print();
    println!(
        "\nShape check: E[beta] decays like 1/(tau+6)^2 exactly as Theorem 4\n\
         predicts — fast algorithms are forced into large additive distortion;\n\
         the average-pair distortion shows the bound holds on average too."
    );
}
