//! E3 — **Lemma 5 / Theorem 2**: skeleton distortion and round count vs n.
//!
//! The certified distortion is O(ε⁻¹ 2^{log* n} log_D n) and the
//! construction takes that many rounds (with O(log^ε n)-word messages).
//! This experiment scales n and prints, per size: the measured max/mean
//! stretch (sampled pairs), the certified envelope from the schedule, the
//! simulator round count, the planned timetable, and the max message
//! length.

use spanner_bench::{f2, scaled, threads_arg, timed, workload, Table, TraceOutput};
use ultrasparse::seq::log_star;
use ultrasparse::skeleton::{distributed, SkeletonParams};

fn main() {
    let traces = TraceOutput::from_args();
    let sizes: &[usize] = if spanner_bench::quick_mode() {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 2_000, 5_000, 10_000, 20_000, 50_000]
    };
    let params = SkeletonParams::default();
    let pairs = scaled(2_000, 500);
    let threads = threads_arg();
    println!("E3 (Theorem 2): skeleton distortion/rounds vs n (D = 4, eps = 0.5)\n");

    let mut table = Table::new([
        "n",
        "m",
        "max stretch",
        "mean stretch",
        "certified",
        "rounds",
        "planned",
        "max words",
        "2^log* log n",
        "secs",
    ]);
    for &n in sizes {
        let g = workload(n, 6.0, 3);
        let mut tr = traces.open(&format!("n{n}"));
        let ((spanner, rounds, words), secs) = timed(|| {
            let s = distributed::build_distributed_traced(&g, &params, 9, tr.sink()).expect("run");
            let m = s.metrics.expect("distributed metrics");
            (s, m.rounds, m.max_message_words)
        });
        tr.finish();
        assert!(spanner.is_spanning(&g));
        let r = spanner.stretch_sampled_threads(&g, pairs, 5, threads);
        let sched = params.schedule(n);
        let envelope =
            2f64.powi(log_star(n as f64) as i32) * (n as f64).log2() / 4f64.log2() / params.eps;
        table.row([
            n.to_string(),
            g.edge_count().to_string(),
            f2(r.max_multiplicative),
            f2(r.mean_multiplicative),
            sched.distortion_bound.to_string(),
            rounds.to_string(),
            distributed::timetable_rounds(n, &params).to_string(),
            words.to_string(),
            f2(envelope),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nShape check: measured stretch stays far below the certified bound and\n\
         grows slowly (log-like) with n; rounds track the planned timetable."
    );
}
