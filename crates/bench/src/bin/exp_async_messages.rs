//! E-async — **Bitton et al., arXiv:1909.08369**: synchronizing over the
//! skeleton is a free lunch.
//!
//! The event-driven executor runs the unchanged protocols over links with
//! random per-hop latency, recovering round numbers with a synchronizer.
//! Awerbuch's α-synchronizer pays ~2·|E| control messages per round; the
//! skeleton synchronizer routes the same safety information over a built
//! spanner's BFS tree for 2·(n − 1). Bitton et al.'s claim, measured here:
//! **identical round complexity, identical protocol traffic, strictly
//! fewer total messages** — the spanner's sparsity converts directly into
//! message-complexity savings with no time penalty.
//!
//! Every column except `secs` is seeded and deterministic (the simulated
//! clock included), independent of thread count and repeat invocation:
//! the golden test pins the whole table and only normalizes `secs`.
//!
//! Writes machine-readable results to `BENCH_async.json` at the repo root
//! (CI uploads it as an artifact); `--json <path>` redirects it.

use spanner_bench::{f2, scale3, timed, workload, Table};
use spanner_graph::{generators, Graph};
use spanner_netsim::{
    patterns::FloodProtocol, AsyncNetwork, FaultPlan, MessageBudget, RunMetrics, Synchronizer,
};
use ultrasparse::skeleton::{build_sequential, SkeletonParams};

/// Per-link delay model: 30% of hops take up to 3 extra ticks.
const DELAY_P: f64 = 0.3;
const DELAY_MAX: u32 = 3;
const DELAY_SEED: u64 = 7;
const RUN_SEED: u64 = 42;

/// One measured scenario: flood a broadcast over `g` on the async
/// executor under the given synchronizer. Returns the run metrics.
fn flood_async(g: &Graph, synchronizer: Synchronizer) -> RunMetrics {
    let delays = FaultPlan::new(DELAY_SEED).with_delays(DELAY_P, DELAY_MAX);
    let radius = g.node_count() as u32;
    let mut net = AsyncNetwork::new(g, MessageBudget::CONGEST, RUN_SEED)
        .with_delays(delays)
        .with_synchronizer(synchronizer);
    let states = net
        .run(|v, _| FloodProtocol::new(v.0 == 0, radius), radius + 8)
        .expect("flood terminates");
    assert!(
        states.iter().all(FloodProtocol::reached),
        "broadcast must reach every node"
    );
    net.metrics()
}

struct Row {
    graph: &'static str,
    n: usize,
    m: usize,
    skel_edges: usize,
    alpha: RunMetrics,
    skel: RunMetrics,
}

fn main() {
    let json_path = json_path_arg();
    println!(
        "E-async (Bitton et al. 1909.08369): message cost of recovering round\n\
         semantics on an asynchronous network — α-synchronizer over the raw\n\
         graph vs convergecast/pulse over the skeleton's BFS tree. A broadcast\n\
         floods from node 0 under per-link delays (p = {DELAY_P}, ≤ {DELAY_MAX} extra\n\
         ticks per hop, seed {DELAY_SEED}).\n"
    );

    let n_cave = scale3((40, 30, 260), (12, 12, 60), (4, 8, 20));
    let n_gnm = scale3(2_000, 400, 48);
    let workloads: Vec<(&'static str, Graph)> = vec![
        (
            "caveman",
            generators::caveman(n_cave.0, n_cave.1, n_cave.2, 3),
        ),
        ("gnm", workload(n_gnm, 2.5, 3)),
    ];

    let mut table = Table::new([
        "graph",
        "n",
        "m",
        "skel m",
        "sync",
        "rounds",
        "proto msgs",
        "sync msgs",
        "total",
        "vs alpha",
        "sim time",
        "secs",
    ]);
    let mut rows: Vec<Row> = Vec::new();

    for (name, g) in &workloads {
        // The free lunch's one-time cost: build the skeleton (here with the
        // sequential reference; the distributed build is measured in E2).
        let params = SkeletonParams::new(4.0, 0.5).expect("valid params");
        let skeleton = build_sequential(g, &params, 9);
        assert!(skeleton.is_spanning(g), "skeleton must span");
        let sync_skel = Synchronizer::skeleton_of(g, skeleton.edges.iter());

        let (alpha, alpha_secs) = timed(|| flood_async(g, Synchronizer::Alpha));
        let (skel, skel_secs) = timed(|| flood_async(g, sync_skel.clone()));

        // The headline claim, asserted: the synchronizer never changes the
        // protocol-level execution (same rounds, same messages, same words),
        // and both runs repeat byte-identically.
        assert_eq!(alpha.protocol_only(), skel.protocol_only());
        assert_eq!(skel, flood_async(g, sync_skel), "repeat run must match");
        assert!(
            skel.sync_messages < alpha.sync_messages,
            "skeleton synchronizer must send fewer control messages"
        );

        for (sync, m, secs) in [("alpha", alpha, alpha_secs), ("skeleton", skel, skel_secs)] {
            let total = m.messages + m.sync_messages;
            let vs_alpha = (alpha.messages + alpha.sync_messages) as f64 / total as f64;
            table.row([
                name.to_string(),
                g.node_count().to_string(),
                g.edge_count().to_string(),
                skeleton.edges.len().to_string(),
                sync.to_string(),
                m.rounds.to_string(),
                m.messages.to_string(),
                m.sync_messages.to_string(),
                total.to_string(),
                format!("{}x", f2(vs_alpha)),
                m.sim_time.to_string(),
                f2(secs),
            ]);
        }
        rows.push(Row {
            graph: name,
            n: g.node_count(),
            m: g.edge_count(),
            skel_edges: skeleton.edges.len(),
            alpha,
            skel,
        });
    }

    table.print();
    println!(
        "\nShape check: both synchronizers recover the same round count and\n\
         protocol traffic; the skeleton run's total message count drops by the\n\
         `vs alpha` factor — the spanner's sparsity, converted into message\n\
         savings (at a modest simulated-time cost from tree latency)."
    );

    write_json(&json_path, &rows);
    println!("wrote {json_path}");
}

/// `--json <path>` / `--json=<path>`, defaulting to the repo-root artifact.
fn json_path_arg() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().expect("--json needs a path");
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return p.to_string();
        }
    }
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_async.json").to_string()
}

fn write_json(path: &str, rows: &[Row]) {
    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            runs.push_str(",\n");
        }
        runs.push_str(&format!(
            "    {{\"graph\": \"{}\", \"n\": {}, \"m\": {}, \"skeleton_edges\": {},\n     \
             \"alpha\": {}, \"skeleton\": {}}}",
            r.graph,
            r.n,
            r.m,
            r.skel_edges,
            metrics_json(&r.alpha),
            metrics_json(&r.skel),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"exp_async_messages\",\n  \"delay_p\": {DELAY_P},\n  \
         \"delay_max\": {DELAY_MAX},\n  \"delay_seed\": {DELAY_SEED},\n  \
         \"seed\": {RUN_SEED},\n  \"runs\": [\n{runs}\n  ]\n}}\n"
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn metrics_json(m: &RunMetrics) -> String {
    format!(
        "{{\"rounds\": {}, \"messages\": {}, \"sync_messages\": {}, \
         \"events\": {}, \"sim_time\": {}}}",
        m.rounds, m.messages, m.sync_messages, m.events, m.sim_time
    )
}
