//! E7 — **Theorem 5**: the time lower bound for additive β-spanners.
//!
//! Theorem 5: computing an additive β-spanner with size n^{1+δ} requires
//! Ω(√(n^{1−δ}/β)) rounds. The experiment fixes β targets, builds
//! G(τ, λ, κ) with the theorem's parameters (κ = 2β), and shows that at
//! the critical τ* = √(n^{1−δ}/(4β)) − 6 the forced distortion still
//! exceeds β — i.e. the additive guarantee is unachievable in τ* rounds —
//! while the centralized additive-2 construction (Aingworth et al.) exists
//! happily, illustrating the distributed/centralized gap the paper proves.

use spanner_bench::{f2, scaled, Table};
use spanner_lowerbound::adversary::{measure_spine_distortion, select, Strategy};
use spanner_lowerbound::{Gadget, GadgetParams};

fn main() {
    let n_target = scaled(60_000, 10_000);
    let delta = 0.05;
    let trials = scaled(12u64, 4u64);
    println!(
        "E7 (Theorem 5): additive-beta spanners need ~sqrt(n^(1-delta)/beta) rounds; target n = {n_target}, delta = {delta}\n"
    );

    let mut table = Table::new([
        "beta target",
        "critical tau*",
        "actual n",
        "kappa (=2 beta)",
        "measured E[distortion] at tau*",
        "exceeds beta?",
    ]);
    for beta in [4u32, 8, 16, 32] {
        let params = GadgetParams::for_theorem5(n_target, delta, beta);
        let g = Gadget::build(params);
        // Budget n^{1+delta} forces keeping at most a 1/2 fraction of the
        // block edges (c = 2 in the theorem): generous strategy at 1/2.
        let mut total = 0u64;
        for seed in 0..trials {
            let sel = select(&g, Strategy::GenerousCritical { keep_fraction: 0.5 }, seed);
            total += measure_spine_distortion(&g, &sel).additive;
        }
        let measured = total as f64 / trials as f64;
        table.row([
            beta.to_string(),
            params.tau.to_string(),
            g.graph.node_count().to_string(),
            params.kappa.to_string(),
            f2(measured),
            if measured > beta as f64 { "YES" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nShape check: at the critical round budget the measured expected additive\n\
         distortion exceeds every beta target (= kappa − O(1) > beta), exactly the\n\
         contradiction Theorem 5 derives. Any distributed additive 2-spanner\n\
         algorithm would need Omega(n^(1/4)) rounds (paper, Sect. 3)."
    );
}
