//! E11 — the paper's §1.2 analytic comparison: the additive term β of the
//! sparsest Fibonacci spanner vs Elkin–Zhang's \[24\] sparsest
//! (1+ε, β)-spanner.
//!
//! The paper: *"our β is (ε⁻¹(log_φ log n + t))^{log_φ log n + t}, which
//! compares favorably with the β of Elkin and Zhang's sparsest spanner,
//! namely β = (ε⁻¹ t² log n log log n)^{t log log n}"*. Both are super-
//! polylogarithmic, so we tabulate log₂ β for a range of n, ε, t.

use spanner_bench::{f2, Table};
use ultrasparse::fibonacci::params::PHI;

/// log2 of the Fibonacci β = (ε⁻¹(log_φ log n + t))^{log_φ log n + t}.
fn log2_beta_fib(n: f64, eps: f64, t: f64) -> f64 {
    let e = n.log2().ln() / PHI.ln() + t;
    e * (e / eps).log2()
}

/// log2 of the Elkin–Zhang β = (ε⁻¹ t² log n log log n)^{t log log n}.
fn log2_beta_ez(n: f64, eps: f64, t: f64) -> f64 {
    let loglog = n.log2().log2();
    (t * loglog) * ((t * t * n.log2() * loglog) / eps).log2()
}

fn main() {
    println!(
        "E11 (Sect. 1.2): additive term beta of the sparsest spanners — this paper vs Elkin-Zhang [24]\n"
    );
    let mut table = Table::new([
        "n",
        "eps",
        "t",
        "log2 beta (Fibonacci)",
        "log2 beta (Elkin-Zhang)",
        "EZ / Fib (log ratio)",
    ]);
    for &exp in &[16u32, 20, 30, 40, 64] {
        let n = 2f64.powi(exp as i32);
        for &(eps, t) in &[(0.5, 2.0), (0.5, 4.0), (0.1, 4.0)] {
            let fib = log2_beta_fib(n, eps, t);
            let ez = log2_beta_ez(n, eps, t);
            table.row([
                format!("2^{exp}"),
                f2(eps),
                f2(t),
                f2(fib),
                f2(ez),
                f2(ez / fib),
            ]);
        }
    }
    table.print();
    println!(
        "\nShape check: the Fibonacci beta is smaller at every n (the ratio of\n\
         log-betas exceeds 1 and grows with n), reproducing the paper's claim\n\
         that its (1+eps, beta) regime strictly improves on [24]."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_beta_always_smaller() {
        for exp in [16, 24, 32, 48, 64] {
            let n = 2f64.powi(exp);
            for &(eps, t) in &[(0.5, 2.0), (0.25, 3.0), (0.1, 6.0)] {
                assert!(
                    log2_beta_fib(n, eps, t) < log2_beta_ez(n, eps, t),
                    "n=2^{exp} eps={eps} t={t}"
                );
            }
        }
    }
}
