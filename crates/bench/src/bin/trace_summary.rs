//! Summarizes JSON-lines round traces produced with `--trace-out`.
//!
//! Every experiment binary that simulates a distributed protocol accepts
//! `--trace-out <path>.jsonl` and writes one event stream per traced run
//! (see EXPERIMENTS.md for the schema). This tool folds those streams back
//! into per-phase cost tables: rounds, messages, and words per protocol
//! phase, plus the message-size histogram in power-of-two word buckets.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p spanner-bench --bin trace_summary -- results/runs.skeleton.jsonl
//! cargo run --release -p spanner-bench --bin trace_summary            # all results/*.jsonl
//! ```
//!
//! Exits non-zero if a file cannot be read or contains no valid events.

use std::path::PathBuf;
use std::process::ExitCode;

use spanner_netsim::{TraceEvent, TraceSummary};

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if files.is_empty() {
        files = match std::fs::read_dir("results") {
            Ok(dir) => {
                let mut v: Vec<PathBuf> = dir
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
                    .collect();
                v.sort();
                v
            }
            Err(e) => {
                eprintln!("trace_summary: no files given and cannot read results/: {e}");
                return ExitCode::FAILURE;
            }
        };
        if files.is_empty() {
            eprintln!(
                "trace_summary: no *.jsonl files in results/; run an experiment with \
                 --trace-out first (see EXPERIMENTS.md)"
            );
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_summary: {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        let mut summary = TraceSummary::new();
        let mut parsed = 0usize;
        let mut bad = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match TraceEvent::from_json_line(line) {
                Some(ev) => {
                    summary.observe(&ev);
                    parsed += 1;
                }
                None => bad += 1,
            }
        }
        if bad > 0 {
            eprintln!("trace_summary: {}: {bad} malformed line(s)", path.display());
        }
        if parsed == 0 {
            eprintln!("trace_summary: {}: no trace events", path.display());
            failed = true;
            continue;
        }
        println!("== {} ({parsed} events) ==", path.display());
        if !summary.is_complete() {
            println!("(truncated stream: no run_end record)");
        }
        print!("{}", summary.render());
        println!();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
