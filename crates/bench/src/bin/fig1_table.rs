//! E1 — regenerates **Fig. 1** (the state-of-the-art comparison table),
//! empirically: every algorithm runs on the same workload and reports its
//! measured size, distortion, rounds and maximum message length, next to
//! its analytic guarantee.
//!
//! Rows:
//! * BFS forest (the connectivity-only anchor),
//! * Baswana–Sen (2k−1)-spanner at k = 2 and k = ⌈log n⌉ \[10\],
//! * greedy girth spanner at k = ⌈log n⌉ — centralized stand-in for the
//!   Dubhashi et al. \[18\] row (see DESIGN.md §4),
//! * Aingworth et al. additive 2-spanner \[3\] (centralized; Theorem 5
//!   proves no fast distributed version exists),
//! * **this paper**: the linear-size skeleton (Theorem 2) and the
//!   Fibonacci spanner (Theorem 8), both distributed.

// `FaultError` carries full `RunMetrics` by design; the faulted builders
// are called through `timed` closures that inherit its size.
#![allow(clippy::result_large_err)]

use spanner_baselines::{additive2, baswana_sen, bfs_skeleton, greedy};
use spanner_bench::{
    f2, fault_plan_arg, huge_mode, peak_rss_bytes, scale3, threads_arg, timed, workload,
    workload_csr, Table, TraceOutput,
};
use spanner_graph::traversal::bfs_distances_csr;
use spanner_graph::{CsrAdjacency, NodeId};
use ultrasparse::fibonacci::{self, FibonacciParams};
use ultrasparse::skeleton::{self, SkeletonParams};

fn main() {
    if huge_mode() {
        return run_huge();
    }
    let n = scale3(20_000, 2_000, 300);
    let density = 8.0;
    let seed = 42;
    let g = workload(n, density, seed);
    let pairs = scale3(4_000, 500, 120);
    let threads = threads_arg();
    let traces = TraceOutput::from_args();
    let faults = fault_plan_arg();
    if let Some(plan) = &faults {
        println!("fault injection active: {plan:?}\n");
    }
    println!(
        "Fig. 1 reproduction: workload connected G(n, m), n = {}, m = {}\n",
        g.node_count(),
        g.edge_count()
    );

    let mut table = Table::new([
        "algorithm",
        "guarantee",
        "messages",
        "|S|/n",
        "max stretch",
        "avg stretch",
        "max add",
        "rounds",
        "max words",
        "secs",
    ]);

    let add_row = |name: &str,
                   guarantee: &str,
                   msgs: &str,
                   s: &ultrasparse::Spanner,
                   secs: f64,
                   table: &mut Table| {
        let r = s.stretch_sampled_threads(&g, pairs, 7, threads);
        assert!(s.is_spanning(&g), "{name} must span");
        let (rounds, words) = match &s.metrics {
            Some(m) => (m.rounds.to_string(), m.max_message_words.to_string()),
            None => ("(centralized)".into(), "-".into()),
        };
        table.row([
            name.to_string(),
            guarantee.to_string(),
            msgs.to_string(),
            f2(s.edges_per_node(&g)),
            f2(r.max_multiplicative),
            f2(r.mean_multiplicative),
            r.max_additive.to_string(),
            rounds,
            words,
            f2(secs),
        ]);
    };

    let klog = (n as f64).log2().ceil() as u32;

    let mut tr = traces.open("bfs");
    let (s, secs) = timed(|| {
        bfs_skeleton::build_distributed_traced(&g, seed, 10 * n as u32, tr.sink()).unwrap()
    });
    tr.finish();
    add_row(
        "BFS forest",
        "connectivity only",
        "2 words",
        &s,
        secs,
        &mut table,
    );

    // Prints the run's fault counters, or the typed error of a run that the
    // schedule killed; `None` means no row for this algorithm.
    let faulted_outcome = |name: &str,
                           outcome: Result<ultrasparse::Spanner, ultrasparse::FaultError>|
     -> Option<ultrasparse::Spanner> {
        match outcome {
            Ok(s) => {
                if let Some(m) = &s.metrics {
                    println!("  {name} faults: {}", m.faults);
                }
                Some(s)
            }
            Err(e) => {
                println!("  {name}: no certified spanner under this schedule: {e}");
                None
            }
        }
    };

    let bs2 = baswana_sen::BaswanaSenParams::new(2).unwrap();
    if let Some(plan) = &faults {
        let (outcome, secs) =
            timed(|| baswana_sen::build_distributed_faulted(&g, &bs2, seed, plan));
        if let Some(s) = faulted_outcome("Baswana-Sen k=2", outcome) {
            add_row(
                "Baswana-Sen k=2 [10]",
                "3-spanner, O(n^1.5)",
                "2 words",
                &s,
                secs,
                &mut table,
            );
        }
    } else {
        let mut tr = traces.open("bs-k2");
        let (s, secs) =
            timed(|| baswana_sen::build_distributed_traced(&g, &bs2, seed, tr.sink()).unwrap());
        tr.finish();
        add_row(
            "Baswana-Sen k=2 [10]",
            "3-spanner, O(n^1.5)",
            "2 words",
            &s,
            secs,
            &mut table,
        );
    }

    let bsl = baswana_sen::BaswanaSenParams::new(klog).unwrap();
    let mut tr = traces.open("bs-klog");
    let (s, secs) =
        timed(|| baswana_sen::build_distributed_traced(&g, &bsl, seed, tr.sink()).unwrap());
    tr.finish();
    add_row(
        "Baswana-Sen k=log n [10]",
        "O(log n)-spanner, O(n log n)",
        "2 words",
        &s,
        secs,
        &mut table,
    );

    let (s, secs) = timed(|| greedy::linear_size_skeleton(&g));
    add_row(
        "greedy k=log n [4]/[18]",
        "O(log n)-spanner, O(n)",
        "unbounded*",
        &s,
        secs,
        &mut table,
    );

    let (s, secs) = timed(|| additive2::build(&g, seed));
    add_row(
        "Aingworth et al. [3]",
        "additive 2, O(n^1.5 sqrt(log n))",
        "(no fast distr., Thm 5)",
        &s,
        secs,
        &mut table,
    );

    let sk = SkeletonParams::default();
    let sk_label = "THIS PAPER: skeleton (Thm 2)";
    let sk_guarantee = "O(2^log* n log n)-spanner, Dn/e+O(n log D)";
    if let Some(plan) = &faults {
        let (outcome, secs) =
            timed(|| skeleton::distributed::build_distributed_faulted(&g, &sk, seed, plan));
        if let Some(s) = faulted_outcome("skeleton", outcome) {
            add_row(
                sk_label,
                sk_guarantee,
                "O(log^eps n) words",
                &s,
                secs,
                &mut table,
            );
        }
    } else {
        let mut tr = traces.open("skeleton");
        let (s, secs) = timed(|| {
            skeleton::distributed::build_distributed_traced(&g, &sk, seed, tr.sink()).unwrap()
        });
        tr.finish();
        add_row(
            sk_label,
            sk_guarantee,
            "O(log^eps n) words",
            &s,
            secs,
            &mut table,
        );
    }

    let order = FibonacciParams::max_order(n).min(3);
    let fp = FibonacciParams::new(n, order, 0.5, 4).unwrap();
    let fib_label = "THIS PAPER: Fibonacci (Thm 8)";
    let fib_guarantee = "staged (alpha,beta), ~n(eps^-1 loglog n)^phi";
    if let Some(plan) = &faults {
        let (outcome, secs) =
            timed(|| fibonacci::distributed::build_distributed_faulted(&g, &fp, seed, plan));
        if let Some(s) = faulted_outcome("Fibonacci", outcome) {
            add_row(
                fib_label,
                fib_guarantee,
                "O(n^{1/t}) words, t=4",
                &s,
                secs,
                &mut table,
            );
        }
    } else {
        let mut tr = traces.open("fibonacci");
        let (s, secs) = timed(|| {
            fibonacci::distributed::build_distributed_traced(&g, &fp, seed, tr.sink()).unwrap()
        });
        tr.finish();
        add_row(
            fib_label,
            fib_guarantee,
            "O(n^{1/t}) words, t=4",
            &s,
            secs,
            &mut table,
        );
    }

    table.print();
    println!(
        "\n* the greedy/[18] row stands in for Dubhashi et al. (unbounded-message\n  \
         class); see DESIGN.md section 4. Stretch columns are measured over {pairs} sampled pairs."
    );
}

/// Max multiplicative stretch of the subgraph `sub` of `full`, sampled
/// from a few fixed BFS sources (exact per source, over every reachable
/// target). The huge tier's substitute for the exact pairwise columns.
fn sampled_stretch_csr(full: &CsrAdjacency, sub: &CsrAdjacency, sources: &[NodeId]) -> f64 {
    let mut worst = 1.0f64;
    for &s in sources {
        let dg = bfs_distances_csr(full, s);
        let ds = bfs_distances_csr(sub, s);
        for (v, d) in dg.iter().enumerate() {
            let Some(d) = d.filter(|&d| d > 0) else {
                continue;
            };
            let d_sub = ds[v].expect("spanning subgraph reaches every node");
            worst = worst.max(d_sub as f64 / d as f64);
        }
    }
    worst
}

/// The `--scale huge` tier: the distributed rows only, at n = 2²⁰, built
/// through the CSR-native drivers with no `Graph` materialization. The
/// centralized baselines (greedy, Aingworth) are omitted — their O(m·n)
/// cost is exactly what this tier is designed to avoid — and the exact
/// stretch columns are replaced by a BFS-sampled bound; spanning is still
/// certified exactly (connectivity of the selected subgraph).
fn run_huge() {
    let n = 1usize << 20;
    let density = 8.0;
    let seed = 42;
    let threads = threads_arg();
    let (csr, gen_secs) = timed(|| std::sync::Arc::new(workload_csr(n, density, seed)));
    println!(
        "Fig. 1 reproduction, huge tier: CSR-native G(n, m), n = {n}, m = {} \
         (generated in {gen_secs:.1}s, {threads} thread(s))\n",
        csr.edge_count()
    );
    let stretch_sources = [NodeId(0), NodeId((n / 2) as u32), NodeId((n - 1) as u32)];

    let mut table = Table::new([
        "algorithm",
        "|S|/n",
        "max stretch*",
        "rounds",
        "messages",
        "max words",
        "secs",
    ]);
    let add_row = |name: &str, s: &ultrasparse::Spanner, secs: f64, table: &mut Table| {
        let sub = csr.subgraph(&s.edges);
        assert!(sub.is_connected(), "{name} must span");
        let stretch = sampled_stretch_csr(&csr, &sub, &stretch_sources);
        let m = s.metrics.as_ref().expect("distributed run has metrics");
        table.row([
            name.to_string(),
            f2(s.len() as f64 / n as f64),
            f2(stretch),
            m.rounds.to_string(),
            m.messages.to_string(),
            m.max_message_words.to_string(),
            f2(secs),
        ]);
    };

    let (s, secs) = timed(|| bfs_skeleton::build_distributed_csr(&csr, seed, 4096).unwrap());
    add_row("BFS forest", &s, secs, &mut table);
    drop(s);

    let bs2 = baswana_sen::BaswanaSenParams::new(2).unwrap();
    let (s, secs) = timed(|| baswana_sen::build_distributed_csr(&csr, &bs2, seed).unwrap());
    add_row("Baswana-Sen k=2 [10]", &s, secs, &mut table);
    drop(s);

    let sk = SkeletonParams::default();
    let (s, secs) = timed(|| {
        if threads > 1 {
            skeleton::distributed::build_distributed_csr_parallel(&csr, &sk, seed, threads)
        } else {
            skeleton::distributed::build_distributed_csr(&csr, &sk, seed)
        }
        .unwrap()
    });
    add_row("THIS PAPER: skeleton (Thm 2)", &s, secs, &mut table);
    drop(s);

    let order = FibonacciParams::max_order(n).min(3);
    let fp = FibonacciParams::new(n, order, 0.5, 4).unwrap();
    let (s, secs) = timed(|| {
        if threads > 1 {
            fibonacci::distributed::build_distributed_csr_parallel(&csr, &fp, seed, threads)
        } else {
            fibonacci::distributed::build_distributed_csr(&csr, &fp, seed)
        }
        .unwrap()
    });
    add_row("THIS PAPER: Fibonacci (Thm 8)", &s, secs, &mut table);
    drop(s);

    table.print();
    println!(
        "\n* max stretch sampled from {} BFS sources (exact over every reachable\n  \
         target); spanning certified exactly. Peak RSS: {} MiB.",
        stretch_sources.len(),
        peak_rss_bytes() / (1 << 20)
    );
}
