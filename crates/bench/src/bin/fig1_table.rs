//! E1 — regenerates **Fig. 1** (the state-of-the-art comparison table),
//! empirically: every algorithm runs on the same workload and reports its
//! measured size, distortion, rounds and maximum message length, next to
//! its analytic guarantee.
//!
//! Rows:
//! * BFS forest (the connectivity-only anchor),
//! * Baswana–Sen (2k−1)-spanner at k = 2 and k = ⌈log n⌉ \[10\],
//! * greedy girth spanner at k = ⌈log n⌉ — centralized stand-in for the
//!   Dubhashi et al. \[18\] row (see DESIGN.md §4),
//! * Aingworth et al. additive 2-spanner \[3\] (centralized; Theorem 5
//!   proves no fast distributed version exists),
//! * **this paper**: the linear-size skeleton (Theorem 2) and the
//!   Fibonacci spanner (Theorem 8), both distributed.

// `FaultError` carries full `RunMetrics` by design; the faulted builders
// are called through `timed` closures that inherit its size.
#![allow(clippy::result_large_err)]

use spanner_baselines::{additive2, baswana_sen, bfs_skeleton, greedy};
use spanner_bench::{f2, fault_plan_arg, scale3, threads_arg, timed, workload, Table, TraceOutput};
use ultrasparse::fibonacci::{self, FibonacciParams};
use ultrasparse::skeleton::{self, SkeletonParams};

fn main() {
    let n = scale3(20_000, 2_000, 300);
    let density = 8.0;
    let seed = 42;
    let g = workload(n, density, seed);
    let pairs = scale3(4_000, 500, 120);
    let threads = threads_arg();
    let traces = TraceOutput::from_args();
    let faults = fault_plan_arg();
    if let Some(plan) = &faults {
        println!("fault injection active: {plan:?}\n");
    }
    println!(
        "Fig. 1 reproduction: workload connected G(n, m), n = {}, m = {}\n",
        g.node_count(),
        g.edge_count()
    );

    let mut table = Table::new([
        "algorithm",
        "guarantee",
        "messages",
        "|S|/n",
        "max stretch",
        "avg stretch",
        "max add",
        "rounds",
        "max words",
        "secs",
    ]);

    let add_row = |name: &str,
                   guarantee: &str,
                   msgs: &str,
                   s: &ultrasparse::Spanner,
                   secs: f64,
                   table: &mut Table| {
        let r = s.stretch_sampled_threads(&g, pairs, 7, threads);
        assert!(s.is_spanning(&g), "{name} must span");
        let (rounds, words) = match &s.metrics {
            Some(m) => (m.rounds.to_string(), m.max_message_words.to_string()),
            None => ("(centralized)".into(), "-".into()),
        };
        table.row([
            name.to_string(),
            guarantee.to_string(),
            msgs.to_string(),
            f2(s.edges_per_node(&g)),
            f2(r.max_multiplicative),
            f2(r.mean_multiplicative),
            r.max_additive.to_string(),
            rounds,
            words,
            f2(secs),
        ]);
    };

    let klog = (n as f64).log2().ceil() as u32;

    let mut tr = traces.open("bfs");
    let (s, secs) = timed(|| {
        bfs_skeleton::build_distributed_traced(&g, seed, 10 * n as u32, tr.sink()).unwrap()
    });
    tr.finish();
    add_row(
        "BFS forest",
        "connectivity only",
        "2 words",
        &s,
        secs,
        &mut table,
    );

    // Prints the run's fault counters, or the typed error of a run that the
    // schedule killed; `None` means no row for this algorithm.
    let faulted_outcome = |name: &str,
                           outcome: Result<ultrasparse::Spanner, ultrasparse::FaultError>|
     -> Option<ultrasparse::Spanner> {
        match outcome {
            Ok(s) => {
                if let Some(m) = &s.metrics {
                    println!("  {name} faults: {}", m.faults);
                }
                Some(s)
            }
            Err(e) => {
                println!("  {name}: no certified spanner under this schedule: {e}");
                None
            }
        }
    };

    let bs2 = baswana_sen::BaswanaSenParams::new(2).unwrap();
    if let Some(plan) = &faults {
        let (outcome, secs) =
            timed(|| baswana_sen::build_distributed_faulted(&g, &bs2, seed, plan));
        if let Some(s) = faulted_outcome("Baswana-Sen k=2", outcome) {
            add_row(
                "Baswana-Sen k=2 [10]",
                "3-spanner, O(n^1.5)",
                "2 words",
                &s,
                secs,
                &mut table,
            );
        }
    } else {
        let mut tr = traces.open("bs-k2");
        let (s, secs) =
            timed(|| baswana_sen::build_distributed_traced(&g, &bs2, seed, tr.sink()).unwrap());
        tr.finish();
        add_row(
            "Baswana-Sen k=2 [10]",
            "3-spanner, O(n^1.5)",
            "2 words",
            &s,
            secs,
            &mut table,
        );
    }

    let bsl = baswana_sen::BaswanaSenParams::new(klog).unwrap();
    let mut tr = traces.open("bs-klog");
    let (s, secs) =
        timed(|| baswana_sen::build_distributed_traced(&g, &bsl, seed, tr.sink()).unwrap());
    tr.finish();
    add_row(
        "Baswana-Sen k=log n [10]",
        "O(log n)-spanner, O(n log n)",
        "2 words",
        &s,
        secs,
        &mut table,
    );

    let (s, secs) = timed(|| greedy::linear_size_skeleton(&g));
    add_row(
        "greedy k=log n [4]/[18]",
        "O(log n)-spanner, O(n)",
        "unbounded*",
        &s,
        secs,
        &mut table,
    );

    let (s, secs) = timed(|| additive2::build(&g, seed));
    add_row(
        "Aingworth et al. [3]",
        "additive 2, O(n^1.5 sqrt(log n))",
        "(no fast distr., Thm 5)",
        &s,
        secs,
        &mut table,
    );

    let sk = SkeletonParams::default();
    let sk_label = "THIS PAPER: skeleton (Thm 2)";
    let sk_guarantee = "O(2^log* n log n)-spanner, Dn/e+O(n log D)";
    if let Some(plan) = &faults {
        let (outcome, secs) =
            timed(|| skeleton::distributed::build_distributed_faulted(&g, &sk, seed, plan));
        if let Some(s) = faulted_outcome("skeleton", outcome) {
            add_row(
                sk_label,
                sk_guarantee,
                "O(log^eps n) words",
                &s,
                secs,
                &mut table,
            );
        }
    } else {
        let mut tr = traces.open("skeleton");
        let (s, secs) = timed(|| {
            skeleton::distributed::build_distributed_traced(&g, &sk, seed, tr.sink()).unwrap()
        });
        tr.finish();
        add_row(
            sk_label,
            sk_guarantee,
            "O(log^eps n) words",
            &s,
            secs,
            &mut table,
        );
    }

    let order = FibonacciParams::max_order(n).min(3);
    let fp = FibonacciParams::new(n, order, 0.5, 4).unwrap();
    let fib_label = "THIS PAPER: Fibonacci (Thm 8)";
    let fib_guarantee = "staged (alpha,beta), ~n(eps^-1 loglog n)^phi";
    if let Some(plan) = &faults {
        let (outcome, secs) =
            timed(|| fibonacci::distributed::build_distributed_faulted(&g, &fp, seed, plan));
        if let Some(s) = faulted_outcome("Fibonacci", outcome) {
            add_row(
                fib_label,
                fib_guarantee,
                "O(n^{1/t}) words, t=4",
                &s,
                secs,
                &mut table,
            );
        }
    } else {
        let mut tr = traces.open("fibonacci");
        let (s, secs) = timed(|| {
            fibonacci::distributed::build_distributed_traced(&g, &fp, seed, tr.sink()).unwrap()
        });
        tr.finish();
        add_row(
            fib_label,
            fib_guarantee,
            "O(n^{1/t}) words, t=4",
            &s,
            secs,
            &mut table,
        );
    }

    table.print();
    println!(
        "\n* the greedy/[18] row stands in for Dubhashi et al. (unbounded-message\n  \
         class); see DESIGN.md section 4. Stretch columns are measured over {pairs} sampled pairs."
    );
}
