//! E12 — **Theorem 6**: the time lower bound for *sublinear additive*
//! spanners (distortion d + c·d^{1−ε'}, the class of Pettie \[33\] and
//! Thorup–Zwick \[39\]).
//!
//! With the theorem's instantiation (τ+6 = n^{ε'(1−δ)/(1+ε')}/c), the
//! spine pair sits at distance d = κ(τ+2), the guaranteed distortion
//! budget is c·d^{1−ε'} < κ, yet a τ-round algorithm with an n^{1+δ} edge
//! budget is forced to 2·(3/4)κ − O(1) > κ expected additive distortion —
//! the contradiction that proves the Ω(n^{ε'(1−δ)/(1+ε')}) round bound.

use spanner_bench::{f2, scaled, Table};
use spanner_lowerbound::adversary::{measure_spine_distortion, select, Strategy};
use spanner_lowerbound::{Gadget, GadgetParams};

fn main() {
    let n_target = scaled(60_000, 10_000);
    let delta = 0.05;
    let trials = scaled(12u64, 4u64);
    println!(
        "E12 (Theorem 6): sublinear additive d + c*d^(1-eps') spanners; target n = {n_target}, delta = {delta}\n"
    );
    println!(
        "(The theorem is asymptotic; at simulation-scale n the contradiction\n\
         materializes once the distortion constant c is moderately large —\n\
         each row uses the smallest convenient c for its eps'.)\n"
    );

    let mut table = Table::new([
        "eps'",
        "c",
        "critical tau*",
        "kappa",
        "spine dist d",
        "allowed c*d^(1-eps')",
        "measured E[distortion]",
        "exceeds allowance?",
    ]);
    for (eps, c) in [(0.25f64, 1.0f64), (0.3, 1.0), (0.4, 1.5), (0.5, 2.5)] {
        let params = GadgetParams::for_theorem6(n_target, delta, eps, c);
        let g = Gadget::build(params);
        // The theorem's budget forces dropping >= 3/4 of the critical
        // edges (lambda = 4(tau+6)n^delta gives keep fraction 1/4).
        let keep = 0.25;
        let mut total = 0u64;
        for seed in 0..trials {
            let sel = select(
                &g,
                Strategy::GenerousCritical {
                    keep_fraction: keep,
                },
                seed,
            );
            total += measure_spine_distortion(&g, &sel).additive;
        }
        let measured = total as f64 / trials as f64;
        let d = g.spine_distance() as f64;
        let allowed = c * d.powf(1.0 - eps);
        table.row([
            f2(eps),
            f2(c),
            params.tau.to_string(),
            params.kappa.to_string(),
            f2(d),
            f2(allowed),
            f2(measured),
            if measured > allowed { "YES" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nShape check: at every eps' the forced distortion exceeds what a\n\
         d + c*d^(1-eps') spanner may incur on the spine pair — no distributed\n\
         algorithm matches the sequential sublinear-additive constructions\n\
         [33, 39] within the critical round budget."
    );
}
