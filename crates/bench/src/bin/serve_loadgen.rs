//! Load generator for the `spanner-serve` query layer (EXPERIMENTS.md
//! "Serving"): drives a deterministic mixed Zipf + uniform workload
//! through [`Server::run_queries`] in batches, and reports per-query
//! latency percentiles, sustained QPS and cache effectiveness into
//! `BENCH_serve.json` at the repo root.
//!
//! Defaults reproduce the acceptance workload: an ER graph with
//! n = 50 000, m = 200 000, and 120 000 mixed queries (80 % drawn from a
//! Zipf(θ = 0.99) hot set, 20 % uniform) in batches of 64 over 8 worker
//! threads with a 65 536-entry result cache.
//!
//! Flags (all optional):
//!
//! * `--quick` — seconds-scale CI smoke configuration (n = 2 000,
//!   8 000 queries, 4 threads);
//! * `--verify` — replay the identical query stream on fresh servers at
//!   1 thread and 8 threads and assert every response line *and* the
//!   final `STATS` line are identical (the determinism acceptance
//!   criterion);
//! * `--threads N`, `--queries N`, `--batch N`, `--cache N`,
//!   `--route-frac F` — override individual knobs.
//!
//! With `SERVE_LOADGEN_ASSERT=1` (the CI configuration) the run fails
//! unless it served every query without errors, the verify pass (if
//! requested) matched, and the cache hit rate reached at least 0.15 —
//! all deterministic properties of the seeded workload, not timing.

use std::time::Instant;

use spanner_bench::quick_mode;
use spanner_serve::workload::{generate, QueryPair, WorkloadSpec};
use spanner_serve::{GraphSpec, LoadRequest, QueryReq, ServeConfig, Server};

struct Config {
    n: usize,
    m: usize,
    queries: usize,
    batch: usize,
    threads: usize,
    cache: usize,
    zipf_frac: f64,
    zipf_theta: f64,
    route_frac: f64,
    seed: u64,
    verify: bool,
}

fn parse_config() -> Config {
    let mut cfg = if quick_mode() {
        Config {
            n: 2_000,
            m: 8_000,
            queries: 8_000,
            batch: 64,
            threads: 4,
            cache: 1 << 14,
            zipf_frac: 0.8,
            zipf_theta: 0.99,
            route_frac: 0.0,
            seed: 7,
            verify: false,
        }
    } else {
        Config {
            n: 50_000,
            m: 200_000,
            queries: 120_000,
            batch: 64,
            threads: 8,
            cache: 1 << 16,
            zipf_frac: 0.8,
            zipf_theta: 0.99,
            route_frac: 0.0,
            seed: 7,
            verify: false,
        }
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().expect("flag needs a value");
        match arg.as_str() {
            "--quick" => {}
            "--verify" => cfg.verify = true,
            "--n" => cfg.n = value().parse().expect("--n"),
            "--m" => cfg.m = value().parse().expect("--m"),
            "--queries" => cfg.queries = value().parse().expect("--queries"),
            "--batch" => cfg.batch = value().parse().expect("--batch"),
            "--threads" => cfg.threads = value().parse().expect("--threads"),
            "--cache" => cfg.cache = value().parse().expect("--cache"),
            "--zipf-frac" => cfg.zipf_frac = value().parse().expect("--zipf-frac"),
            "--zipf-theta" => cfg.zipf_theta = value().parse().expect("--zipf-theta"),
            "--route-frac" => cfg.route_frac = value().parse().expect("--route-frac"),
            "--seed" => cfg.seed = value().parse().expect("--seed"),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(cfg.batch >= 1, "--batch must be at least 1");
    cfg
}

fn build_server(cfg: &Config, threads: usize) -> Server {
    let mut server = Server::new(ServeConfig {
        threads,
        cache_capacity: cfg.cache,
    });
    server
        .load(&LoadRequest {
            spec: GraphSpec::Er {
                n: cfg.n as u32,
                m: cfg.m as u64,
                seed: cfg.seed,
            },
            k: 2,
            seed: cfg.seed,
            routing: cfg.route_frac > 0.0,
        })
        .expect("load acceptance graph");
    server
}

fn as_reqs(pairs: &[QueryPair]) -> Vec<QueryReq> {
    pairs
        .iter()
        .map(|p| {
            if p.route {
                QueryReq::Route(p.u, p.v)
            } else {
                QueryReq::Dist(p.u, p.v)
            }
        })
        .collect()
}

/// Runs the whole stream and returns (responses, per-query latency µs).
fn run_stream(server: &mut Server, reqs: &[QueryReq], batch: usize) -> (Vec<String>, Vec<f64>) {
    let mut responses = Vec::with_capacity(reqs.len());
    let mut lat_us = Vec::with_capacity(reqs.len());
    for chunk in reqs.chunks(batch) {
        let start = Instant::now();
        let resp = server.run_queries(chunk);
        let per_query = start.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
        lat_us.extend(std::iter::repeat_n(per_query, chunk.len()));
        responses.extend(resp);
    }
    (responses, lat_us)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = parse_config();
    println!(
        "serve_loadgen: n = {}, m = {}, {} queries (zipf_frac = {}, theta = {}, \
         route_frac = {}), batch = {}, threads = {}, cache = {}",
        cfg.n,
        cfg.m,
        cfg.queries,
        cfg.zipf_frac,
        cfg.zipf_theta,
        cfg.route_frac,
        cfg.batch,
        cfg.threads,
        cfg.cache
    );

    let spec = WorkloadSpec {
        nodes: cfg.n as u32,
        queries: cfg.queries,
        zipf_frac: cfg.zipf_frac,
        zipf_theta: cfg.zipf_theta,
        route_frac: cfg.route_frac,
        seed: cfg.seed,
    };
    let reqs = as_reqs(&generate(&spec));

    let (mut server, build_secs) = {
        let start = Instant::now();
        let s = build_server(&cfg, cfg.threads);
        (s, start.elapsed().as_secs_f64())
    };
    println!("built oracle (k = 2) in {build_secs:.2}s; serving…");

    let serve_start = Instant::now();
    let (responses, mut lat_us) = run_stream(&mut server, &reqs, cfg.batch);
    let serve_secs = serve_start.elapsed().as_secs_f64();
    let qps = cfg.queries as f64 / serve_secs;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let (p50, p99) = (percentile(&lat_us, 0.50), percentile(&lat_us, 0.99));

    let stats = *server.stats();
    let probes = stats.cache_hits + stats.cache_misses;
    let hit_rate = if probes == 0 {
        0.0
    } else {
        stats.cache_hits as f64 / probes as f64
    };
    println!(
        "served {} queries in {serve_secs:.2}s: {qps:.0} q/s, p50 = {p50:.1}µs, \
         p99 = {p99:.1}µs, cache hit rate = {hit_rate:.3} ({} hits / {} misses), errors = {}",
        stats.queries, stats.cache_hits, stats.cache_misses, stats.errors
    );

    // --verify: the determinism acceptance criterion. Fresh servers (cold
    // caches) at 1 and 8 threads must produce byte-identical response
    // streams and byte-identical final STATS lines.
    let verify = if cfg.verify {
        let mut all_equal = true;
        let mut stats_lines = Vec::new();
        for threads in [1usize, 8] {
            let mut s = build_server(&cfg, threads);
            let (resp, _) = run_stream(&mut s, &reqs, cfg.batch);
            all_equal &= resp == responses;
            stats_lines.push(s.stats_line());
        }
        all_equal &= stats_lines[0] == stats_lines[1];
        println!(
            "verify: threads 1 vs 8 {}",
            if all_equal { "identical" } else { "MISMATCH" }
        );
        Some(all_equal)
    } else {
        None
    };

    let json = format!(
        "{{\n  \"bench\": \"serve_loadgen\",\n  \"n\": {},\n  \"m\": {},\n  \"queries\": {},\n  \
         \"batch\": {},\n  \"threads\": {},\n  \"cache_capacity\": {},\n  \"zipf_frac\": {},\n  \
         \"zipf_theta\": {},\n  \"route_frac\": {},\n  \"seed\": {},\n  \
         \"oracle_build_secs\": {:.3},\n  \"serve_secs\": {:.3},\n  \"qps\": {:.0},\n  \
         \"p50_us\": {:.2},\n  \"p99_us\": {:.2},\n  \"cache_hit_rate\": {:.4},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_evictions\": {},\n  \
         \"errors\": {},\n  \"resp_words\": {},\n  \"verify_threads_1_vs_8\": {}\n}}\n",
        cfg.n,
        cfg.m,
        cfg.queries,
        cfg.batch,
        cfg.threads,
        cfg.cache,
        cfg.zipf_frac,
        cfg.zipf_theta,
        cfg.route_frac,
        cfg.seed,
        build_secs,
        serve_secs,
        qps,
        p50,
        p99,
        hit_rate,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.errors,
        stats.resp_words,
        match verify {
            Some(true) => "\"identical\"",
            Some(false) => "\"MISMATCH\"",
            None => "null",
        },
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    // CI gate: deterministic workload properties only — never timing.
    if std::env::var("SERVE_LOADGEN_ASSERT").as_deref() == Ok("1") {
        assert_eq!(stats.errors, 0, "workload produced protocol errors");
        assert_eq!(
            verify,
            Some(true).filter(|_| cfg.verify),
            "verify pass failed"
        );
        assert!(
            hit_rate >= 0.15,
            "cache hit rate {hit_rate:.3} below the 0.15 floor"
        );
        println!("assertion passed: no errors, hit rate >= 0.15, verify ok");
    }
}
