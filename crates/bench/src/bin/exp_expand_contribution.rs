//! E10 — **Lemma 6, Eqs. (3)–(4)**: the X^t_p edge-contribution analysis.
//!
//! X^t_p is the worst-case expected number of spanner edges one vertex
//! contributes over t `Expand` calls at sampling probability p. The
//! experiment tabulates the exact recurrence, the closed-form bound
//! p⁻¹(ln(t+1) − ζ) + t, and a Monte-Carlo simulation of the adversarial
//! q-sequence — the three should agree (recurrence ≤ bound, MC ≈
//! recurrence), validating the analysis the whole size theorem rests on.

use spanner_bench::{f2, f3, scaled, Table};
use ultrasparse::expand::{x_t_p, x_t_p_bound, x_t_p_monte_carlo, ZETA};

fn main() {
    let trials = scaled(200_000u32, 20_000u32);
    println!(
        "E10 (Lemma 6): X^t_p — exact recurrence vs closed form vs Monte Carlo ({trials} trials), zeta = {ZETA:.4}\n"
    );

    let mut table = Table::new([
        "p",
        "t",
        "exact X^t_p",
        "closed-form bound",
        "Monte Carlo",
        "MC/exact",
    ]);
    for &p in &[0.5, 0.25, 0.1, 0.05] {
        for &t in &[1u32, 2, 4, 8, 16] {
            let exact = x_t_p(p, t);
            let bound = x_t_p_bound(p, t);
            let mc = x_t_p_monte_carlo(p, t, trials, 7);
            assert!(exact <= bound + 1e-9, "recurrence exceeds bound");
            table.row([
                f2(p),
                t.to_string(),
                f3(exact),
                f3(bound),
                f3(mc),
                f3(mc / exact),
            ]);
        }
    }
    table.print();
    println!(
        "\nShape check: Monte Carlo tracks the exact recurrence within sampling\n\
         noise and both respect the closed form — Lemma 6 verified end to end."
    );
}
