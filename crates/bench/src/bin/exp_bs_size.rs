//! E8 — **Sect. 2's correction to Baswana–Sen**: spanner size vs k.
//!
//! The paper corrects \[10, Lemma 4.1\]: the argument shows the expected
//! size is O(kn + log k · n^{1+1/k}), not O(kn + n^{1+1/k}). This
//! experiment sweeps k on a dense workload and prints the measured size
//! against both forms, plus the per-vertex phase-1 contribution
//! X^{k−1}_p ≈ p⁻¹(ln k − ζ) + k − 1 from Lemma 6 — the source of the
//! log k factor.

use spanner_baselines::baswana_sen::{build_distributed_csr, build_sequential, BaswanaSenParams};
use spanner_bench::{f2, huge_mode, peak_rss_bytes, scaled, timed, workload, workload_csr, Table};
use ultrasparse::expand::{x_t_p, x_t_p_bound};

fn main() {
    if huge_mode() {
        return run_huge();
    }
    let n = scaled(20_000, 3_000);
    let density = scaled(50.0, 25.0);
    let g = workload(n, density, 17);
    println!(
        "E8 (Baswana-Sen size correction): workload n = {}, m = {}\n",
        g.node_count(),
        g.edge_count()
    );

    let mut table = Table::new([
        "k",
        "stretch 2k-1",
        "measured |S|/n",
        "claimed kn+n^(1+1/k) (/n)",
        "corrected +log k factor (/n)",
        "X^{k-1}_p per vertex",
        "bound",
        "secs",
    ]);
    for k in [2u32, 3, 4, 6, 8, 12] {
        let params = BaswanaSenParams::new(k).unwrap();
        let (s, secs) = timed(|| build_sequential(&g, &params, 3));
        assert!(s.is_spanning(&g));
        let nf = n as f64;
        let claimed = (k as f64 * nf + nf.powf(1.0 + 1.0 / k as f64)) / nf;
        let corrected =
            (k as f64 * nf + (k as f64).ln().max(1.0) * nf.powf(1.0 + 1.0 / k as f64)) / nf;
        let p = params.probability(n);
        let x = if k >= 2 { x_t_p(p, k - 1) } else { 0.0 };
        let xb = if k >= 2 { x_t_p_bound(p, k - 1) } else { 0.0 };
        table.row([
            k.to_string(),
            params.stretch().to_string(),
            f2(s.edges_per_node(&g)),
            f2(claimed),
            f2(corrected),
            f2(x),
            f2(xb),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nShape check: the measured size sits between the claimed and corrected\n\
         forms; the per-vertex contribution X^t_p (Lemma 6) carries the ln k\n\
         factor the paper identifies."
    );
}

/// The `--scale huge` tier: the size-vs-k comparison at n = 2²⁰ through
/// the **distributed** CSR-native driver (the sequential builder needs a
/// `Graph` and per-vertex adjacency scans; the distributed protocol is the
/// memory-lean path). Density is reduced to keep m at 8n — the size
/// correction is about the n^{1+1/k} term, which the sweep still exposes.
fn run_huge() {
    let n = 1usize << 20;
    let density = 8.0;
    let (csr, gen_secs) = timed(|| std::sync::Arc::new(workload_csr(n, density, 17)));
    println!(
        "E8 (Baswana-Sen size correction), huge tier: CSR-native, n = {n}, m = {} \
         (generated in {gen_secs:.1}s)\n",
        csr.edge_count()
    );
    let mut table = Table::new([
        "k",
        "stretch 2k-1",
        "measured |S|/n",
        "claimed kn+n^(1+1/k) (/n)",
        "corrected +log k factor (/n)",
        "rounds",
        "secs",
    ]);
    for k in [2u32, 3, 4] {
        let params = BaswanaSenParams::new(k).unwrap();
        let (s, secs) = timed(|| build_distributed_csr(&csr, &params, 3).unwrap());
        assert!(csr.subgraph(&s.edges).is_connected(), "k = {k} must span");
        let nf = n as f64;
        let claimed = (k as f64 * nf + nf.powf(1.0 + 1.0 / k as f64)) / nf;
        let corrected =
            (k as f64 * nf + (k as f64).ln().max(1.0) * nf.powf(1.0 + 1.0 / k as f64)) / nf;
        let m = s.metrics.as_ref().expect("distributed run has metrics");
        table.row([
            k.to_string(),
            params.stretch().to_string(),
            f2(s.len() as f64 / nf),
            f2(claimed),
            f2(corrected),
            m.rounds.to_string(),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nSpanning certified exactly per row. Peak RSS: {} MiB.",
        peak_rss_bytes() / (1 << 20)
    );
}
