//! E8 — **Sect. 2's correction to Baswana–Sen**: spanner size vs k.
//!
//! The paper corrects \[10, Lemma 4.1\]: the argument shows the expected
//! size is O(kn + log k · n^{1+1/k}), not O(kn + n^{1+1/k}). This
//! experiment sweeps k on a dense workload and prints the measured size
//! against both forms, plus the per-vertex phase-1 contribution
//! X^{k−1}_p ≈ p⁻¹(ln k − ζ) + k − 1 from Lemma 6 — the source of the
//! log k factor.

use spanner_baselines::baswana_sen::{build_sequential, BaswanaSenParams};
use spanner_bench::{f2, scaled, timed, workload, Table};
use ultrasparse::expand::{x_t_p, x_t_p_bound};

fn main() {
    let n = scaled(20_000, 3_000);
    let density = scaled(50.0, 25.0);
    let g = workload(n, density, 17);
    println!(
        "E8 (Baswana-Sen size correction): workload n = {}, m = {}\n",
        g.node_count(),
        g.edge_count()
    );

    let mut table = Table::new([
        "k",
        "stretch 2k-1",
        "measured |S|/n",
        "claimed kn+n^(1+1/k) (/n)",
        "corrected +log k factor (/n)",
        "X^{k-1}_p per vertex",
        "bound",
        "secs",
    ]);
    for k in [2u32, 3, 4, 6, 8, 12] {
        let params = BaswanaSenParams::new(k).unwrap();
        let (s, secs) = timed(|| build_sequential(&g, &params, 3));
        assert!(s.is_spanning(&g));
        let nf = n as f64;
        let claimed = (k as f64 * nf + nf.powf(1.0 + 1.0 / k as f64)) / nf;
        let corrected =
            (k as f64 * nf + (k as f64).ln().max(1.0) * nf.powf(1.0 + 1.0 / k as f64)) / nf;
        let p = params.probability(n);
        let x = if k >= 2 { x_t_p(p, k - 1) } else { 0.0 };
        let xb = if k >= 2 { x_t_p_bound(p, k - 1) } else { 0.0 };
        table.row([
            k.to_string(),
            params.stretch().to_string(),
            f2(s.edges_per_node(&g)),
            f2(claimed),
            f2(corrected),
            f2(x),
            f2(xb),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nShape check: the measured size sits between the claimed and corrected\n\
         forms; the per-vertex contribution X^t_p (Lemma 6) carries the ln k\n\
         factor the paper identifies."
    );
}
