//! E13 — the **weighted** Baswana–Sen row of Fig. 1: *"optimal in all
//! respects, save for a factor of k in the spanner size"*.
//!
//! Sweeps k on a weighted workload and reports size, realized weighted
//! stretch (exact, over all pairs of a subsampled vertex set), and the
//! guarantee — demonstrating the (2k−1) weighted-stretch bound that the
//! unweighted constructions of this paper do not attempt.

use spanner_baselines::baswana_sen::BaswanaSenParams;
use spanner_baselines::baswana_sen_weighted::build_weighted;
use spanner_bench::{f2, scaled, timed, Table};
use spanner_graph::weighted::{dijkstra, dijkstra_in_subgraph, WeightedGraph, W_UNREACHABLE};
use spanner_graph::{generators, NodeId};

fn main() {
    let n = scaled(4_000, 800);
    let m = scaled(80_000, 8_000);
    let g = WeightedGraph::random_weights(generators::connected_gnm(n, m, 3), 100, 7);
    println!(
        "E13 (Fig. 1, weighted Baswana-Sen): n = {}, m = {}, weights 1..=100\n",
        g.node_count(),
        g.edge_count()
    );

    let mut table = Table::new([
        "k",
        "guarantee 2k-1",
        "|S|/n",
        "measured weighted stretch (max)",
        "mean",
        "secs",
    ]);
    for k in [2u32, 3, 4, 6] {
        let params = BaswanaSenParams::new(k).expect("valid");
        let (s, secs) = timed(|| build_weighted(&g, &params, 11));
        assert!(s.is_spanning(g.graph()));
        // Exact weighted stretch from a subsample of sources.
        let (mut worst, mut sum, mut count) = (1.0f64, 0.0f64, 0u64);
        for src in (0..n as u32).step_by((n / 60).max(1)) {
            let host = dijkstra(&g, NodeId(src));
            let sub = dijkstra_in_subgraph(&g, &s.edges, NodeId(src));
            for v in 0..n {
                if v as u32 == src || host[v] == W_UNREACHABLE {
                    continue;
                }
                let ratio = sub[v] as f64 / host[v] as f64;
                worst = worst.max(ratio);
                sum += ratio;
                count += 1;
            }
        }
        assert!(worst <= (2 * k - 1) as f64 + 1e-9, "k={k}: stretch {worst}");
        table.row([
            k.to_string(),
            (2 * k - 1).to_string(),
            f2(s.len() as f64 / n as f64),
            f2(worst),
            f2(sum / count as f64),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nShape check: the weighted (2k-1) guarantee holds at every k while the\n\
         size falls toward O(kn + log k n^(1+1/k)) — the Fig. 1 row the paper\n\
         calls optimal in all respects."
    );
}
