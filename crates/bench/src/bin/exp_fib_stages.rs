//! E4 — **Theorem 7 / Corollary 1**: the four-stage distortion of
//! Fibonacci spanners as a function of distance.
//!
//! On a workload with a wide distance range (a torus), the measured
//! per-distance stretch profile of a Fibonacci spanner is printed next to
//! the analytic envelope C^o_λ / λ^o. The paper's qualitative claim — the
//! multiplicative distortion *improves* as distance grows, passing through
//! the O(2^o), 3(o+1), →3, →(1+ε) stages — is visible as a decreasing
//! envelope column and a measured column below it.

use spanner_bench::{f2, f3, scaled, Table};
use spanner_graph::generators;
use ultrasparse::fibonacci::analysis::{distortion_envelope, multiplicative_stretch};
use ultrasparse::fibonacci::{build_sequential, FibonacciParams};

fn main() {
    // A caveman graph: dense cliques (so the spanner actually drops
    // edges) strung on a long chain (so distances span a wide range).
    let clusters = scaled(400, 120);
    let size = 14;
    let g = generators::caveman(clusters, size, 0, 5);
    let n = g.node_count();
    let order = 2;
    let params = FibonacciParams::new(n, order, 0.5, 0).expect("valid params");
    println!(
        "E4 (Theorem 7): Fibonacci distortion stages.  caveman {clusters}x{size} (n = {n}), o = {}, ell = {}\n",
        params.order, params.ell
    );

    let spanner = build_sequential(&g, &params, 21);
    assert!(spanner.is_spanning(&g));
    println!(
        "spanner size: {} edges = {:.2} per node (host {:.2} per node)\n",
        spanner.len(),
        spanner.edges_per_node(&g),
        g.edge_count() as f64 / n as f64
    );

    let profile = spanner.stretch_profile(&g, scaled(60_000, 8_000), 3);
    let mut table = Table::new([
        "distance d",
        "pairs",
        "measured max",
        "measured mean",
        "envelope C/d",
        "stage",
    ]);
    // Bucket distances into powers of lambda to show the stages.
    let mut last_bucket = 0u32;
    for b in &profile {
        // Subsample the profile rows: print d = 1, 2, and near powers.
        let lambda = (b.dist as f64).powf(1.0 / order as f64);
        let is_interesting =
            b.dist <= 4 || (lambda.round() - lambda).abs() < 0.05 || b.dist >= last_bucket * 2;
        if !is_interesting || b.pairs < 3 {
            continue;
        }
        last_bucket = b.dist.max(1);
        let env = multiplicative_stretch(params.order, params.ell, b.dist as u64);
        let stage = if b.dist == 1 {
            "O(2^o)"
        } else if (b.dist as u64) < 3u64.pow(order) {
            "3(o+1) @ 2^o"
        } else if (b.dist as u64) < (3 * params.order as u64 * 2).pow(order) {
            "-> 3"
        } else {
            "-> 1+eps"
        };
        assert!(
            b.max_stretch <= env + 1e-9,
            "measured {} exceeds envelope {env} at d={}",
            b.max_stretch,
            b.dist
        );
        table.row([
            b.dist.to_string(),
            b.pairs.to_string(),
            f3(b.max_stretch),
            f3(b.mean_stretch()),
            f3(env),
            stage.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nShape check: the envelope decreases with distance through the paper's\n\
         four stages and the measured stretch never exceeds it. Absolute bound at\n\
         d=1: C^o_1 = {}.",
        f2(distortion_envelope(params.order, params.ell, 1))
    );
}
