//! E5 — **Lemma 8 / Theorem 7**: Fibonacci spanner size vs order and ε.
//!
//! The expected size is `o·n + O(n^{1 + 1/(F_{o+3}−1)} ℓ^φ)`: the
//! polynomial exponent collapses doubly-exponentially with the order while
//! the ℓ^φ factor grows. The experiment sweeps the order (and ε) on a
//! dense workload and prints measured |S|/n next to the prediction.

use spanner_bench::{f2, scaled, timed, workload, Table};
use ultrasparse::fibonacci::params::fibonacci;
use ultrasparse::fibonacci::{build_sequential, FibonacciParams};

fn main() {
    // Fibonacci spanners pay a constant ~(ε⁻¹ log log n)^φ edges per node,
    // so sparsification shows on graphs denser than that: use m/n in the
    // hundreds.
    let n = scaled(4_000, 1_000);
    let density = scaled(400.0, 100.0);
    let g = workload(n, density, 13);
    println!(
        "E5 (Lemma 8): Fibonacci size vs order.  workload: n = {}, m = {} (m/n = {:.1})\n",
        g.node_count(),
        g.edge_count(),
        g.edge_count() as f64 / g.node_count() as f64
    );

    let mut table = Table::new([
        "order o",
        "eps",
        "ell",
        "size exponent 1+1/(F_{o+3}-1)",
        "predicted |S|/n",
        "measured |S|/n",
        "secs",
    ]);
    for o in 1..=FibonacciParams::max_order(n) {
        for &eps in &[0.5, 1.0] {
            let params = FibonacciParams::new(n, o, eps, 0).expect("valid");
            let exponent = 1.0 + 1.0 / (fibonacci(params.order + 3) as f64 - 1.0);
            let predicted = params.expected_size() / n as f64;
            let (s, secs) = timed(|| build_sequential(&g, &params, 5));
            assert!(s.is_spanning(&g));
            table.row([
                params.order.to_string(),
                f2(eps),
                params.ell.to_string(),
                f2(exponent),
                f2(predicted),
                f2(s.edges_per_node(&g)),
                f2(secs),
            ]);
        }
    }
    table.print();
    println!(
        "\nShape check: the measured size is capped by min(m/n, prediction); higher\n\
         order trades a smaller polynomial exponent against a larger ell^phi factor,\n\
         and larger eps (smaller ell) always shrinks the spanner."
    );
}
