//! E9 — **Theorem 8 / Corollary 2**: the message-length ↔ time/order
//! tradeoff of the distributed Fibonacci construction.
//!
//! Messages of O(n^{1/t}) words force the sampling hierarchy to be
//! re-spaced (order grows by ≤ t) and stretch the construction time. The
//! experiment sweeps t and prints the realized order, ℓ, rounds, maximum
//! message words, and spanner size.

use spanner_bench::{f2, scaled, timed, workload, Table, TraceOutput};
use ultrasparse::fibonacci::distributed::{build_distributed_traced, theorem8_budget};
use ultrasparse::fibonacci::FibonacciParams;

fn main() {
    let traces = TraceOutput::from_args();
    let n = scaled(6_000, 1_500);
    let g = workload(n, 10.0, 23);
    let base_order = 2;
    println!(
        "E9 (Theorem 8): message length vs order/time. workload n = {}, m = {}, base order = {base_order}\n",
        g.node_count(),
        g.edge_count()
    );

    let mut table = Table::new([
        "t",
        "budget (words)",
        "effective order",
        "ell",
        "rounds",
        "max words used",
        "|S|/n",
        "secs",
    ]);
    for t in [0u32, 2, 3, 4, 6] {
        let params = FibonacciParams::new(n, base_order, 0.5, t).expect("valid");
        let budget = theorem8_budget(n, t);
        let mut tr = traces.open(&format!("t{t}"));
        let ((s, rounds, words), secs) = timed(|| {
            let s = build_distributed_traced(&g, &params, 9, tr.sink()).expect("run");
            let m = s.metrics.expect("metrics");
            (s, m.rounds, m.max_message_words)
        });
        tr.finish();
        assert!(s.is_spanning(&g), "t={t}");
        table.row([
            t.to_string(),
            budget
                .limit()
                .map_or("unbounded".to_string(), |w| w.to_string()),
            params.order.to_string(),
            params.ell.to_string(),
            rounds.to_string(),
            words.to_string(),
            f2(s.edges_per_node(&g)),
            f2(secs),
        ]);
    }
    table.print();
    println!(
        "\nShape check: smaller messages (larger t) raise the effective order and\n\
         the round count — the Corollary 2 tradeoff — while the spanner remains\n\
         valid at every t."
    );
}
