//! Golden-file regression tests for the experiment binaries.
//!
//! `fig1_table` and `exp_skeleton_size` run at the pinned `--tiny`
//! configuration; their stdout — with the wall-clock `secs` column
//! normalized to `#.##` — must match the snapshots under
//! `results/golden/`. Every number in those tables is seeded and
//! deterministic, so any drift is a real behavior change.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p spanner-bench --test golden
//! ```

use std::path::PathBuf;
use std::process::Command;

/// Runs an experiment binary and returns its stdout.
fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot run {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("experiment output is UTF-8")
}

/// Blanks the wall-clock `secs` column of every markdown table in `text`,
/// preserving alignment (the replacement is padded to the original cell
/// width). All other cells are seeded and deterministic.
fn normalize_secs(text: &str) -> String {
    // `secs` is always the trailing column, so operate on the last cell;
    // column-index bookkeeping would trip over header cells like `|S|/n`
    // that contain their own `|`.
    let mut in_secs_table = false;
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let body = line.trim_end();
        if !body.starts_with('|') {
            in_secs_table = false;
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let last_cell = body
            .rfind('|')
            .and_then(|end| body[..end].rfind('|').map(|start| (start + 1, end)));
        match last_cell {
            Some((start, end)) => {
                let cell = &body[start..end];
                if cell.trim() == "secs" {
                    in_secs_table = true;
                    out.push_str(line);
                } else if in_secs_table && !cell.trim_start().starts_with('-') {
                    out.push_str(&body[..start]);
                    out.push_str(&format!(
                        " {:<width$}",
                        "#.##",
                        width = cell.len().saturating_sub(1)
                    ));
                    out.push('|');
                } else {
                    out.push_str(line);
                }
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[test]
fn normalizer_blanks_only_the_secs_column() {
    let table = "| |S|/n | secs |\n|-------|------|\n| 7.66  | 0.03 |\nprose 0.03\n";
    let norm = normalize_secs(table);
    assert!(norm.contains("| 7.66  | #.## |"), "{norm}");
    assert!(norm.contains("prose 0.03"), "{norm}");
    assert!(norm.contains("|-------|------|"), "{norm}");
}

/// Compares normalized output against `results/golden/<name>`, rewriting
/// the snapshot instead when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "..",
        "..",
        "results",
        "golden",
        name,
    ]
    .iter()
    .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create results/golden");
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intended, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fig1_table_tiny_matches_golden() {
    let out = run(env!("CARGO_BIN_EXE_fig1_table"), &["--tiny"]);
    assert_matches_golden("fig1_table.tiny.txt", &normalize_secs(&out));
}

/// The stretch columns are computed by the parallel distance engine, whose
/// results are thread-count-independent: the same golden snapshot must
/// hold verbatim when the table is produced with `--threads 4`.
#[test]
fn fig1_table_tiny_unchanged_by_threads() {
    let out = run(
        env!("CARGO_BIN_EXE_fig1_table"),
        &["--tiny", "--threads", "4"],
    );
    assert_matches_golden("fig1_table.tiny.txt", &normalize_secs(&out));
}

#[test]
fn exp_skeleton_size_tiny_matches_golden() {
    let out = run(env!("CARGO_BIN_EXE_exp_skeleton_size"), &["--tiny"]);
    assert_matches_golden("exp_skeleton_size.tiny.txt", &normalize_secs(&out));
}

/// `--scale tiny` is a synonym for `--tiny`: the new flag must reproduce
/// the existing snapshots byte for byte — the huge tier rides in through
/// `--scale` without perturbing any pinned small-n column.
#[test]
fn scale_flag_tiny_matches_golden() {
    let out = run(env!("CARGO_BIN_EXE_fig1_table"), &["--scale", "tiny"]);
    assert_matches_golden("fig1_table.tiny.txt", &normalize_secs(&out));
    let out = run(env!("CARGO_BIN_EXE_exp_skeleton_size"), &["--scale=tiny"]);
    assert_matches_golden("exp_skeleton_size.tiny.txt", &normalize_secs(&out));
}

/// An unknown tier must fail loudly, not silently run the default scale.
#[test]
fn bad_scale_tier_fails_loudly() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig1_table"))
        .args(["--scale", "gigantic"])
        .output()
        .expect("spawn fig1_table");
    assert!(!out.status.success(), "unknown tier must not run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown --scale tier"), "{stderr}");
}

/// Drops the `wrote <path>` artifact line: the JSON path is
/// machine-dependent (the table above it is what the snapshot pins).
fn strip_artifact_line(text: &str) -> String {
    text.lines()
        .filter(|l| !l.starts_with("wrote "))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The async experiment's table is fully deterministic — including the
/// simulated-time column, which the golden snapshot pins on purpose (the
/// event clock is seeded, thread-count-independent state, not wall time);
/// only the trailing `secs` column is normalized.
#[test]
fn exp_async_messages_tiny_matches_golden() {
    let json = std::env::temp_dir().join("BENCH_async.golden-test.json");
    let json = json.to_str().expect("utf-8 temp path");
    let out = run(
        env!("CARGO_BIN_EXE_exp_async_messages"),
        &["--tiny", "--json", json],
    );
    assert_matches_golden(
        "exp_async_messages.tiny.txt",
        &strip_artifact_line(&normalize_secs(&out)),
    );
    let artifact = std::fs::read_to_string(json).expect("JSON artifact written");
    assert!(artifact.contains("\"experiment\": \"exp_async_messages\""));
    assert!(artifact.contains("\"alpha\""));
    assert!(artifact.contains("\"skeleton\""));
}

/// Repeat invocations are byte-identical modulo wall time — the acceptance
/// criterion's determinism half, checked process-to-process.
#[test]
fn exp_async_messages_tiny_repeats_identically() {
    let json = std::env::temp_dir().join("BENCH_async.repeat-test.json");
    let json = json.to_str().expect("utf-8 temp path");
    let args = ["--tiny", "--json", json];
    let first = normalize_secs(&run(env!("CARGO_BIN_EXE_exp_async_messages"), &args));
    let second = normalize_secs(&run(env!("CARGO_BIN_EXE_exp_async_messages"), &args));
    assert_eq!(first, second, "repeat run drifted");
}

#[test]
fn faults_flag_runs_and_reports_counters() {
    let out = run(
        env!("CARGO_BIN_EXE_fig1_table"),
        &["--tiny", "--faults", "drop=0.05,seed=9"],
    );
    assert!(out.contains("fault injection active"), "{out}");
    assert!(out.contains("dropped="), "fault counters missing:\n{out}");
}

#[test]
fn faults_flag_accepts_crash_schedules() {
    let out = run(
        env!("CARGO_BIN_EXE_exp_skeleton_size"),
        &["--tiny", "--faults", "seed=3,drop=0.01,crash=0@2"],
    );
    assert!(out.contains("fault injection active"), "{out}");
}

#[test]
fn bad_faults_spec_fails_loudly() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig1_table"))
        .args(["--tiny", "--faults", "drop=nonsense"])
        .output()
        .expect("spawn fig1_table");
    assert!(!out.status.success(), "malformed spec must not run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --faults spec"), "{stderr}");
}
