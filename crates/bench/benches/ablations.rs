//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! * **contraction** — the skeleton with vs without inter-round
//!   contraction (the mechanism that keeps the size linear); the bench
//!   also asserts the size gap so a regression in either variant trips it,
//! * **girth-based vs clustering-based** linear skeletons — the
//!   O(n·m)-ish greedy versus the near-linear Expand pipeline, the
//!   tradeoff that motivates Sect. 2.

use criterion::{criterion_group, criterion_main, Criterion};

use spanner_baselines::greedy;
use spanner_graph::generators;
use ultrasparse::skeleton::{build_sequential, build_sequential_no_contraction, SkeletonParams};

fn bench_contraction_ablation(c: &mut Criterion) {
    let g = generators::connected_gnm(8_000, 64_000, 42);
    let params = SkeletonParams::default();

    let with = build_sequential(&g, &params, 3);
    let without = build_sequential_no_contraction(&g, &params, 3);
    assert!(
        without.len() > with.len(),
        "contraction must reduce the size: {} vs {}",
        with.len(),
        without.len()
    );

    let mut group = c.benchmark_group("contraction_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("skeleton_with_contraction_8k", |b| {
        b.iter(|| build_sequential(&g, &params, 3))
    });
    group.bench_function("skeleton_no_contraction_8k", |b| {
        b.iter(|| build_sequential_no_contraction(&g, &params, 3))
    });
    group.finish();
}

fn bench_girth_vs_clustering(c: &mut Criterion) {
    let g = generators::connected_gnm(2_000, 16_000, 7);
    let params = SkeletonParams::default();
    let mut group = c.benchmark_group("linear_skeleton_2k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("clustering", |b| {
        b.iter(|| build_sequential(&g, &params, 3))
    });
    group.bench_function("girth_greedy", |b| {
        b.iter(|| greedy::linear_size_skeleton(&g))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_contraction_ablation,
    bench_girth_vs_clustering
);
criterion_main!(benches);
