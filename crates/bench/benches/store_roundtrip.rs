//! Snapshot round-trip throughput: loading a persisted spanner vs
//! rebuilding it from the graph.
//!
//! The `spanner-store` snapshot format exists so a served spanner can be
//! brought back in O(size-on-disk) instead of O(construction): this bench
//! measures both sides at the same scale — the distributed skeleton
//! construction over a connected G(n, m) CSR, then `Store::save` and
//! `Store::open` of the same (graph, spanner) pair — and certifies the
//! round trip on the way:
//!
//! * **lossless**: the reopened state reproduces the CSR, the spanner
//!   pair list, and the metadata exactly;
//! * **canonical**: re-saving the reopened state into a fresh directory
//!   produces byte-identical MANIFEST, data blocks, and WAL — encode is
//!   a function of the state alone.
//!
//! Environment knobs (a `--tiny|--quick|--full|--huge` CLI flag wins over
//! the `STORE_ROUNDTRIP_SCALE` env var):
//! * `STORE_ROUNDTRIP_SCALE=tiny|quick|full|huge` — `tiny` is the
//!   sub-second smoke run, `quick` (n = 2¹⁴) the CI configuration,
//!   `full` (n = 2¹⁷) the local default, `huge` (n = 2²⁰) the
//!   million-node row of EXPERIMENTS.md ("Persistence").
//! * `STORE_ROUNDTRIP_ASSERT=1` — fail (panic) unless loading beats
//!   rebuilding by ≥ 10× (skipped at `tiny`, where both sides are
//!   microseconds and the ratio is noise). The parity and byte-identity
//!   asserts above run unconditionally.
//!
//! Writes `BENCH_store.json` at the repo root.

use std::sync::Arc;
use std::time::Instant;

use spanner_bench::peak_rss_bytes;
use spanner_graph::generators;
use spanner_store::{scratch_dir, SnapshotMeta, Store};
use ultrasparse::skeleton::{distributed as skel, SkeletonParams};

struct Scale {
    name: &'static str,
    n: usize,
    /// m = density · n.
    density: usize,
    /// Samples for the save/load timings (best-of; the build runs once).
    samples: usize,
}

fn scale() -> Scale {
    // Cargo passes its own `--bench` flag through; accept only the four
    // scale names as flags.
    let arg = std::env::args().find_map(|a| match a.as_str() {
        "--tiny" => Some("tiny".to_string()),
        "--quick" => Some("quick".to_string()),
        "--full" => Some("full".to_string()),
        "--huge" => Some("huge".to_string()),
        _ => None,
    });
    let choice = arg.or_else(|| std::env::var("STORE_ROUNDTRIP_SCALE").ok());
    match choice.as_deref() {
        Some("tiny") => Scale {
            name: "tiny",
            n: 1 << 10,
            density: 4,
            samples: 3,
        },
        Some("quick") => Scale {
            name: "quick",
            n: 1 << 14,
            density: 4,
            samples: 3,
        },
        Some("huge") => Scale {
            name: "huge",
            n: 1 << 20,
            density: 4,
            samples: 2,
        },
        _ => Scale {
            name: "full",
            n: 1 << 17,
            density: 4,
            samples: 3,
        },
    }
}

/// Total bytes of every file in the snapshot directory.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("snapshot dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum()
}

/// The files of a snapshot directory as sorted (name, bytes) pairs.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("snapshot dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("read snapshot file");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

fn main() {
    let sc = scale();
    let (n, m, seed) = (sc.n, sc.n * sc.density, 42u64);
    println!("store_roundtrip: scale = {}, n = {n}, m = {m}", sc.name);

    let csr = Arc::new(generators::connected_gnm_csr(n, m, seed));
    let params = SkeletonParams::default();

    // The rebuild side: one distributed skeleton construction.
    let start = Instant::now();
    let spanner = skel::build_distributed_csr(&csr, &params, seed).expect("skeleton build");
    let build_secs = start.elapsed().as_secs_f64();
    let pairs: Vec<(u32, u32)> = csr
        .forward_edges()
        .filter(|&(e, _, _)| spanner.edges.contains(e))
        .map(|(_, a, b)| (a.0, b.0))
        .collect();
    println!("build: {build_secs:.3}s, |S| = {}", pairs.len());

    // The persistence side: save once per sample into a fresh directory
    // (best-of over samples), then reopen the last one.
    let meta = SnapshotMeta {
        k: 2,
        seed,
        routing: false,
    };
    let dir = scratch_dir("bench-roundtrip");
    let mut save_secs = f64::INFINITY;
    for _ in 0..sc.samples {
        std::fs::remove_dir_all(&dir).ok();
        let start = Instant::now();
        Store::save(&dir, &csr, &pairs, meta).expect("save");
        save_secs = save_secs.min(start.elapsed().as_secs_f64());
    }
    let snapshot_bytes = dir_bytes(&dir);

    let mut load_secs = f64::INFINITY;
    let mut state = None;
    for _ in 0..sc.samples {
        let start = Instant::now();
        state = Some(Store::open(&dir).expect("open"));
        load_secs = load_secs.min(start.elapsed().as_secs_f64());
    }
    let state = state.expect("at least one sample");
    println!(
        "save: {save_secs:.3}s ({} bytes), load: {load_secs:.3}s",
        snapshot_bytes
    );

    // Lossless: the reopened state reproduces graph, spanner, and meta.
    assert_eq!(state.csr.parts(), csr.parts(), "CSR round-trip parity");
    assert_eq!(state.spanner, pairs, "spanner round-trip parity");
    assert_eq!(state.meta, meta, "meta round-trip parity");
    assert!(state.edits.is_empty(), "fresh snapshot has an empty WAL");

    // Canonical: re-encoding the reopened state is byte-identical.
    let dir2 = scratch_dir("bench-roundtrip-2");
    Store::save(&dir2, &state.csr, &state.spanner, state.meta).expect("re-save");
    assert_eq!(
        dir_contents(&dir),
        dir_contents(&dir2),
        "re-saved snapshot differs byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();

    let speedup_load = build_secs / load_secs;
    println!("speedup_load = {speedup_load:.1}x (build / load)");

    let rss = peak_rss_bytes();
    let json = format!(
        "{{\n  \"bench\": \"store_roundtrip\",\n  \"scale\": \"{}\",\n  \"n\": {},\n  \"m\": {},\n  \
         \"spanner_edges\": {},\n  \"snapshot_bytes\": {},\n  \"build_secs\": {:.6},\n  \
         \"save_secs\": {:.6},\n  \"load_secs\": {:.6},\n  \"speedup_load\": {:.2},\n  \
         \"peak_rss_bytes\": {}\n}}\n",
        sc.name,
        n,
        m,
        pairs.len(),
        snapshot_bytes,
        build_secs,
        save_secs,
        load_secs,
        speedup_load,
        rss,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, json).expect("write BENCH_store.json");
    println!("wrote {path} (peak RSS {} MiB)", rss / (1 << 20));

    // The acceptance gate: a snapshot load must beat a rebuild by an
    // order of magnitude — that is the reason the format exists. Skipped
    // at tiny scale, where both sides are microseconds-noise.
    if std::env::var("STORE_ROUNDTRIP_ASSERT").as_deref() == Ok("1") && sc.name != "tiny" {
        assert!(
            speedup_load >= 10.0,
            "loading a snapshot is only {speedup_load:.1}x faster than rebuilding (need >= 10x)"
        );
        println!("assertion passed: speedup_load >= 10x");
    }
}
