//! Round-execution throughput: zero-alloc executor vs the seed hot path.
//!
//! The seed executor allocated a fresh `vec![Vec::new(); n]` inbox table
//! every round, rebuilt nested-Vec adjacency per run, and detected duplicate
//! sends by scanning the outbox (O(outbox) per send, so O(deg²) for a
//! broadcast). The `naive` module below replicates that hot path faithfully;
//! the `netsim` benchmarks run the same workload on the rewritten executor
//! (double-buffered arenas, CSR adjacency, stamp-based duplicate check).
//!
//! Two shapes:
//!
//! * `er_50k` — Erdős–Rényi, n = 50 000, m = 150 000: the acceptance target
//!   is ≥ 2× throughput over the seed path.
//! * `star` — one hub of degree d broadcasting each round. The new executor
//!   must be linear in d (time at d = 100 000 ≈ 10× time at d = 10 000); the
//!   seed path is quadratic, so it is benchmarked only at the smaller sizes
//!   (at d = 100 000 a single naive round is ~10⁹ comparisons).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spanner_graph::{generators, Graph, NodeId};
use spanner_netsim::{Ctx, MessageBudget, Network, Protocol};

/// Every node broadcasts one word per round until `ttl`, then goes quiet.
struct Gossip {
    ttl: u32,
}

impl Protocol for Gossip {
    type Msg = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.broadcast(ctx.me().0 as u64);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
        if ctx.round() < self.ttl && !inbox.is_empty() {
            ctx.broadcast(ctx.round() as u64);
        }
    }
}

fn run_new(g: &Graph, ttl: u32) -> u64 {
    let mut net = Network::new(g, MessageBudget::CONGEST, 1);
    net.run(|_, _| Gossip { ttl }, ttl + 4).expect("terminates");
    net.metrics().messages
}

fn run_new_shared(g: &Graph, csr: &spanner_netsim::CsrAdjacency, ttl: u32) -> u64 {
    let mut net = Network::with_adjacency(g, csr.clone(), MessageBudget::CONGEST, 1);
    net.run(|_, _| Gossip { ttl }, ttl + 4).expect("terminates");
    net.metrics().messages
}

/// Faithful replica of the seed executor's per-round costs for the same
/// gossip workload: nested-Vec adjacency built per run, a brand-new inbox
/// table allocated every round, per-send neighbor binary search plus the
/// O(outbox) duplicate scan (the scan that made hub broadcasts quadratic),
/// and per-message budget checks and metric accounting.
mod naive {
    use super::*;
    use spanner_netsim::RunMetrics;

    pub fn run(g: &Graph, ttl: u32) -> u64 {
        let n = g.node_count();
        let budget = MessageBudget::CONGEST;
        let adjacency: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|v| {
                let mut ns: Vec<NodeId> = g.neighbor_ids(v).collect();
                ns.sort_unstable();
                ns
            })
            .collect();
        let mut metrics = RunMetrics::default();
        let mut inboxes: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];

        let send = |nbrs: &[NodeId], outbox: &mut Vec<(NodeId, u64)>, to: NodeId, w: u64| {
            assert!(nbrs.binary_search(&to).is_ok(), "non-neighbor");
            assert!(
                !outbox.iter().any(|&(t, _)| t == to),
                "duplicate send (seed-style scan)"
            );
            outbox.push((to, w));
        };

        for round in 0..=ttl {
            // Seed behaviour: a fresh inbox table every round.
            let mut delivering = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
            let mut quiet = true;
            for v in 0..n {
                let mut inbox = std::mem::take(&mut delivering[v]);
                inbox.sort_by_key(|&(s, _)| s);
                let fire = round == 0 || (!inbox.is_empty() && round < ttl);
                if !fire {
                    continue;
                }
                quiet = false;
                let mut outbox = Vec::new();
                for &to in &adjacency[v] {
                    send(&adjacency[v], &mut outbox, to, round as u64);
                }
                for (to, w) in outbox {
                    assert!(budget.allows(1), "CONGEST allows one word");
                    metrics.messages += 1;
                    metrics.words += 1;
                    metrics.max_message_words = metrics.max_message_words.max(1);
                    inboxes[to.index()].push((NodeId(v as u32), w));
                }
            }
            if quiet {
                break;
            }
        }
        metrics.messages
    }
}

fn bench_er(c: &mut Criterion) {
    let g = generators::erdos_renyi_gnm(50_000, 150_000, 42);
    let csr = spanner_netsim::CsrAdjacency::from_graph(&g);
    let ttl = 4;
    assert_eq!(run_new(&g, ttl), naive::run(&g, ttl), "same workload");
    let mut group = c.benchmark_group("round_throughput/er_50k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.bench_function("seed_path", |b| b.iter(|| naive::run(&g, ttl)));
    group.bench_function("netsim", |b| b.iter(|| run_new_shared(&g, &csr, ttl)));
    group.finish();
}

fn bench_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput/star_broadcast");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for degree in [10_000usize, 100_000] {
        let g = generators::star(degree + 1);
        group.bench_with_input(BenchmarkId::new("netsim", degree), &g, |b, g| {
            b.iter(|| run_new(g, 2))
        });
        // The seed path is O(deg²) per hub broadcast: only feasible small.
        if degree <= 10_000 {
            group.bench_with_input(BenchmarkId::new("seed_path", degree), &g, |b, g| {
                b.iter(|| naive::run(g, 2))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_er, bench_star);
criterion_main!(benches);
