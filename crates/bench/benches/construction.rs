//! Criterion benches: construction-time scaling of every spanner
//! algorithm on the standard workload, plus the substrate primitives
//! (BFS, generator) they are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spanner_baselines::{additive2, baswana_sen, bfs_skeleton, greedy};
use spanner_graph::{generators, traversal, NodeId};
use ultrasparse::fibonacci::{self, FibonacciParams};
use ultrasparse::skeleton::{self, SkeletonParams};

fn workload(n: usize) -> spanner_graph::Graph {
    generators::connected_gnm(n, 8 * n, 42)
}

fn bench_substrate(c: &mut Criterion) {
    let g = workload(10_000);
    c.bench_function("bfs_10k", |b| {
        b.iter(|| traversal::bfs_distances(&g, NodeId(0)))
    });
    c.bench_function("gnm_generate_10k", |b| {
        b.iter(|| generators::erdos_renyi_gnm(10_000, 80_000, 7))
    });
}

fn bench_skeleton(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_sequential");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for n in [2_000usize, 8_000, 32_000] {
        let g = workload(n);
        let params = SkeletonParams::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| skeleton::build_sequential(g, &params, 3))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("skeleton_distributed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for n in [1_000usize, 4_000] {
        let g = workload(n);
        let params = SkeletonParams::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| skeleton::distributed::build_distributed(g, &params, 3).unwrap())
        });
    }
    group.finish();
}

fn bench_fibonacci(c: &mut Criterion) {
    let mut group = c.benchmark_group("fibonacci_sequential");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for n in [2_000usize, 8_000] {
        let g = workload(n);
        let params = FibonacciParams::new(n, 2, 0.5, 0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| fibonacci::build_sequential(g, &params, 3))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fibonacci_distributed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for n in [1_000usize, 4_000] {
        let g = workload(n);
        let params = FibonacciParams::new(n, 2, 0.5, 0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| fibonacci::distributed::build_distributed(g, &params, 3).unwrap())
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let g = workload(8_000);
    let mut heavy = c.benchmark_group("baselines");
    heavy.sample_size(10);
    heavy.measurement_time(std::time::Duration::from_secs(4));
    let c = &mut heavy;
    let bs = baswana_sen::BaswanaSenParams::new(3).unwrap();
    c.bench_function("baswana_sen_seq_8k", |b| {
        b.iter(|| baswana_sen::build_sequential(&g, &bs, 3))
    });
    c.bench_function("baswana_sen_dist_8k", |b| {
        b.iter(|| baswana_sen::build_distributed(&g, &bs, 3).unwrap())
    });
    c.bench_function("bfs_forest_8k", |b| b.iter(|| bfs_skeleton::build(&g)));
    c.bench_function("additive2_8k", |b| b.iter(|| additive2::build(&g, 3)));
    let small = workload(1_000);
    c.bench_function("greedy_k3_1k", |b| b.iter(|| greedy::build(&small, 3)));
    heavy.finish();
}

criterion_group!(
    benches,
    bench_substrate,
    bench_skeleton,
    bench_fibonacci,
    bench_baselines
);
criterion_main!(benches);
