//! Construction-pipeline throughput: the CSR-native distributed drivers
//! vs the `Graph`-built drivers they replace.
//!
//! Every `build_distributed*` driver used to take a `&Graph` and rebuild a
//! fresh `CsrAdjacency` inside `Network::new` on every run; the CSR-native
//! drivers (`build_distributed_csr*`) share one `Arc<CsrAdjacency>` across
//! the executor, the fault plan, and the trace layer, and collect the
//! spanner through the CSR edge index — zero `Graph` materialization. This
//! bench measures the end-to-end construction on both paths, asserts the
//! outputs are byte-identical (edges **and** metrics), and records
//! rounds/sec, total messages, wall time, and peak RSS per shape.
//!
//! Environment knobs:
//! * `CONSTRUCTION_THROUGHPUT_SCALE=tiny|mid|full|huge` — `tiny` is the
//!   seconds-scale smoke run, `mid` (n = 8192) is the CI configuration,
//!   `full` (n = 65536) the local default, `huge` (n = 2²⁰) builds the
//!   workload through the streaming CSR generator with no `Graph` and no
//!   Graph-driver baseline — the documented million-node row of
//!   EXPERIMENTS.md ("Million-node runs").
//! * `CONSTRUCTION_THROUGHPUT_ASSERT=1` — fail (panic) if any shape with
//!   a Graph-driver baseline shows `speedup_csr < 0.9`. The two paths
//!   execute the identical simulation (only setup and collection differ),
//!   and the simulation's own wall time drifts by tens of percent between
//!   identical invocations on a shared container — 0.9 is the bar that
//!   survives that noise while still catching structural regressions.
//!
//! Writes `BENCH_construction.json` at the repo root.

use std::sync::Arc;
use std::time::Instant;

use spanner_baselines::baswana_sen;
use spanner_bench::peak_rss_bytes;
use spanner_graph::{generators, CsrAdjacency, Graph};
use ultrasparse::fibonacci::{self, FibonacciParams};
use ultrasparse::skeleton::{distributed as skel, SkeletonParams};
use ultrasparse::Spanner;

struct Scale {
    name: &'static str,
    n: usize,
    /// m = density · n.
    density: usize,
    samples: usize,
}

fn scale() -> Scale {
    match std::env::var("CONSTRUCTION_THROUGHPUT_SCALE").as_deref() {
        Ok("tiny") => Scale {
            name: "tiny",
            n: 600,
            density: 4,
            samples: 10,
        },
        Ok("mid") => Scale {
            name: "mid",
            n: 8_192,
            density: 4,
            samples: 5,
        },
        Ok("huge") => Scale {
            name: "huge",
            n: 1 << 20,
            density: 4,
            samples: 1,
        },
        _ => Scale {
            name: "full",
            n: 65_536,
            density: 4,
            samples: 3,
        },
    }
}

/// Wall-clock seconds of one run of `f`.
fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Best seconds per quantity over `samples` **interleaved** rounds — the
/// min is the noise-robust estimator on a shared machine, and interleaving
/// keeps the *ratio* robust against throughput drift between measurement
/// windows (same discipline as `distance_throughput`).
fn time_interleaved<const K: usize>(
    samples: usize,
    mut fs: [&mut dyn FnMut() -> f64; K],
) -> [f64; K] {
    let mut best = [f64::INFINITY; K];
    for _ in 0..samples {
        for (b, f) in best.iter_mut().zip(fs.iter_mut()) {
            *b = b.min(f());
        }
    }
    best
}

struct ShapeResult {
    name: &'static str,
    n: usize,
    m: usize,
    rounds: u32,
    messages: u64,
    max_words: usize,
    /// `None` at huge scale, where the Graph driver is not run.
    graph_secs: Option<f64>,
    csr_secs: f64,
}

impl ShapeResult {
    fn speedup_csr(&self) -> Option<f64> {
        self.graph_secs.map(|s| s / self.csr_secs)
    }

    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.csr_secs
    }

    fn json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.6}"),
            None => "null".to_string(),
        };
        format!(
            "    {{\"shape\": \"{}\", \"n\": {}, \"m\": {}, \"rounds\": {}, \"messages\": {}, \
             \"max_words\": {}, \"graph_secs\": {}, \"csr_secs\": {:.6}, \
             \"rounds_per_sec\": {:.2}, \"speedup_csr\": {}}}",
            self.name,
            self.n,
            self.m,
            self.rounds,
            self.messages,
            self.max_words,
            opt(self.graph_secs),
            self.csr_secs,
            self.rounds_per_sec(),
            opt(self.speedup_csr().map(|s| (s * 100.0).round() / 100.0)),
        )
    }
}

/// Runs both drivers once for parity, then times them interleaved.
/// `run_graph` and `run_csr` must be the same construction on the same
/// topology; the parity assert is what certifies the CSR path.
fn bench_shape(
    name: &'static str,
    m: usize,
    samples: usize,
    run_graph: impl Fn() -> Spanner,
    run_csr: impl Fn() -> Spanner,
) -> ShapeResult {
    let from_graph = run_graph();
    let from_csr = run_csr();
    assert_eq!(from_graph.edges, from_csr.edges, "{name}: edge parity");
    assert_eq!(
        from_graph.metrics, from_csr.metrics,
        "{name}: metric parity"
    );
    let metrics = from_csr.metrics.as_ref().expect("distributed metrics");
    let (rounds, messages, max_words) =
        (metrics.rounds, metrics.messages, metrics.max_message_words);
    let [csr_secs, graph_secs] = time_interleaved(
        samples,
        [&mut || time_once(&run_csr), &mut || time_once(&run_graph)],
    );
    let r = ShapeResult {
        name,
        n: 0, // filled by caller
        m,
        rounds,
        messages,
        max_words,
        graph_secs: Some(graph_secs),
        csr_secs,
    };
    println!(
        "{name}: graph {graph_secs:.3}s, csr {csr_secs:.3}s ({:.2}x), {} rounds, {} messages",
        graph_secs / csr_secs,
        rounds,
        messages
    );
    r
}

/// Huge scale: CSR driver only, timed once (the Graph driver's whole-graph
/// materialization is what this tier avoids).
fn bench_shape_huge(name: &'static str, m: usize, run_csr: impl Fn() -> Spanner) -> ShapeResult {
    let start = Instant::now();
    let s = run_csr();
    let csr_secs = start.elapsed().as_secs_f64();
    let metrics = s.metrics.as_ref().expect("distributed metrics");
    println!(
        "{name}: csr {csr_secs:.3}s, {} rounds, {} messages, |S| = {}",
        metrics.rounds,
        metrics.messages,
        s.len()
    );
    ShapeResult {
        name,
        n: 0,
        m,
        rounds: metrics.rounds,
        messages: metrics.messages,
        max_words: metrics.max_message_words,
        graph_secs: None,
        csr_secs,
    }
}

fn main() {
    let sc = scale();
    let n = sc.n;
    let m = sc.density * n;
    let seed = 42u64;
    println!(
        "construction_throughput: scale = {}, n = {n}, m = {m}",
        sc.name
    );

    let sk = SkeletonParams::default();
    let bs2 = baswana_sen::BaswanaSenParams::new(2).unwrap();
    let order = FibonacciParams::max_order(n).min(3);
    let fp = FibonacciParams::new(n, order, 0.5, 4).unwrap();

    let mut results: Vec<ShapeResult> = if sc.name == "huge" {
        let csr = Arc::new(generators::connected_gnm_csr(n, m, seed));
        vec![
            bench_shape_huge("skeleton", m, || {
                skel::build_distributed_csr(&csr, &sk, seed).unwrap()
            }),
            bench_shape_huge("baswana_sen_k2", m, || {
                baswana_sen::build_distributed_csr(&csr, &bs2, seed).unwrap()
            }),
        ]
    } else {
        let g: Graph = generators::connected_gnm(n, m, seed);
        let csr = Arc::new(CsrAdjacency::from_graph(&g));
        vec![
            bench_shape(
                "skeleton",
                m,
                sc.samples,
                || skel::build_distributed(&g, &sk, seed).unwrap(),
                || skel::build_distributed_csr(&csr, &sk, seed).unwrap(),
            ),
            bench_shape(
                "baswana_sen_k2",
                m,
                sc.samples,
                || baswana_sen::build_distributed(&g, &bs2, seed).unwrap(),
                || baswana_sen::build_distributed_csr(&csr, &bs2, seed).unwrap(),
            ),
            bench_shape(
                "fibonacci",
                m,
                sc.samples,
                || fibonacci::distributed::build_distributed(&g, &fp, seed).unwrap(),
                || fibonacci::distributed::build_distributed_csr(&csr, &fp, seed).unwrap(),
            ),
        ]
    };
    for r in &mut results {
        r.n = n;
    }

    let rss = peak_rss_bytes();
    let shapes: Vec<String> = results.iter().map(ShapeResult::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"construction_throughput\",\n  \"scale\": \"{}\",\n  \"n\": {},\n  \
         \"m\": {},\n  \"peak_rss_bytes\": {},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        sc.name,
        n,
        m,
        rss,
        shapes.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_construction.json");
    std::fs::write(path, json).expect("write BENCH_construction.json");
    println!("wrote {path} (peak RSS {} MiB)", rss / (1 << 20));

    // The no-regression gate: sharing one CSR across runs must not be
    // slower than rebuilding the adjacency from a Graph every run. The
    // bar is 0.9, not 1.0: both paths run the identical simulation and
    // its wall time alone drifts by tens of percent on a shared machine
    // (see the module docs); a structural regression in the CSR setup or
    // collection path would land far below this.
    if std::env::var("CONSTRUCTION_THROUGHPUT_ASSERT").as_deref() == Ok("1") {
        for r in &results {
            if let Some(s) = r.speedup_csr() {
                assert!(
                    s >= 0.9,
                    "{}: CSR driver regressed vs Graph driver (speedup_csr = {s:.2})",
                    r.name
                );
            }
        }
        println!("assertion passed: speedup_csr >= 0.9 for every shape");
    }
}
