//! Distance-engine throughput: the adaptive engine (bit-parallel or
//! direction-optimizing, picked per graph) vs the seed-style
//! one-BFS-per-source path.
//!
//! The seed verification/APSP hot path ran `traversal::bfs_distances` once
//! per source: a `VecDeque` walk over `Vec<Vec<NodeId>>`-shaped adjacency
//! with a fresh `Vec<Option<u32>>` per call. The engine replaces it with a
//! flat CSR and a per-graph strategy: 64-way bit-parallel multi-source BFS
//! where the waves overlap (low-diameter shapes), one direction-optimizing
//! BFS per source where they don't (grids and other lattices).
//!
//! Shapes at the default scale (n = 50 000, the scale of the paper's
//! experiments): ER (m = 200 000), a 224×224 grid, and a star
//! (diameter 2). Each timing batch answers `S = 256` consecutive sources —
//! the access pattern of `apsp_matrix` and the stretch verifiers. The
//! acceptance bar is **no shape regresses**: `speedup_t1 ≥ 1.0`
//! everywhere (enforced when `DISTANCE_THROUGHPUT_ASSERT=1`, the CI
//! configuration), with ER expected well above 4×.
//!
//! Environment knobs:
//! * `DISTANCE_THROUGHPUT_SCALE=tiny|full|huge` — `tiny` is the
//!   seconds-scale CI smoke run; `huge` builds n ≥ 2²⁰ shapes through the
//!   streaming CSR generators (no intermediate `Graph`, no seed baseline)
//!   and records peak RSS. Default `full`.
//! * `DISTANCE_ENGINE_STRATEGY=auto|bit-parallel|direction-optimizing` —
//!   overrides the engine's per-graph strategy probe for every shape.
//! * `DISTANCE_THROUGHPUT_ASSERT=1` — fail (panic) if any shape with a
//!   seed baseline shows `speedup_t1 < 1.0`.
//!
//! Besides the criterion report (tiny/full only), the bench writes
//! `BENCH_distance.json` at the repo root with the measured speedups, the
//! strategy each shape resolved to, and the process's peak RSS.

use std::time::{Duration, Instant};

use criterion::Criterion;
use spanner_graph::distance::UNREACHABLE;
use spanner_graph::{generators, traversal, DistanceEngine, Graph, NodeId, Strategy};

struct Scale {
    name: &'static str,
    n: usize,
    m: usize,
    grid_side: usize,
    sources: usize,
    samples: usize,
    measurement: Duration,
}

fn scale() -> Scale {
    match std::env::var("DISTANCE_THROUGHPUT_SCALE").as_deref() {
        // The tiny grid is deliberately not 600-node-scale: below ~10⁴
        // nodes both paths' whole working sets sit in L1 and the seed's
        // nested-Vec layout costs nothing, so the comparison measures
        // only loop constants. 128² is the smallest grid where the
        // engine's flat-CSR locality advantage is reliably measurable,
        // and a 64-source batch still runs in single-digit milliseconds.
        Ok("tiny") => Scale {
            name: "tiny",
            n: 600,
            m: 2_400,
            grid_side: 128,
            sources: 64,
            // Interleaved rounds are milliseconds each at this scale, so
            // take plenty: the per-quantity minimum converges to the true
            // floor even when the container stalls for whole rounds.
            samples: 30,
            measurement: Duration::from_millis(200),
        },
        Ok("huge") => Scale {
            name: "huge",
            n: 1 << 20,
            m: 4 << 20,
            grid_side: 1024,
            sources: 64,
            samples: 2,
            measurement: Duration::from_secs(3),
        },
        _ => Scale {
            name: "full",
            n: 50_000,
            m: 200_000,
            grid_side: 224,
            sources: 256,
            samples: 5,
            measurement: Duration::from_secs(3),
        },
    }
}

fn strategy_override() -> Strategy {
    match std::env::var("DISTANCE_ENGINE_STRATEGY") {
        Ok(s) => s.parse().expect("DISTANCE_ENGINE_STRATEGY"),
        Err(_) => Strategy::Auto,
    }
}

/// The seed hot path: one queue-based BFS per source.
fn seed_batch(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let n = g.node_count();
    let mut out = Vec::with_capacity(sources.len() * n);
    for &s in sources {
        out.extend(
            traversal::bfs_distances(g, s)
                .into_iter()
                .map(|d| d.unwrap_or(UNREACHABLE)),
        );
    }
    out
}

/// Wall-clock seconds of one run of `f`.
fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    criterion::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Best wall-clock seconds per timed quantity over `samples`
/// **interleaved** rounds: each round times every closure once, and each
/// keeps its minimum. The minimum is the noise-robust estimator on a
/// shared machine (noise only ever adds time), and interleaving is what
/// makes the *ratios* robust — this container's throughput drifts by tens
/// of percent between adjacent measurement windows, so timing each
/// quantity in its own sequential block bakes that drift straight into
/// the reported speedups.
fn time_interleaved<const K: usize>(
    samples: usize,
    mut fs: [&mut dyn FnMut() -> f64; K],
) -> [f64; K] {
    let mut best = [f64::INFINITY; K];
    for _ in 0..samples {
        for (b, f) in best.iter_mut().zip(fs.iter_mut()) {
            *b = b.min(f());
        }
    }
    best
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`;
/// 0 where unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

struct ShapeResult {
    name: &'static str,
    n: usize,
    strategy: Strategy,
    /// `None` at huge scale, where the seed path is not run.
    seed_secs: Option<f64>,
    engine_t1_secs: f64,
    engine_t8_secs: f64,
}

impl ShapeResult {
    fn speedup_t1(&self) -> Option<f64> {
        self.seed_secs.map(|s| s / self.engine_t1_secs)
    }

    fn json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.6}"),
            None => "null".to_string(),
        };
        format!(
            "    {{\"shape\": \"{}\", \"n\": {}, \"strategy\": \"{}\", \"seed_secs\": {}, \
             \"engine_t1_secs\": {:.6}, \"engine_t8_secs\": {:.6}, \"speedup_t1\": {}, \
             \"speedup_t8\": {}}}",
            self.name,
            self.n,
            self.strategy,
            opt(self.seed_secs),
            self.engine_t1_secs,
            self.engine_t8_secs,
            opt(self.speedup_t1().map(|s| (s * 100.0).round() / 100.0)),
            opt(self
                .seed_secs
                .map(|s| ((s / self.engine_t8_secs) * 100.0).round() / 100.0)),
        )
    }
}

/// Tiny/full shapes: seed baseline + criterion groups + parity check.
fn bench_shape(c: &mut Criterion, sc: &Scale, name: &'static str, g: &Graph) -> ShapeResult {
    let n = g.node_count();
    // Consecutive ids: the batch shape of apsp_matrix / verification.
    let sources: Vec<NodeId> = (0..sc.sources.min(n) as u32).map(NodeId).collect();

    let e1 = DistanceEngine::new(g)
        .with_threads(1)
        .with_strategy(strategy_override());
    let e8 = DistanceEngine::new(g)
        .with_threads(8)
        .with_strategy(strategy_override());
    let expect = seed_batch(g, &sources);
    assert_eq!(e1.many_distances(&sources), expect, "{name}: t=1 parity");
    assert_eq!(e8.many_distances(&sources), expect, "{name}: t=8 parity");

    let mut group = c.benchmark_group(format!("distance_throughput/{name}"));
    group.sample_size(sc.samples.max(2));
    group.measurement_time(sc.measurement);
    group.bench_function("seed_path", |b| b.iter(|| seed_batch(g, &sources)));
    group.bench_function("engine_t1", |b| b.iter(|| e1.many_distances(&sources)));
    group.bench_function("engine_t8", |b| b.iter(|| e8.many_distances(&sources)));
    group.finish();

    let [seed_secs, engine_t1_secs, engine_t8_secs] = time_interleaved(
        sc.samples,
        [
            &mut || time_once(|| seed_batch(g, &sources)),
            &mut || time_once(|| e1.many_distances(&sources)),
            &mut || time_once(|| e8.many_distances(&sources)),
        ],
    );
    ShapeResult {
        name,
        n,
        strategy: e1.resolved_strategy(),
        seed_secs: Some(seed_secs),
        engine_t1_secs,
        engine_t8_secs,
    }
}

/// Huge shapes: engine built straight from a streaming-CSR generator
/// (no intermediate `Graph`), timed without a seed baseline or criterion
/// groups — the point of the tier is that the seed path cannot reach this
/// scale in reasonable time or memory.
fn bench_shape_huge(sc: &Scale, name: &'static str, engine: DistanceEngine) -> ShapeResult {
    let n = engine.node_count();
    let sources: Vec<NodeId> = (0..sc.sources.min(n) as u32).map(NodeId).collect();
    let e1 = engine
        .clone()
        .with_threads(1)
        .with_strategy(strategy_override());
    let e8 = engine.with_threads(8).with_strategy(strategy_override());
    let [engine_t1_secs, engine_t8_secs] = time_interleaved(
        sc.samples,
        [
            &mut || time_once(|| e1.many_distances(&sources)),
            &mut || time_once(|| e8.many_distances(&sources)),
        ],
    );
    println!(
        "{name}: n = {n}, strategy = {}, t1 = {engine_t1_secs:.3}s, t8 = {engine_t8_secs:.3}s",
        e1.resolved_strategy()
    );
    ShapeResult {
        name,
        n,
        strategy: e1.resolved_strategy(),
        seed_secs: None,
        engine_t1_secs,
        engine_t8_secs,
    }
}

fn main() {
    let sc = scale();
    println!(
        "distance_throughput: scale = {}, n = {}, {} sources per batch",
        sc.name, sc.n, sc.sources
    );

    let results: Vec<ShapeResult> = if sc.name == "huge" {
        vec![
            bench_shape_huge(
                &sc,
                "er",
                DistanceEngine::from_csr(generators::erdos_renyi_gnm_csr(sc.n, sc.m, 42)),
            ),
            bench_shape_huge(
                &sc,
                "grid",
                DistanceEngine::from_csr(generators::grid_csr(sc.grid_side, sc.grid_side)),
            ),
            bench_shape_huge(
                &sc,
                "torus",
                DistanceEngine::from_csr(generators::torus_csr(sc.grid_side, sc.grid_side)),
            ),
        ]
    } else {
        let er = generators::erdos_renyi_gnm(sc.n, sc.m, 42);
        let grid = generators::grid(sc.grid_side, sc.grid_side);
        let star = generators::star(sc.n);
        let mut c = Criterion::default();
        vec![
            bench_shape(&mut c, &sc, "er", &er),
            bench_shape(&mut c, &sc, "grid", &grid),
            bench_shape(&mut c, &sc, "star", &star),
        ]
    };

    for r in &results {
        if let Some(s1) = r.speedup_t1() {
            let s8 = r.seed_secs.unwrap() / r.engine_t8_secs;
            println!(
                "{}: strategy = {}, engine vs seed path {s1:.2}x at 1 thread, {s8:.2}x at 8 threads",
                r.name, r.strategy
            );
        }
    }

    let er_res = &results[0];
    let rss = peak_rss_bytes();
    let shapes: Vec<String> = results.iter().map(ShapeResult::json).collect();
    let opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.2}"),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"distance_throughput\",\n  \"scale\": \"{}\",\n  \"n\": {},\n  \
         \"sources_per_batch\": {},\n  \"er_speedup_threads1\": {},\n  \
         \"er_speedup_threads8\": {},\n  \"peak_rss_bytes\": {},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        sc.name,
        sc.n,
        sc.sources,
        opt(er_res.speedup_t1()),
        opt(er_res.seed_secs.map(|s| s / er_res.engine_t8_secs)),
        rss,
        shapes.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_distance.json");
    std::fs::write(path, json).expect("write BENCH_distance.json");
    println!("wrote {path} (peak RSS {} MiB)", rss / (1 << 20));

    // The load-bearing no-regression gate: with the adaptive engine, no
    // shape may be slower than the seed path it replaced.
    if std::env::var("DISTANCE_THROUGHPUT_ASSERT").as_deref() == Ok("1") {
        for r in &results {
            if let Some(s1) = r.speedup_t1() {
                assert!(
                    s1 >= 1.0,
                    "{}: engine regressed vs seed path (speedup_t1 = {s1:.2})",
                    r.name
                );
            }
        }
        println!("assertion passed: speedup_t1 >= 1.0 for every shape");
    }
}
