//! Distance-engine throughput: bit-parallel flat-frontier BFS vs the
//! seed-style one-BFS-per-source path.
//!
//! The seed verification/APSP hot path ran `traversal::bfs_distances` once
//! per source: a `VecDeque` walk over `Vec<Vec<NodeId>>`-shaped adjacency
//! with a fresh `Vec<Option<u32>>` per call. The engine replaces it with a
//! flat CSR and a 64-way bit-parallel multi-source BFS, so a batch of 64
//! sources costs roughly one traversal of the graph.
//!
//! Three shapes at n = 50 000 (the scale of the paper's experiments):
//! ER (m = 200 000), a 224×224 grid, and a star (diameter 2). Each timing
//! batch answers `S = 256` consecutive sources — the access pattern of
//! `apsp_matrix` and the stretch verifiers, whose batches are runs of 64
//! adjacent ids. Bit-parallelism pays when the 64 BFS waves overlap (ER,
//! star, and adjacent grid sources); widely-scattered sources on a
//! high-diameter lattice would instead degrade toward one wave per bit.
//! The acceptance target is ≥ 4× over the seed path on ER at `--threads 8`
//! and ≥ 1.5× single-threaded.
//!
//! Besides the criterion report, the bench writes `BENCH_distance.json` at
//! the repo root with the measured speedups. `DISTANCE_THROUGHPUT_SCALE=tiny`
//! shrinks everything to a seconds-scale smoke run (the CI configuration).

use std::time::{Duration, Instant};

use criterion::Criterion;
use spanner_graph::distance::UNREACHABLE;
use spanner_graph::{generators, traversal, DistanceEngine, Graph, NodeId};

struct Scale {
    n: usize,
    m: usize,
    grid_side: usize,
    sources: usize,
    samples: usize,
    measurement: Duration,
}

fn scale() -> Scale {
    match std::env::var("DISTANCE_THROUGHPUT_SCALE").as_deref() {
        Ok("tiny") => Scale {
            n: 600,
            m: 2_400,
            grid_side: 24,
            sources: 64,
            samples: 1,
            measurement: Duration::from_millis(200),
        },
        _ => Scale {
            n: 50_000,
            m: 200_000,
            grid_side: 224,
            sources: 256,
            samples: 5,
            measurement: Duration::from_secs(3),
        },
    }
}

/// The seed hot path: one queue-based BFS per source.
fn seed_batch(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let n = g.node_count();
    let mut out = Vec::with_capacity(sources.len() * n);
    for &s in sources {
        out.extend(
            traversal::bfs_distances(g, s)
                .into_iter()
                .map(|d| d.unwrap_or(UNREACHABLE)),
        );
    }
    out
}

/// Best wall-clock seconds over `samples` runs of `f` — the minimum is the
/// noise-robust estimator on a shared machine (noise only ever adds time).
fn time_best<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct ShapeResult {
    name: &'static str,
    seed_secs: f64,
    engine_t1_secs: f64,
    engine_t8_secs: f64,
}

impl ShapeResult {
    fn json(&self) -> String {
        format!(
            "    {{\"shape\": \"{}\", \"seed_secs\": {:.6}, \"engine_t1_secs\": {:.6}, \
             \"engine_t8_secs\": {:.6}, \"speedup_t1\": {:.2}, \"speedup_t8\": {:.2}}}",
            self.name,
            self.seed_secs,
            self.engine_t1_secs,
            self.engine_t8_secs,
            self.seed_secs / self.engine_t1_secs,
            self.seed_secs / self.engine_t8_secs,
        )
    }
}

fn bench_shape(c: &mut Criterion, sc: &Scale, name: &'static str, g: &Graph) -> ShapeResult {
    let n = g.node_count();
    // Consecutive ids: the batch shape of apsp_matrix / verification.
    let sources: Vec<NodeId> = (0..sc.sources.min(n) as u32).map(NodeId).collect();

    let e1 = DistanceEngine::new(g).with_threads(1);
    let e8 = DistanceEngine::new(g).with_threads(8);
    let expect = seed_batch(g, &sources);
    assert_eq!(e1.many_distances(&sources), expect, "{name}: t=1 parity");
    assert_eq!(e8.many_distances(&sources), expect, "{name}: t=8 parity");

    let mut group = c.benchmark_group(format!("distance_throughput/{name}"));
    group.sample_size(sc.samples.max(2));
    group.measurement_time(sc.measurement);
    group.bench_function("seed_path", |b| b.iter(|| seed_batch(g, &sources)));
    group.bench_function("engine_t1", |b| b.iter(|| e1.many_distances(&sources)));
    group.bench_function("engine_t8", |b| b.iter(|| e8.many_distances(&sources)));
    group.finish();

    ShapeResult {
        name,
        seed_secs: time_best(sc.samples, || seed_batch(g, &sources)),
        engine_t1_secs: time_best(sc.samples, || e1.many_distances(&sources)),
        engine_t8_secs: time_best(sc.samples, || e8.many_distances(&sources)),
    }
}

fn main() {
    let sc = scale();
    let tiny = sc.n < 50_000;
    println!(
        "distance_throughput: n = {}, {} sources per batch{}",
        sc.n,
        sc.sources,
        if tiny { " (tiny smoke scale)" } else { "" }
    );

    let er = generators::erdos_renyi_gnm(sc.n, sc.m, 42);
    let grid = generators::grid(sc.grid_side, sc.grid_side);
    let star = generators::star(sc.n);

    let mut c = Criterion::default();
    let results = [
        bench_shape(&mut c, &sc, "er", &er),
        bench_shape(&mut c, &sc, "grid", &grid),
        bench_shape(&mut c, &sc, "star", &star),
    ];

    let er_res = &results[0];
    let speedup_t1 = er_res.seed_secs / er_res.engine_t1_secs;
    let speedup_t8 = er_res.seed_secs / er_res.engine_t8_secs;
    println!("er: engine vs seed path {speedup_t1:.2}x at 1 thread, {speedup_t8:.2}x at 8 threads");

    let shapes: Vec<String> = results.iter().map(ShapeResult::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"distance_throughput\",\n  \"scale\": \"{}\",\n  \"n\": {},\n  \
         \"sources_per_batch\": {},\n  \"er_speedup_threads1\": {:.2},\n  \
         \"er_speedup_threads8\": {:.2},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        if tiny { "tiny" } else { "full" },
        sc.n,
        sc.sources,
        speedup_t1,
        speedup_t8,
        shapes.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_distance.json");
    std::fs::write(path, json).expect("write BENCH_distance.json");
    println!("wrote {path}");
}
