//! Deterministic per-node randomness.
//!
//! Each node derives an independent RNG stream from the network's master
//! seed via SplitMix64, so (a) a run is reproducible from a single `u64`,
//! (b) the streams of different nodes are statistically independent, and
//! (c) node behaviour does not depend on the scheduling order the runner
//! happens to use — a requirement for the parallel executor to agree with
//! the sequential one.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: the standard 64-bit mixer used to derive substreams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the RNG of node `node` (stream `stream`) from `master_seed`.
///
/// Distinct (node, stream) pairs yield independent-looking streams; equal
/// pairs yield identical streams.
///
/// `node` and `stream` are mixed through *separate* SplitMix64 steps rather
/// than packed into one word: the old `(node << 32) | stream` packing made
/// e.g. `(node=1, stream=0)` and `(node=0, stream=1 << 32)` collide — any
/// stream index with bits at or above bit 32 could alias another node's
/// stream. The two-step mix is injective over the full (u32, u64) domain.
pub fn node_rng(master_seed: u64, node: u32, stream: u64) -> SmallRng {
    let mut s = master_seed ^ 0xA076_1D64_78BD_642F;
    let a = splitmix64(&mut s);
    let mut t = a ^ (node as u64);
    let b = splitmix64(&mut t);
    let mut u = b ^ stream;
    let seed = splitmix64(&mut u) ^ splitmix64(&mut u);
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = node_rng(1, 2, 3);
        let mut b = node_rng(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_nodes_differ() {
        let mut a = node_rng(1, 2, 0);
        let mut b = node_rng(1, 3, 0);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = node_rng(1, 2, 0);
        let mut b = node_rng(1, 2, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = node_rng(1, 2, 3);
        let mut b = node_rng(4, 2, 3);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    /// Regression: the pre-fix `(node << 32) | stream` packing made these
    /// (node, stream) pairs produce byte-identical RNGs.
    #[test]
    fn wide_stream_indices_do_not_alias_nodes() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let mut a = node_rng(seed, 1, 0);
            let mut b = node_rng(seed, 0, 1u64 << 32);
            let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
            let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
            assert_ne!(xs, ys, "seed {seed}");

            let mut c = node_rng(seed, 7, 5);
            let mut d = node_rng(seed, 0, (7u64 << 32) | 5);
            assert_ne!(c.gen::<u64>(), d.gen::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for state 0 (well-known SplitMix64 test vector).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
    }
}
