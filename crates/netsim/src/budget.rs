//! Message-length budgets.
//!
//! The paper pins down the precise message length of each algorithm in
//! units of O(log n) bits (a *word*): unit-length messages (CONGEST),
//! O(log^ε n) words (Theorem 2), O(n^{1/t}) words (Theorem 8), or unbounded
//! (LOCAL). [`MessageBudget`] captures this knob; the runner rejects a send
//! exceeding the budget with a [`BudgetViolation`], which makes accidental
//! over-long messages a hard error in tests rather than a silent model
//! violation.

use std::fmt;

use spanner_graph::NodeId;

/// Maximum allowed message length in words of O(log n) bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageBudget {
    /// No limit (Peleg's LOCAL model).
    Unbounded,
    /// At most this many words per message (`Words(1)` is CONGEST).
    Words(usize),
}

impl MessageBudget {
    /// The standard CONGEST budget: unit-length messages.
    pub const CONGEST: MessageBudget = MessageBudget::Words(1);

    /// Whether a message of `words` words fits the budget.
    pub fn allows(self, words: usize) -> bool {
        match self {
            MessageBudget::Unbounded => true,
            MessageBudget::Words(w) => words <= w,
        }
    }

    /// The word limit, or `None` if unbounded.
    pub fn limit(self) -> Option<usize> {
        match self {
            MessageBudget::Unbounded => None,
            MessageBudget::Words(w) => Some(w),
        }
    }

    /// The budget `Words(⌈log^eps n⌉)` used by Theorem 2, at least 1 word.
    pub fn log_pow(n: usize, eps: f64) -> MessageBudget {
        let w = (n.max(2) as f64).log2().powf(eps).ceil() as usize;
        MessageBudget::Words(w.max(1))
    }

    /// The budget `Words(⌈n^{1/t}⌉)` used by Theorem 8, at least 1 word.
    pub fn root_pow(n: usize, t: u32) -> MessageBudget {
        assert!(t >= 1, "t must be at least 1");
        let w = (n.max(2) as f64).powf(1.0 / t as f64).ceil() as usize;
        MessageBudget::Words(w.max(1))
    }
}

impl fmt::Display for MessageBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageBudget::Unbounded => write!(f, "unbounded"),
            MessageBudget::Words(w) => write!(f, "{w} words"),
        }
    }
}

/// A send that exceeded the message budget: reported as a hard error by the
/// runner, identifying the offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetViolation {
    /// The sending node.
    pub sender: NodeId,
    /// The receiving node.
    pub receiver: NodeId,
    /// The round in which the send happened.
    pub round: u32,
    /// The message length in words.
    pub words: usize,
    /// The budget in force.
    pub budget: MessageBudget,
}

impl fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "message of {} words from {} to {} in round {} exceeds budget of {}",
            self.words, self.sender, self.receiver, self.round, self.budget
        )
    }
}

impl std::error::Error for BudgetViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_allows_everything() {
        assert!(MessageBudget::Unbounded.allows(usize::MAX));
        assert_eq!(MessageBudget::Unbounded.limit(), None);
    }

    #[test]
    fn words_budget() {
        let b = MessageBudget::Words(4);
        assert!(b.allows(4));
        assert!(!b.allows(5));
        assert_eq!(b.limit(), Some(4));
        assert_eq!(MessageBudget::CONGEST, MessageBudget::Words(1));
    }

    #[test]
    fn log_pow_monotone() {
        let a = MessageBudget::log_pow(1 << 10, 0.5).limit().unwrap();
        let b = MessageBudget::log_pow(1 << 20, 0.5).limit().unwrap();
        assert!(a <= b);
        assert!(a >= 1);
        // log2(2^20)=20, 20^0.5 ~ 4.47 -> 5
        assert_eq!(b, 5);
    }

    #[test]
    fn root_pow_values() {
        assert_eq!(MessageBudget::root_pow(10_000, 2).limit(), Some(100));
        assert_eq!(MessageBudget::root_pow(10_000, 4).limit(), Some(10));
        // tiny n still gives at least 1
        assert!(MessageBudget::root_pow(2, 30).limit().unwrap() >= 1);
    }

    #[test]
    fn violation_display() {
        let v = BudgetViolation {
            sender: NodeId(1),
            receiver: NodeId(2),
            round: 3,
            words: 9,
            budget: MessageBudget::Words(4),
        };
        let s = v.to_string();
        assert!(s.contains("9 words"));
        assert!(s.contains("round 3"));
    }
}
