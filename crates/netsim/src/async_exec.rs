//! The event-driven asynchronous executor.
//!
//! The paper's model (and the [`Network`](crate::Network) /
//! [`ParallelNetwork`](crate::ParallelNetwork) executors) is perfectly
//! synchronous: messages sent in round `r` arrive at the start of round
//! `r + 1`. Real links deliver with per-hop latency. [`AsyncNetwork`] runs
//! the **same unchanged [`Protocol`] state machines** on such links by
//! pairing a discrete-event scheduler with a *synchronizer* — the classic
//! construction (Awerbuch's α-synchronizer, and the skeleton-based variant
//! of Bitton et al., "Message Reduction in the Local Model is a Free
//! Lunch", arXiv:1909.08369) that recovers round numbers from an
//! asynchronous execution.
//!
//! # Event model
//!
//! Simulated time is a `u64` tick counter. Every message — protocol or
//! synchronizer — handed to a link at time `t` arrives at
//! `t + latency(edge, t)`, where the latency is the **pure hash** of
//! `(delay-plan seed, edge, send time)` computed by
//! [`FaultPlan::link_latency`]: at least one tick, plus the plan's
//! `delay=p:d` clause worth of extra ticks. The empty plan is the
//! unit-latency ("zero-delay") model. Arrivals are processed from a binary
//! heap ordered by `(time, sender, seq)` — `seq` is a global schedule
//! counter, so ties resolve stably and the whole execution is
//! deterministic and thread-count-independent by construction.
//!
//! # Synchronizers
//!
//! After a node finishes protocol round `r` it must not start `r + 1`
//! until every round-`r` message addressed to it has arrived. Both
//! variants detect this with per-message acknowledgements: a receiver acks
//! each protocol message on arrival, and a node is *safe* for round `r`
//! once all its round-`r` sends are acked (a node that sent nothing is
//! safe immediately).
//!
//! * [`Synchronizer::Alpha`] — every safe node broadcasts SAFE to all its
//!   graph neighbors; a node starts round `r + 1` once it is safe and has
//!   heard SAFE from every neighbor. Overhead per round: one ack per
//!   protocol message plus one SAFE per directed edge (≈ 2·|E|).
//! * [`Synchronizer::Skeleton`] — the safety acknowledgements are routed
//!   over a built spanner instead of the full graph: safe reports
//!   convergecast up a BFS tree of the skeleton to its root, which
//!   broadcasts the next-round PULSE back down. Overhead per round: one
//!   ack per protocol message plus 2·(n − 1) tree messages — the Bitton et
//!   al. transformation: same round complexity, measurably fewer messages
//!   (at the price of tree-depth extra latency per round).
//!
//! Synchronizer traffic is accounted separately
//! ([`RunMetrics::sync_messages`], plus one
//! [`RunMetrics::events`] per arrival and the
//! [`RunMetrics::sim_time`] horizon); protocol-level
//! rounds/messages/words stay exactly the round-synchronous executors'
//! numbers.
//!
//! # Determinism and parity
//!
//! Because the synchronizer recovers exact round semantics, the protocol
//! execution — inboxes (sender-sorted), RNG streams, budget checks, trace
//! stream — is *identical* to the sequential executor's for every delay
//! plan: the executor runs each recovered round's protocol calls in global
//! node order, exactly like [`Network`](crate::Network), while the event
//! heap computes when each node's round fires and what the synchronizer
//! costs. Two simplifications are sound for this reason and do not change
//! event times or counts: control messages carry no round tags (each
//! round's events fully drain before the next round executes), and
//! termination uses the simulator's global quiescence test rather than a
//! distributed termination-detection protocol (documented deviation; a
//! deployment would run one on top).
//!
//! # Example
//!
//! ```
//! use spanner_graph::generators;
//! use spanner_netsim::{
//!     patterns::FloodProtocol, AsyncNetwork, FaultPlan, MessageBudget,
//! };
//!
//! let g = generators::cycle(16);
//! let delays = FaultPlan::new(7).with_delays(0.3, 4);
//! let mut net = AsyncNetwork::new(&g, MessageBudget::CONGEST, 42).with_delays(delays);
//! let states = net
//!     .run(|v, _| FloodProtocol::new(v.0 == 0, 8), 64)
//!     .expect("flood terminates");
//! assert!(states.iter().all(|s| s.reached()));
//! // Same protocol cost as the synchronous run, plus synchronizer traffic.
//! let m = net.metrics();
//! assert!(m.sync_messages > 0 && m.sim_time > m.rounds as u64);
//! assert_eq!(m.events, m.messages + m.sync_messages);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::SmallRng;

use spanner_graph::{Graph, NodeId};

use crate::budget::{BudgetViolation, MessageBudget};
use crate::csr::CsrAdjacency;
use crate::faults::FaultPlan;
use crate::metrics::RunMetrics;
use crate::rng::node_rng;
use crate::sync::{scatter, Ctx, MessageSize, Protocol, RunError};
use crate::trace::{NullSink, PhaseAction, TraceSink, Tracer};

/// How round safety is disseminated between protocol rounds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Synchronizer {
    /// Awerbuch's α-synchronizer: SAFE is broadcast to every graph
    /// neighbor. Overhead ≈ one ack per protocol message + 2·|E| per round.
    #[default]
    Alpha,
    /// The Bitton et al. skeleton synchronizer: safety convergecasts up a
    /// BFS tree of the given spanning subgraph (normally a built spanner)
    /// and the next-round pulse broadcasts back down. Overhead ≈ one ack
    /// per protocol message + 2·(n − 1) per round.
    ///
    /// Every listed edge must be a graph edge, and the subgraph must span
    /// and connect all nodes (checked at run start).
    Skeleton(Vec<(NodeId, NodeId)>),
}

impl Synchronizer {
    /// The skeleton synchronizer over an edge-id set, resolving endpoints
    /// through `g` (convenience for `Spanner::edges`-style sets).
    pub fn skeleton_of<I: IntoIterator<Item = spanner_graph::EdgeId>>(
        g: &Graph,
        edges: I,
    ) -> Synchronizer {
        Synchronizer::Skeleton(edges.into_iter().map(|e| g.endpoints(e)).collect())
    }
}

/// One scheduled arrival. Heap order is `(time, sender, seq)` ascending —
/// `Ord` looks only at that key, never the payload.
struct Event<M> {
    time: u64,
    sender: u32,
    seq: u64,
    kind: EventKind<M>,
}

enum EventKind<M> {
    /// A protocol message arriving at `to`.
    Proto {
        to: NodeId,
        from: NodeId,
        msg: M,
        words: usize,
    },
    /// An acknowledgement arriving back at the original sender `to`.
    Ack { to: NodeId },
    /// An α-synchronizer SAFE arriving at `to`.
    Safe { to: NodeId },
    /// A skeleton-tree safety report arriving at parent `to`.
    Converge { to: NodeId },
    /// A skeleton-tree next-round pulse arriving at child `to`.
    Pulse { to: NodeId },
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.sender, self.seq) == (other.time, other.sender, other.seq)
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    /// Reversed so the std max-heap pops the *smallest* key first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.sender, other.seq).cmp(&(self.time, self.sender, self.seq))
    }
}

/// The skeleton synchronizer's BFS tree. Children live in one flat arena
/// with per-node offsets (a tree has at most `n - 1` child slots total).
struct SyncTree {
    parent: Vec<Option<NodeId>>,
    children_flat: Vec<NodeId>,
    children_off: Vec<u32>,
    root: NodeId,
}

impl SyncTree {
    /// BFS tree (root 0, neighbor lists ascending) of the skeleton edges.
    ///
    /// Panics if an edge is not a graph edge or the subgraph does not
    /// connect all nodes — the synchronizer's pulse must reach everyone.
    fn build(adjacency: &CsrAdjacency, edges: &[(NodeId, NodeId)]) -> SyncTree {
        let n = adjacency.node_count();
        // Skeleton adjacency as a flat half-edge arena (counting scatter,
        // then per-run sort + dedup) instead of per-node `Vec` growth; the
        // BFS below visits neighbors ascending exactly as before.
        let mut off: Vec<u32> = vec![0; n + 1];
        for &(a, b) in edges {
            assert!(
                adjacency.neighbors(a).binary_search(&b).is_ok(),
                "skeleton synchronizer edge ({a}, {b}) is not a graph edge"
            );
            off[a.index() + 1] += 1;
            off[b.index() + 1] += 1;
        }
        for v in 0..n {
            off[v + 1] += off[v];
        }
        let mut flat: Vec<NodeId> = vec![NodeId(0); off[n] as usize];
        let mut cursor: Vec<u32> = off[..n].to_vec();
        for &(a, b) in edges {
            flat[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            flat[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        // Deduplicate each sorted run in place; `deg[v]` is the effective
        // (deduped) length of node `v`'s run.
        let mut deg: Vec<u32> = vec![0; n];
        for v in 0..n {
            let run = &mut flat[off[v] as usize..off[v + 1] as usize];
            run.sort_unstable();
            let mut k = 0usize;
            for i in 0..run.len() {
                if i == 0 || run[i] != run[i - 1] {
                    let w = run[i];
                    run[k] = w;
                    k += 1;
                }
            }
            deg[v] = k as u32;
        }
        let root = NodeId(0);
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut frontier = std::collections::VecDeque::from([root]);
        if n > 0 {
            visited[0] = true;
        }
        // Genuine breadth-first order: the tree's depth — which bounds the
        // skeleton synchronizer's per-round latency — is the subgraph's
        // eccentricity from the root, not a DFS path length.
        while let Some(v) = frontier.pop_front() {
            let lo = off[v.index()] as usize;
            for &w in &flat[lo..lo + deg[v.index()] as usize] {
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    parent[w.index()] = Some(v);
                    frontier.push_back(w);
                }
            }
        }
        assert!(
            visited.iter().all(|&b| b),
            "skeleton synchronizer requires a spanning connected subgraph"
        );
        // Children as a flat arena: counting scatter over ascending child
        // ids leaves every node's child run sorted for free.
        let mut children_off: Vec<u32> = vec![0; n + 1];
        for p in parent.iter().flatten() {
            children_off[p.index() + 1] += 1;
        }
        for v in 0..n {
            children_off[v + 1] += children_off[v];
        }
        let mut children_flat: Vec<NodeId> = vec![NodeId(0); children_off[n] as usize];
        let mut ccursor: Vec<u32> = children_off[..n].to_vec();
        for (w, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children_flat[ccursor[p.index()] as usize] = NodeId(w as u32);
                ccursor[p.index()] += 1;
            }
        }
        SyncTree {
            parent,
            children_flat,
            children_off,
            root,
        }
    }

    /// Node `v`'s tree children, ascending.
    fn children(&self, v: NodeId) -> &[NodeId] {
        let lo = self.children_off[v.index()] as usize;
        let hi = self.children_off[v.index() + 1] as usize;
        &self.children_flat[lo..hi]
    }
}

/// Per-round synchronizer scratch, reset each recovered round.
struct SyncState {
    /// Unacked sends of the executing round, per node.
    pending_acks: Vec<u32>,
    /// Outstanding start conditions per node. α: `deg + 1` (own safety +
    /// one SAFE per neighbor). Skeleton: `children + 1` (own safety + one
    /// CONVERGE per child) — pulses bypass this counter.
    need: Vec<u32>,
    /// When each node may start the next round (set once all conditions
    /// are met, or by the tree pulse).
    start: Vec<Option<u64>>,
}

impl SyncState {
    fn new(n: usize) -> SyncState {
        SyncState {
            pending_acks: vec![0; n],
            need: vec![0; n],
            start: vec![None; n],
        }
    }
}

/// An event-driven asynchronous network over a graph.
///
/// Construct once per run, like [`Network`](crate::Network); configure the
/// delay model with [`AsyncNetwork::with_delays`] and the synchronizer
/// with [`AsyncNetwork::with_synchronizer`]. See the
/// [module docs](crate::async_exec) for the execution model and the parity
/// guarantees.
/// Like the round-synchronous executors, the topology is one `Arc`'d
/// [`CsrAdjacency`]; [`AsyncNetwork::from_csr`] runs straight off a
/// streamed adjacency with no [`Graph`] ever materialized.
pub struct AsyncNetwork {
    budget: MessageBudget,
    seed: u64,
    metrics: RunMetrics,
    adjacency: Arc<CsrAdjacency>,
    /// Delay model; only the plan's delay clause (and scope) is consulted.
    delays: FaultPlan,
    synchronizer: Synchronizer,
    trace_deliveries: bool,
}

impl AsyncNetwork {
    /// An asynchronous network on `graph` with unit link latency and the
    /// α-synchronizer.
    pub fn new(graph: &Graph, budget: MessageBudget, seed: u64) -> Self {
        AsyncNetwork::from_csr(Arc::new(CsrAdjacency::from_graph(graph)), budget, seed)
    }

    /// An asynchronous network straight over a shared CSR adjacency — the
    /// zero-`Graph` construction path. Runs are byte-identical (states,
    /// metrics, traces) to an [`AsyncNetwork::new`] over the equivalent
    /// graph.
    pub fn from_csr(adjacency: Arc<CsrAdjacency>, budget: MessageBudget, seed: u64) -> Self {
        AsyncNetwork {
            budget,
            seed,
            metrics: RunMetrics::default(),
            adjacency,
            delays: FaultPlan::default(),
            synchronizer: Synchronizer::Alpha,
            trace_deliveries: false,
        }
    }

    /// Draws per-link latencies from `plan`'s delay machinery (see
    /// [`FaultPlan::link_latency`]). Only the delay clause and scope are
    /// consulted — drops, duplicates, crashes, and stutters are the
    /// round-synchronous fault engine's domain.
    pub fn with_delays(mut self, plan: FaultPlan) -> Self {
        self.delays = plan;
        self
    }

    /// Selects the synchronizer variant (default: [`Synchronizer::Alpha`]).
    pub fn with_synchronizer(mut self, synchronizer: Synchronizer) -> Self {
        self.synchronizer = synchronizer;
        self
    }

    /// Emits one [`Deliver`](crate::TraceEvent::Deliver) trace event per
    /// protocol message arrival on traced runs. Off by default, keeping
    /// default trace streams byte-identical to the round-synchronous
    /// executors'.
    pub fn with_delivery_trace(mut self, enabled: bool) -> Self {
        self.trace_deliveries = enabled;
        self
    }

    /// The shared sorted adjacency.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// A clone of the `Arc` holding the adjacency, for sharing with other
    /// executors, drivers, or verification passes.
    pub fn adjacency_arc(&self) -> Arc<CsrAdjacency> {
        Arc::clone(&self.adjacency)
    }

    /// The message budget in force (protocol messages only; synchronizer
    /// control traffic is O(1) words by construction).
    pub fn budget(&self) -> MessageBudget {
        self.budget
    }

    /// The delay plan in force.
    pub fn delay_plan(&self) -> &FaultPlan {
        &self.delays
    }

    /// The synchronizer variant in force.
    pub fn synchronizer(&self) -> &Synchronizer {
        &self.synchronizer
    }

    /// Cost accounting of the most recent run: the protocol-level counters
    /// equal the round-synchronous executors' exactly, plus
    /// [`events`](RunMetrics::events),
    /// [`sync_messages`](RunMetrics::sync_messages), and
    /// [`sim_time`](RunMetrics::sim_time).
    pub fn metrics(&self) -> RunMetrics {
        self.metrics
    }

    /// Runs `factory`-created protocols to quiescence, event-driven.
    ///
    /// Mirrors [`Network::run`](crate::Network::run): same factory
    /// contract, same quiescence and round-cap semantics, same final
    /// states for the same graph and seed.
    ///
    /// # Errors
    ///
    /// [`RunError::RoundLimit`] if not quiescent within `max_rounds`
    /// protocol rounds; [`RunError::Budget`] if any protocol message
    /// exceeds the budget — with partial accounting identical to the
    /// sequential executor's.
    pub fn run<P, F>(&mut self, factory: F, max_rounds: u32) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        self.run_traced(factory, max_rounds, &mut NullSink)
    }

    /// Like [`AsyncNetwork::run`], streaming
    /// [`TraceEvent`](crate::TraceEvent)s into `sink`.
    ///
    /// Without delivery tracing the stream is byte-identical to
    /// [`Network::run_traced`](crate::Network::run_traced)'s for the same
    /// run (asserted in `tests/executor_parity.rs`); with
    /// [`AsyncNetwork::with_delivery_trace`] each protocol arrival
    /// additionally appears as a `Deliver` record after its send round.
    ///
    /// # Errors
    ///
    /// Same as [`AsyncNetwork::run`].
    pub fn run_traced<P, F>(
        &mut self,
        factory: F,
        max_rounds: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        let mut tracer = Tracer::new(sink);
        let result = self.run_inner(factory, max_rounds, &mut tracer);
        tracer.finish(&self.metrics, result.as_ref().err());
        result
    }

    fn run_inner<P, F>(
        &mut self,
        mut factory: F,
        max_rounds: u32,
        tracer: &mut Tracer<'_>,
    ) -> Result<Vec<P>, RunError>
    where
        P: Protocol,
        F: FnMut(NodeId, &mut SmallRng) -> P,
    {
        let n = self.adjacency.node_count();
        self.metrics = RunMetrics::default();
        let traced = tracer.enabled();
        let tree = match &self.synchronizer {
            Synchronizer::Alpha => None,
            Synchronizer::Skeleton(edges) => Some(SyncTree::build(&self.adjacency, edges)),
        };

        let mut rngs: Vec<SmallRng> = (0..n as u32).map(|v| node_rng(self.seed, v, 0)).collect();
        let mut nodes: Vec<P> = (0..n as u32)
            .map(|v| factory(NodeId(v), &mut rngs[v as usize]))
            .collect();

        let mut heap: BinaryHeap<Event<P::Msg>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut horizon: u64 = 0;
        // The local time at which each node executes the current round.
        let mut exec_time: Vec<u64> = vec![0; n];
        // Arrivals for the next round, staged as (receiver, sender, msg) in
        // arrival order, then counting-scattered into one flat arena whose
        // per-receiver slices are sorted by sender before delivery (one
        // message per sender per round) — the same arena discipline as the
        // sequential executor, with no per-node `Vec` growth.
        let mut staging: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();
        let mut flat: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut offsets: Vec<u32> = vec![0; n + 1];
        let mut cursor: Vec<u32> = vec![0; n];
        let mut sync = SyncState::new(n);
        let mut in_flight: u64 = 0;

        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut seen = vec![0u64; n];
        let mut stamp = 0u64;
        let mut phase_actions: Vec<PhaseAction> = Vec::new();

        // Init phase (round 0), in global node order — exactly like the
        // sequential executor, so RNG streams, budget checks, and the
        // protocol trace stream agree byte-for-byte.
        if traced {
            tracer.begin_round(0);
        }
        for v in 0..n {
            let node = NodeId(v as u32);
            outbox.clear();
            stamp += 1;
            {
                let mut ctx = Ctx::new_for_executor(
                    node,
                    n,
                    0,
                    self.adjacency.neighbors(node),
                    &mut rngs[v],
                    &mut outbox,
                    &mut seen,
                    stamp,
                    &mut phase_actions,
                    traced,
                );
                nodes[v].init(&mut ctx);
            }
            if traced {
                tracer.apply_actions(&mut phase_actions);
            }
            flush(
                &mut self.metrics,
                self.budget,
                &self.delays,
                node,
                0,
                exec_time[v],
                &mut outbox,
                &mut heap,
                &mut seq,
                &mut sync.pending_acks,
                &mut in_flight,
                tracer,
                traced,
            )?;
        }
        if traced {
            tracer.end_round();
        }

        let mut round: u32 = 0;
        loop {
            // Quiescence test, identical to the sequential executor's: no
            // protocol messages in flight and every node content to stop.
            if in_flight == 0 && nodes.iter().all(Protocol::done) {
                break;
            }
            if round >= max_rounds {
                return Err(RunError::RoundLimit { max_rounds });
            }

            // Drain round `round`'s events: protocol arrivals fill the
            // next inboxes; ack/safety traffic determines when each node
            // may start round `round + 1`.
            self.drain_round(
                round,
                &mut heap,
                &mut seq,
                &mut horizon,
                &mut staging,
                &mut sync,
                &mut in_flight,
                &exec_time,
                tree.as_ref(),
                tracer,
                traced,
            );
            scatter(&mut staging, &mut flat, &mut offsets, &mut cursor);
            for (v, t) in exec_time.iter_mut().enumerate() {
                *t = sync.start[v].expect("synchronizer delivered a start time");
                horizon = horizon.max(*t);
            }
            self.metrics.sim_time = horizon;

            round += 1;
            self.metrics.rounds = round;
            if traced {
                tracer.begin_round(round);
            }
            for v in 0..n {
                let node = NodeId(v as u32);
                let inbox = &mut flat[offsets[v] as usize..offsets[v + 1] as usize];
                // Arrival order is delay-dependent; sorting by sender
                // restores the synchronous inbox order.
                inbox.sort_unstable_by_key(|&(s, _)| s);
                outbox.clear();
                stamp += 1;
                {
                    let mut ctx = Ctx::new_for_executor(
                        node,
                        n,
                        round,
                        self.adjacency.neighbors(node),
                        &mut rngs[v],
                        &mut outbox,
                        &mut seen,
                        stamp,
                        &mut phase_actions,
                        traced,
                    );
                    nodes[v].round(&mut ctx, inbox);
                }
                if traced {
                    tracer.apply_actions(&mut phase_actions);
                }
                flush(
                    &mut self.metrics,
                    self.budget,
                    &self.delays,
                    node,
                    round,
                    exec_time[v],
                    &mut outbox,
                    &mut heap,
                    &mut seq,
                    &mut sync.pending_acks,
                    &mut in_flight,
                    tracer,
                    traced,
                )?;
            }
            if traced {
                tracer.end_round();
            }
        }

        self.metrics.sim_time = horizon;
        Ok(nodes)
    }

    /// Processes every event of the round just executed: delivers protocol
    /// messages, runs the synchronizer state machines, and computes each
    /// node's next-round start time. The heap is empty on return.
    #[allow(clippy::too_many_arguments)]
    fn drain_round<M: MessageSize>(
        &mut self,
        round: u32,
        heap: &mut BinaryHeap<Event<M>>,
        seq: &mut u64,
        horizon: &mut u64,
        staging: &mut Vec<(NodeId, NodeId, M)>,
        sync: &mut SyncState,
        in_flight: &mut u64,
        exec_time: &[u64],
        tree: Option<&SyncTree>,
        tracer: &mut Tracer<'_>,
        traced: bool,
    ) {
        let n = self.adjacency.node_count();
        for v in 0..n {
            sync.need[v] = match tree {
                None => self.adjacency.neighbors(NodeId(v as u32)).len() as u32 + 1,
                Some(t) => t.children(NodeId(v as u32)).len() as u32 + 1,
            };
            sync.start[v] = None;
        }
        // Nodes that sent nothing this round are safe at their own send
        // time; seed their safety in node order before draining.
        for (v, &t) in exec_time.iter().enumerate() {
            if sync.pending_acks[v] == 0 {
                self.node_safe(NodeId(v as u32), t, heap, seq, sync, tree);
            }
        }
        while let Some(ev) = heap.pop() {
            self.metrics.events += 1;
            *horizon = (*horizon).max(ev.time);
            match ev.kind {
                EventKind::Proto {
                    to,
                    from,
                    msg,
                    words,
                } => {
                    if traced && self.trace_deliveries {
                        tracer.on_deliver(ev.time, round, from.0, to.0, words as u64);
                    }
                    staging.push((to, from, msg));
                    *in_flight -= 1;
                    // Ack back over the same link.
                    let lat = self.delays.link_latency(ev.time, to, from);
                    self.metrics.sync_messages += 1;
                    push(heap, seq, ev.time + lat, to, EventKind::Ack { to: from });
                }
                EventKind::Ack { to } => {
                    sync.pending_acks[to.index()] -= 1;
                    if sync.pending_acks[to.index()] == 0 {
                        self.node_safe(to, ev.time, heap, seq, sync, tree);
                    }
                }
                EventKind::Safe { to } => {
                    sync.need[to.index()] -= 1;
                    if sync.need[to.index()] == 0 {
                        sync.start[to.index()] = Some(ev.time);
                    }
                }
                EventKind::Converge { to } => {
                    sync.need[to.index()] -= 1;
                    if sync.need[to.index()] == 0 {
                        self.node_converged(
                            to,
                            ev.time,
                            heap,
                            seq,
                            sync,
                            tree.expect("converge implies tree"),
                        );
                    }
                }
                EventKind::Pulse { to } => {
                    sync.start[to.index()] = Some(ev.time);
                    let t = tree.expect("pulse implies tree");
                    for &c in t.children(to) {
                        let lat = self.delays.link_latency(ev.time, to, c);
                        self.metrics.sync_messages += 1;
                        push(heap, seq, ev.time + lat, to, EventKind::Pulse { to: c });
                    }
                }
            }
        }
    }

    /// Node `v` became safe (all its round sends acked) at time `t`:
    /// α broadcasts SAFE to the graph neighbors; the skeleton variant
    /// counts it toward `v`'s own converge condition.
    fn node_safe<M>(
        &mut self,
        v: NodeId,
        t: u64,
        heap: &mut BinaryHeap<Event<M>>,
        seq: &mut u64,
        sync: &mut SyncState,
        tree: Option<&SyncTree>,
    ) {
        match tree {
            None => {
                sync.need[v.index()] -= 1;
                if sync.need[v.index()] == 0 {
                    sync.start[v.index()] = Some(t);
                }
                for i in 0..self.adjacency.neighbors(v).len() {
                    let u = self.adjacency.neighbors(v)[i];
                    let lat = self.delays.link_latency(t, v, u);
                    self.metrics.sync_messages += 1;
                    push(heap, seq, t + lat, v, EventKind::Safe { to: u });
                }
            }
            Some(tr) => {
                sync.need[v.index()] -= 1;
                if sync.need[v.index()] == 0 {
                    self.node_converged(v, t, heap, seq, sync, tr);
                }
            }
        }
    }

    /// Node `v` and its whole subtree are safe at time `t`: report up, or
    /// — at the root — release the next-round pulse down the tree.
    fn node_converged<M>(
        &mut self,
        v: NodeId,
        t: u64,
        heap: &mut BinaryHeap<Event<M>>,
        seq: &mut u64,
        sync: &mut SyncState,
        tree: &SyncTree,
    ) {
        match tree.parent[v.index()] {
            Some(p) => {
                let lat = self.delays.link_latency(t, v, p);
                self.metrics.sync_messages += 1;
                push(heap, seq, t + lat, v, EventKind::Converge { to: p });
            }
            None => {
                debug_assert_eq!(v, tree.root);
                sync.start[v.index()] = Some(t);
                for &c in tree.children(v) {
                    let lat = self.delays.link_latency(t, v, c);
                    self.metrics.sync_messages += 1;
                    push(heap, seq, t + lat, v, EventKind::Pulse { to: c });
                }
            }
        }
    }
}

fn push<M>(
    heap: &mut BinaryHeap<Event<M>>,
    seq: &mut u64,
    time: u64,
    sender: NodeId,
    kind: EventKind<M>,
) {
    heap.push(Event {
        time,
        sender: sender.0,
        seq: *seq,
        kind,
    });
    *seq += 1;
}

/// Validates one node's outbox and schedules its deliveries — the exact
/// accounting sequence of the sequential executor's flush (budget check,
/// metrics, trace, in global sender order), plus the event scheduling.
#[allow(clippy::too_many_arguments)]
fn flush<M: MessageSize>(
    metrics: &mut RunMetrics,
    budget: MessageBudget,
    delays: &FaultPlan,
    sender: NodeId,
    round: u32,
    send_time: u64,
    outbox: &mut Vec<(NodeId, M)>,
    heap: &mut BinaryHeap<Event<M>>,
    seq: &mut u64,
    pending_acks: &mut [u32],
    in_flight: &mut u64,
    tracer: &mut Tracer<'_>,
    traced: bool,
) -> Result<(), RunError> {
    if traced {
        tracer.on_outbox(outbox.len());
    }
    for (to, msg) in outbox.drain(..) {
        let words = msg.words();
        if !budget.allows(words) {
            return Err(RunError::Budget(BudgetViolation {
                sender,
                receiver: to,
                round,
                words,
                budget,
            }));
        }
        metrics.messages += 1;
        metrics.words += words as u64;
        metrics.max_message_words = metrics.max_message_words.max(words);
        if traced {
            tracer.on_message(words);
        }
        let lat = delays.link_latency(send_time, sender, to);
        pending_acks[sender.index()] += 1;
        *in_flight += 1;
        push(
            heap,
            seq,
            send_time + lat,
            sender,
            EventKind::Proto {
                to,
                from: sender,
                msg,
                words,
            },
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::FloodProtocol;
    use crate::Network;
    use spanner_graph::generators;

    fn flood_states(states: &[FloodProtocol]) -> Vec<(bool, Option<u32>)> {
        states.iter().map(|s| (s.reached(), s.dist())).collect()
    }

    #[test]
    fn unit_latency_alpha_matches_sequential() {
        let g = generators::connected_gnm(40, 100, 3);
        let radius = 40;
        let mut sync_net = Network::new(&g, MessageBudget::CONGEST, 5);
        let seq = sync_net
            .run(|v, _| FloodProtocol::new(v.0 == 0, radius), 200)
            .unwrap();
        let mut anet = AsyncNetwork::new(&g, MessageBudget::CONGEST, 5);
        let a = anet
            .run(|v, _| FloodProtocol::new(v.0 == 0, radius), 200)
            .unwrap();
        assert_eq!(flood_states(&seq), flood_states(&a));
        assert_eq!(sync_net.metrics(), anet.metrics().protocol_only());
        let m = anet.metrics();
        assert_eq!(m.events, m.messages + m.sync_messages);
        assert!(m.sim_time >= m.rounds as u64);
    }

    #[test]
    fn delayed_runs_recover_round_semantics() {
        let g = generators::connected_gnm(30, 70, 9);
        let mut sync_net = Network::new(&g, MessageBudget::CONGEST, 2);
        let seq = sync_net
            .run(|v, _| FloodProtocol::new(v.0 == 0, 30), 200)
            .unwrap();
        for dseed in [1u64, 2, 3] {
            let delays = FaultPlan::new(dseed).with_delays(0.5, 5);
            let mut anet = AsyncNetwork::new(&g, MessageBudget::CONGEST, 2).with_delays(delays);
            let a = anet
                .run(|v, _| FloodProtocol::new(v.0 == 0, 30), 200)
                .unwrap();
            assert_eq!(flood_states(&seq), flood_states(&a), "delay seed {dseed}");
            assert_eq!(
                sync_net.metrics(),
                anet.metrics().protocol_only(),
                "delay seed {dseed}"
            );
        }
    }

    #[test]
    fn skeleton_synchronizer_sends_fewer_messages() {
        // Dense graph, sparse spanning tree as the "skeleton".
        let g = generators::connected_gnm(48, 300, 11);
        let tree_edges: Vec<(NodeId, NodeId)> = {
            // Any spanning connected subgraph works; use a BFS tree.
            let csr = CsrAdjacency::from_graph(&g);
            let t = SyncTree::build(&csr, &g.edges().map(|(_, a, b)| (a, b)).collect::<Vec<_>>());
            (0..g.node_count())
                .filter_map(|v| t.parent[v].map(|p| (NodeId(v as u32), p)))
                .collect()
        };
        let delays = FaultPlan::new(4).with_delays(0.3, 3);
        let run = |synchronizer: Synchronizer| {
            let mut net = AsyncNetwork::new(&g, MessageBudget::CONGEST, 7)
                .with_delays(delays.clone())
                .with_synchronizer(synchronizer);
            let states = net
                .run(|v, _| FloodProtocol::new(v.0 == 0, 48), 300)
                .unwrap();
            assert!(states.iter().all(FloodProtocol::reached));
            net.metrics()
        };
        let alpha = run(Synchronizer::Alpha);
        let skel = run(Synchronizer::Skeleton(tree_edges));
        // Same recovered round complexity and protocol traffic...
        assert_eq!(alpha.protocol_only(), skel.protocol_only());
        // ...with measurably fewer synchronizer messages over the tree.
        assert!(
            skel.sync_messages < alpha.sync_messages,
            "tree {} vs alpha {}",
            skel.sync_messages,
            alpha.sync_messages
        );
        assert_eq!(skel.events, skel.messages + skel.sync_messages);
    }

    #[test]
    fn deterministic_across_invocations() {
        let g = generators::caveman(6, 8, 20, 2);
        let delays = FaultPlan::new(8).with_delays(0.4, 4);
        let run = || {
            let mut net =
                AsyncNetwork::new(&g, MessageBudget::CONGEST, 3).with_delays(delays.clone());
            net.run(|v, _| FloodProtocol::new(v.0 == 0, 48), 300)
                .unwrap();
            net.metrics()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_and_single_node() {
        let g = Graph::empty(0);
        let mut net = AsyncNetwork::new(&g, MessageBudget::CONGEST, 1);
        let states = net.run(|v, _| FloodProtocol::new(v.0 == 0, 4), 8).unwrap();
        assert!(states.is_empty());
        let g1 = Graph::empty(1);
        let mut net1 = AsyncNetwork::new(&g1, MessageBudget::CONGEST, 1);
        let states = net1.run(|v, _| FloodProtocol::new(v.0 == 0, 4), 8).unwrap();
        assert_eq!(states.len(), 1);
        assert_eq!(net1.metrics().sync_messages, 0);
    }

    #[test]
    fn round_limit_propagates() {
        #[derive(Debug)]
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.broadcast(1);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[(NodeId, u64)]) {
                ctx.broadcast(1);
            }
        }
        let g = generators::cycle(4);
        let mut net = AsyncNetwork::new(&g, MessageBudget::CONGEST, 1);
        let err = net.run(|_, _| Chatter, 5).unwrap_err();
        assert_eq!(err, RunError::RoundLimit { max_rounds: 5 });
        let mut sync_net = Network::new(&g, MessageBudget::CONGEST, 1);
        let serr = sync_net.run(|_, _| Chatter, 5).unwrap_err();
        assert_eq!(err, serr);
        assert_eq!(sync_net.metrics(), net.metrics().protocol_only());
    }

    #[test]
    #[should_panic(expected = "spanning connected subgraph")]
    fn skeleton_synchronizer_rejects_disconnected_subgraph() {
        let g = generators::cycle(6);
        let edges = vec![(NodeId(0), NodeId(1))];
        let mut net = AsyncNetwork::new(&g, MessageBudget::CONGEST, 1)
            .with_synchronizer(Synchronizer::Skeleton(edges));
        let _ = net.run(|v, _| FloodProtocol::new(v.0 == 0, 6), 40);
    }
}
