//! Flat CSR adjacency shared by the sequential and parallel executors.
//!
//! The layout now lives in [`spanner_graph::csr`] so the distance engine
//! and the executors share one implementation; this module re-exports it
//! under the historical netsim path. The determinism contract is unchanged:
//! `Ctx::neighbors` is sorted ascending and `Ctx::send` binary searches it,
//! and the flat offsets + targets arrays are built once per graph and
//! shared between [`Network`](crate::Network) and
//! [`ParallelNetwork`](crate::parallel::ParallelNetwork).

pub use spanner_graph::csr::CsrAdjacency;

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn executor_contract_sorted_ascending() {
        let g = generators::erdos_renyi_gnm(40, 100, 11);
        let csr = CsrAdjacency::from_graph(&g);
        for v in g.nodes() {
            assert!(csr.neighbors(v).windows(2).all(|w| w[0] < w[1]), "{v}");
            // `Ctx::send` relies on binary search over this slice.
            for &u in csr.neighbors(v) {
                assert!(csr.neighbors(v).binary_search(&u).is_ok());
            }
        }
        assert_eq!(csr.max_degree(), g.max_degree());
        assert_eq!(csr.node_count(), g.node_count());
    }
}
