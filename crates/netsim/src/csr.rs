//! Flat CSR adjacency shared by the sequential and parallel executors.
//!
//! [`Graph`] stores adjacency in edge-insertion order;
//! the executors need each node's neighbor list **sorted ascending** (the
//! determinism contract: `Ctx::neighbors` is sorted, `Ctx::send` binary
//! searches it). Previously both executors built their own
//! `Vec<Vec<NodeId>>` — n separate heap allocations, built twice per
//! sequential-vs-parallel comparison. [`CsrAdjacency`] lays the same data out
//! as two flat arrays (offsets + targets), built once and shareable between
//! [`Network`](crate::Network) and
//! [`ParallelNetwork`](crate::parallel::ParallelNetwork).

use spanner_graph::{Graph, NodeId};

/// Sorted neighbor lists in compressed sparse row layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, each run sorted ascending.
    targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Builds the sorted CSR adjacency of `graph`.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for v in graph.nodes() {
            let start = targets.len();
            targets.extend(graph.neighbor_ids(v));
            targets[start..].sort_unstable();
            offsets.push(u32::try_from(targets.len()).expect("graph fits u32 half-edges"));
        }
        CsrAdjacency { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(NodeId(v as u32)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators;

    #[test]
    fn matches_graph_adjacency_sorted() {
        let g = generators::erdos_renyi_gnm(50, 120, 3);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.node_count(), 50);
        for v in g.nodes() {
            let mut expect: Vec<NodeId> = g.neighbor_ids(v).collect();
            expect.sort_unstable();
            assert_eq!(csr.neighbors(v), expect.as_slice(), "node {v}");
            assert_eq!(csr.degree(v), g.degree(v));
        }
        assert_eq!(csr.max_degree(), g.max_degree());
    }

    #[test]
    fn empty_graph() {
        let csr = CsrAdjacency::from_graph(&Graph::empty(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.max_degree(), 0);
    }

    #[test]
    fn star_hub_sees_all_leaves() {
        let g = generators::star(1000);
        let csr = CsrAdjacency::from_graph(&g);
        assert_eq!(csr.degree(NodeId(0)), 999);
        assert!(csr.neighbors(NodeId(0)).windows(2).all(|w| w[0] < w[1]));
    }
}
